#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hars {
namespace json {

bool Value::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::as_object() const {
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return *v;
}

Value Value::null() { return Value(); }

Value Value::boolean(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double n) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value::null();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::vector<std::pair<std::string, Value>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value::object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value::object(std::move(members));
      }
      fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value::array(std::move(items));
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          std::uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<std::uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<std::uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<std::uint32_t>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (surrogate pairs unsupported: the repo's
          // writers never emit them; lone surrogates pass through as
          // replacement-free 3-byte sequences).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double number = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, number);
    if (ec != std::errc() || ptr != last) fail("bad number");
    return Value::number(number);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("json: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string number_to_string(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "null";  // Cannot happen for a finite double.
  return std::string(buf, ptr);
}

void Writer::before_value() {
  if (done_) throw std::logic_error("json::Writer: document already complete");
  if (stack_.empty()) return;  // Top-level value.
  if (stack_.back() == Scope::kObject) {
    if (!key_pending_) {
      throw std::logic_error("json::Writer: value inside object needs key()");
    }
    key_pending_ = false;
    return;  // key() already placed the comma and colon.
  }
  if (!first_.back()) out_.push_back(',');
  first_.back() = false;
}

Writer& Writer::begin_object() {
  before_value();
  out_.push_back('{');
  stack_.push_back(Scope::kObject);
  first_.push_back(true);
  return *this;
}

Writer& Writer::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("json::Writer: unbalanced end_object()");
  }
  out_.push_back('}');
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::begin_array() {
  before_value();
  out_.push_back('[');
  stack_.push_back(Scope::kArray);
  first_.push_back(true);
  return *this;
}

Writer& Writer::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("json::Writer: unbalanced end_array()");
  }
  out_.push_back(']');
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("json::Writer: key() outside an object");
  }
  if (!first_.back()) out_.push_back(',');
  first_.back() = false;
  out_.push_back('"');
  out_ += escape(k);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  before_value();
  out_.push_back('"');
  out_ += escape(s);
  out_.push_back('"');
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::value(double v) {
  before_value();
  out_ += number_to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  before_value();
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out_.append(buf, ptr);
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  before_value();
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out_.append(buf, ptr);
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::null() {
  before_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::value(const Value& v) {
  switch (v.type()) {
    case Value::Type::kNull: return null();
    case Value::Type::kBool: return value(v.as_bool());
    case Value::Type::kNumber: return value(v.as_number());
    case Value::Type::kString: return value(std::string_view(v.as_string()));
    case Value::Type::kArray: {
      begin_array();
      for (const Value& item : v.as_array()) value(item);
      return end_array();
    }
    case Value::Type::kObject: {
      begin_object();
      for (const auto& [k, member] : v.as_object()) {
        key(k);
        value(member);
      }
      return end_object();
    }
  }
  return *this;  // Unreachable.
}

const std::string& Writer::str() const {
  if (!done_ || !stack_.empty()) {
    throw std::logic_error("json::Writer: document incomplete");
  }
  return out_;
}

std::string dump(const Value& v) {
  Writer w;
  w.value(v);
  return w.str();
}

}  // namespace json
}  // namespace hars
