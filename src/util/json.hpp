// Minimal JSON reader for tooling and tests: bench_report merges the
// BENCH_*.json perf records, docs_check validates the telemetry example
// files, and the obs tests parse the sink outputs back. Recursive
// descent over the full JSON grammar; objects preserve key order.
// Throws std::runtime_error (with byte offset) on malformed input.
// This is a consumer-side utility — writers in this repo emit JSON by
// hand so their byte-level output stays deterministic.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hars {
namespace json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::vector<std::pair<std::string, Value>>& as_object() const;

  /// Object member by key, or nullptr (also for non-objects).
  const Value* find(std::string_view key) const;

  /// find() that throws when the key is missing.
  const Value& at(std::string_view key) const;

  // Construction (used by the parser; tests may build values directly).
  static Value null();
  static Value boolean(bool b);
  static Value number(double n);
  static Value string(std::string s);
  static Value array(std::vector<Value> items);
  static Value object(std::vector<std::pair<std::string, Value>> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
Value parse(std::string_view text);

/// Parses the file at `path` (throws on I/O failure too).
Value parse_file(const std::string& path);

}  // namespace json
}  // namespace hars
