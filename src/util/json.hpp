// Minimal JSON reader + writer.
//
// Reader: bench_report merges the BENCH_*.json perf records, docs_check
// validates the telemetry example files, and the obs tests parse the
// sink outputs back. Recursive descent over the full JSON grammar;
// objects preserve key order. Throws std::runtime_error (with byte
// offset) on malformed input.
//
// Writer: the svc wire protocol's frame serializer. Deterministic by
// construction — members emit in call order, numbers use the shortest
// round-trip decimal form (std::to_chars), strings escape every control
// character — so a frame's bytes are a pure function of its content and
// survive a round trip through the parser above. Non-finite numbers
// serialize as null (matching the JsonlSink convention).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hars {
namespace json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::vector<std::pair<std::string, Value>>& as_object() const;

  /// Object member by key, or nullptr (also for non-objects).
  const Value* find(std::string_view key) const;

  /// find() that throws when the key is missing.
  const Value& at(std::string_view key) const;

  // Construction (used by the parser; tests may build values directly).
  static Value null();
  static Value boolean(bool b);
  static Value number(double n);
  static Value string(std::string s);
  static Value array(std::vector<Value> items);
  static Value object(std::vector<std::pair<std::string, Value>> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
Value parse(std::string_view text);

/// Parses the file at `path` (throws on I/O failure too).
Value parse_file(const std::string& path);

/// Escapes `s` for embedding inside a JSON string literal (no quotes
/// added): `"` `\` and every control character < 0x20 become escapes
/// (`\n`, `\t`, ... or `\u00XX`); everything else — including UTF-8
/// multibyte sequences — passes through untouched.
std::string escape(std::string_view s);

/// Shortest round-trip decimal form of `v`; integral values print
/// without a decimal point. NaN/Inf (not representable in JSON) print
/// as `null`.
std::string number_to_string(double v);

/// Streaming JSON writer: builds one compact document (no whitespace)
/// in call order. Misuse (a key outside an object, a bare value inside
/// an object, unbalanced end_*) throws std::logic_error — the protocol
/// layer treats frame-building bugs as programming errors.
///
///   Writer w;
///   w.begin_object()
///       .key("verb").value("submit")
///       .key("cases").value(std::int64_t{42})
///       .end_object();
///   send(w.str());
class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();
  /// Member key; must be directly inside an object, before its value.
  Writer& key(std::string_view k);

  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(double v);
  Writer& value(std::int64_t v);
  Writer& value(std::uint64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(bool b);
  Writer& null();
  /// Serializes a whole Value tree in place of one scalar.
  Writer& value(const Value& v);

  /// The finished document; throws std::logic_error while containers
  /// are still open or nothing was written.
  const std::string& str() const;

 private:
  enum class Scope : unsigned char { kObject, kArray };
  void before_value();
  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_;   ///< Parallel to stack_: no comma needed yet.
  bool key_pending_ = false;  ///< key() emitted, value must follow.
  bool done_ = false;         ///< A complete top-level value exists.
};

/// One-call serialization of a Value tree (compact form, writer rules).
std::string dump(const Value& v);

}  // namespace json
}  // namespace hars
