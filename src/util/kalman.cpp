#include "util/kalman.hpp"

namespace hars {

ScalarKalman::ScalarKalman(double q, double r, double initial_p)
    : q_(q), r_(r), initial_p_(initial_p), p_(initial_p) {}

double ScalarKalman::update(double measurement) {
  if (!initialized_) {
    x_ = measurement;
    p_ = initial_p_;
    initialized_ = true;
    k_ = 1.0;
    return x_;
  }
  // Predict (random walk): x stays, uncertainty grows.
  p_ += q_;
  // Update.
  k_ = p_ / (p_ + r_);
  x_ += k_ * (measurement - x_);
  p_ *= (1.0 - k_);
  return x_;
}

void ScalarKalman::reset() {
  x_ = 0.0;
  p_ = initial_p_;
  k_ = 0.0;
  initialized_ = false;
}

void ScalarKalman::rescale(double factor) {
  if (!initialized_) return;
  x_ *= factor;
  // Scaling multiplies the variance by factor^2.
  p_ *= factor * factor;
}

}  // namespace hars
