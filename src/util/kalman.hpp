// Scalar Kalman filter.
//
// The thesis (§3.1.4) notes HARS's workload prediction — "the next period
// looks like the last one" — can be upgraded with a Kalman filter as in
// Hoffmann et al.'s PTRADE/SEEC work [6]. This is the standard 1-D
// random-walk filter those systems use: state x is the quantity being
// tracked (heartbeat rate, workload per beat), Q the process noise (how
// fast the true value drifts) and R the measurement noise (how noisy each
// windowed observation is).
#pragma once

namespace hars {

class ScalarKalman {
 public:
  /// `q`: process-noise variance per update; `r`: measurement-noise
  /// variance; `initial_p`: initial estimate variance (large = trust the
  /// first measurements).
  explicit ScalarKalman(double q = 1e-4, double r = 1e-2,
                        double initial_p = 1.0);

  /// Incorporates one measurement and returns the filtered estimate.
  double update(double measurement);

  /// Current estimate (prediction for the next period under random walk).
  double estimate() const { return x_; }

  /// Current estimate variance.
  double variance() const { return p_; }

  /// Kalman gain used by the most recent update (diagnostics).
  double last_gain() const { return k_; }

  bool initialized() const { return initialized_; }

  void reset();

  /// Rescale the state when the operating point changes by a known factor
  /// (e.g. the runtime changed the system state and expects rate to scale
  /// by `factor`); keeps the filter from treating the jump as noise.
  void rescale(double factor);

 private:
  double q_;
  double r_;
  double initial_p_;
  double x_ = 0.0;
  double p_;
  double k_ = 0.0;
  bool initialized_ = false;
};

}  // namespace hars
