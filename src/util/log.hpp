// Leveled logging with a process-global threshold. The simulator is silent
// by default; experiments raise the level for behaviour debugging.
#pragma once

#include <cstdio>
#include <string>

namespace hars {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits a formatted message (printf-style) when `level` passes the filter.
void log_message(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

#define HARS_LOG_DEBUG(...) ::hars::log_message(::hars::LogLevel::kDebug, __VA_ARGS__)
#define HARS_LOG_INFO(...) ::hars::log_message(::hars::LogLevel::kInfo, __VA_ARGS__)
#define HARS_LOG_WARN(...) ::hars::log_message(::hars::LogLevel::kWarn, __VA_ARGS__)
#define HARS_LOG_ERROR(...) ::hars::log_message(::hars::LogLevel::kError, __VA_ARGS__)

}  // namespace hars
