// Keyed compute-once cache, safe for concurrent sweep workers.
//
// The map itself is guarded by a mutex, but the (potentially expensive —
// whole probe simulations) computation runs outside it under a per-key
// state machine: concurrent lookups of different keys compute in
// parallel, concurrent lookups of the same key compute exactly once and
// everyone observes the same value — which is what keeps cached and
// uncached sweep cases bit-identical. A computation that throws resets
// the entry, so a later call retries.
//
// Deliberately NOT std::call_once: an exception propagating out of the
// callable must leave the flag retryable, and that path deadlocks under
// ThreadSanitizer (the pthread_once interceptor does not unwind), which
// the CI sanitizer matrix would hit. The explicit condition-variable
// protocol below is exception-safe by construction and sanitizer-clean
// (hammered by tests/util/once_cache_test.cpp).
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace hars {

template <typename Key, typename Value>
class OnceCache {
 public:
  /// Returns the cached value for `key`, computing it via `fn` on first
  /// use. The returned copy is taken under the entry's lock after the
  /// state reaches kDone, so it never observes a partial write.
  template <typename Fn>
  Value get_or_compute(const Key& key, Fn&& fn) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::shared_ptr<Entry>& slot = entries_[key];
      if (!slot) slot = std::make_shared<Entry>();
      entry = slot;
    }

    std::unique_lock<std::mutex> lock(entry->m);
    for (;;) {
      if (entry->state == State::kDone) return entry->value;
      if (entry->state == State::kIdle) break;  // We become the computer.
      entry->cv.wait(lock, [&] { return entry->state != State::kRunning; });
    }

    entry->state = State::kRunning;
    lock.unlock();
    try {
      Value value = fn();  // Outside the lock: distinct keys in parallel.
      lock.lock();
      entry->value = std::move(value);
      entry->state = State::kDone;
      entry->cv.notify_all();
      return entry->value;
    } catch (...) {
      lock.lock();
      entry->state = State::kIdle;  // Retryable: the next caller recomputes.
      entry->cv.notify_all();
      lock.unlock();
      throw;
    }
  }

 private:
  enum class State { kIdle, kRunning, kDone };

  struct Entry {
    std::mutex m;
    std::condition_variable cv;
    State state = State::kIdle;
    Value value{};
  };

  std::mutex mutex_;
  std::map<Key, std::shared_ptr<Entry>> entries_;
};

}  // namespace hars
