// Keyed compute-once cache, safe for concurrent sweep workers.
//
// The map itself is guarded by a mutex, but the (potentially expensive —
// whole probe simulations) computation runs outside it under a per-key
// state machine: concurrent lookups of different keys compute in
// parallel, concurrent lookups of the same key compute exactly once and
// everyone observes the same value — which is what keeps cached and
// uncached sweep cases bit-identical. A computation that throws resets
// the entry, so a later call retries.
//
// Named caches are observable: constructing an OnceCache with a name
// registers `cache.<name>.hit`, `cache.<name>.miss` counters and a
// `cache.<name>.entries` gauge in the MetricsRegistry (lazily, on first
// lookup — registration is cold and idempotent). A lookup that returns a
// previously computed value counts as a hit — including lookups that
// waited on a computation another thread started; the thread that runs
// the computation counts a miss. This is the observability surface of
// the hars_simd shared service cache tier: the calibration,
// baseline-probe and static-optimal caches are named, so the daemon's
// /metrics verb reports cross-request reuse. Unnamed caches are
// metrics-free and behave exactly as before.
//
// Deliberately NOT std::call_once: an exception propagating out of the
// callable must leave the flag retryable, and that path deadlocks under
// ThreadSanitizer (the pthread_once interceptor does not unwind), which
// the CI sanitizer matrix would hit. The explicit condition-variable
// protocol below is exception-safe by construction and sanitizer-clean
// (hammered by tests/util/once_cache_test.cpp).
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace hars {

template <typename Key, typename Value>
class OnceCache {
 public:
  OnceCache() = default;
  /// A named cache registers hit/miss/entries metrics on first use.
  explicit OnceCache(std::string name) : name_(std::move(name)) {}

  /// Returns the cached value for `key`, computing it via `fn` on first
  /// use. The returned copy is taken under the entry's lock after the
  /// state reaches kDone, so it never observes a partial write.
  template <typename Fn>
  Value get_or_compute(const Key& key, Fn&& fn) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ensure_metrics_locked();
      std::shared_ptr<Entry>& slot = entries_[key];
      if (!slot) slot = std::make_shared<Entry>();
      entry = slot;
    }

    std::unique_lock<std::mutex> lock(entry->m);
    for (;;) {
      if (entry->state == State::kDone) {
        obs::counter_add(hit_);
        return entry->value;
      }
      if (entry->state == State::kIdle) break;  // We become the computer.
      entry->cv.wait(lock, [&] { return entry->state != State::kRunning; });
    }

    entry->state = State::kRunning;
    lock.unlock();
    try {
      Value value = fn();  // Outside the lock: distinct keys in parallel.
      lock.lock();
      entry->value = std::move(value);
      entry->state = State::kDone;
      entry->cv.notify_all();
      obs::counter_add(miss_);
      publish_entry_count();
      return entry->value;
    } catch (...) {
      lock.lock();
      entry->state = State::kIdle;  // Retryable: the next caller recomputes.
      entry->cv.notify_all();
      lock.unlock();
      obs::counter_add(miss_);
      throw;
    }
  }

  /// Number of keyed entries (computed or in flight). Observability.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  const std::string& name() const { return name_; }

 private:
  enum class State { kIdle, kRunning, kDone };

  struct Entry {
    std::mutex m;
    std::condition_variable cv;
    State state = State::kIdle;
    Value value{};
  };

  /// Registers the metric ids once (idempotent by metric name). Called
  /// under mutex_; cold — registration locks the registry and allocates.
  void ensure_metrics_locked() {
    if (name_.empty() || metrics_ready_) return;
    auto& registry = obs::MetricsRegistry::instance();
    const std::string base = "cache." + name_;
    hit_ = registry.register_counter(
        base + ".hit", "lookups served from cache '" + name_ + "'");
    miss_ = registry.register_counter(
        base + ".miss", "lookups that computed into cache '" + name_ + "'");
    entries_gauge_ = registry.register_gauge(
        base + ".entries", "keyed entries in cache '" + name_ + "'");
    metrics_ready_ = true;
  }

  /// Publishes the entry-count gauge after a computation lands. Takes
  /// mutex_ itself, so callers must NOT hold it (gauge_set is cold).
  void publish_entry_count() {
    if (name_.empty()) return;
    std::size_t n;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      n = entries_.size();
    }
    obs::gauge_set(entries_gauge_, static_cast<double>(n));
  }

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<Entry>> entries_;
  std::string name_;
  bool metrics_ready_ = false;  ///< Guarded by mutex_.
  obs::CounterId hit_;
  obs::CounterId miss_;
  obs::GaugeId entries_gauge_;
};

}  // namespace hars
