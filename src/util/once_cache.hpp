// Keyed compute-once cache, safe for concurrent sweep workers.
//
// The map itself is guarded by a mutex, but the (potentially expensive —
// whole probe simulations) computation runs outside it under a per-key
// once_flag: concurrent lookups of different keys compute in parallel,
// concurrent lookups of the same key compute exactly once and everyone
// observes the same value — which is what keeps cached and uncached sweep
// cases bit-identical. A computation that throws leaves the flag unset,
// so a later call retries.
#pragma once

#include <map>
#include <memory>
#include <mutex>

namespace hars {

template <typename Key, typename Value>
class OnceCache {
 public:
  /// Returns the cached value for `key`, computing it via `fn` on first
  /// use. The returned copy is taken under the entry's completed
  /// once_flag, so it never observes a partial write.
  template <typename Fn>
  Value get_or_compute(const Key& key, Fn&& fn) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::shared_ptr<Entry>& slot = entries_[key];
      if (!slot) slot = std::make_shared<Entry>();
      entry = slot;
    }
    std::call_once(entry->once, [&] { entry->value = fn(); });
    return entry->value;
  }

 private:
  struct Entry {
    std::once_flag once;
    Value value;
  };

  std::mutex mutex_;
  std::map<Key, std::shared_ptr<Entry>> entries_;
};

}  // namespace hars
