// Fixed-capacity ring buffer; used for heartbeat windows and load history.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace hars {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    assert(capacity > 0);
  }

  void push(const T& value) {
    buf_[head_] = value;
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size()) ++size_;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buf_.size(); }

  /// Element `i` counted from the oldest retained entry (0 = oldest).
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    const std::size_t start = (head_ + buf_.size() - size_) % buf_.size();
    return buf_[(start + i) % buf_.size()];
  }

  const T& newest() const {
    assert(size_ > 0);
    return (*this)[size_ - 1];
  }

  const T& oldest() const {
    assert(size_ > 0);
    return (*this)[0];
  }

  void clear() {
    size_ = 0;
    head_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hars
