#include "util/rng.hpp"

#include <cmath>

namespace hars {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

int Rng::uniform_int(int lo, int hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  cached_normal_ = mag * std::sin(two_pi * u2);
  has_cached_normal_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Rng Rng::fork(std::uint64_t stream_id) const {
  std::uint64_t sm = seed_ ^ (0xd1b54a32d192ed03ULL * (stream_id + 1));
  return Rng(splitmix64(sm));
}

}  // namespace hars
