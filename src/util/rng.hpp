// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulation (workload jitter, sensor
// noise, profiling microbenchmark) draws from an explicitly seeded Rng so
// each experiment is exactly reproducible. The generator is xoshiro256++,
// seeded via splitmix64 as its authors recommend.
#pragma once

#include <cstdint>

namespace hars {

/// Splitmix64 step; used to expand a single seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// Small, fast, deterministic PRNG (xoshiro256++).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Derive an independent stream for a subcomponent; deterministic in
  /// (parent seed, stream_id).
  Rng fork(std::uint64_t stream_id) const;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  std::uint64_t seed_;
};

}  // namespace hars
