#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace hars {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double geomean(std::span<const double> values) {
  assert(!values.empty() && "geomean of empty input");
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(std::span<const double> values) {
  assert(!values.empty() && "mean of empty input");
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

namespace {

// Solve the symmetric positive-definite system A x = b in place via
// Gaussian elimination with partial pivoting. Returns false if singular.
bool solve_dense(std::vector<std::vector<double>>& a, std::vector<double>& b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[pivot], a[col]);
    std::swap(b[pivot], b[col]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= a[i][k] * b[k];
    b[i] = acc / a[i][i];
  }
  return true;
}

}  // namespace

RegressionFit fit_linear(std::span<const std::vector<double>> xs,
                         std::span<const double> ys) {
  RegressionFit fit;
  fit.n = ys.size();
  if (xs.empty() || xs.size() != ys.size()) return fit;
  const std::size_t d = xs.front().size();
  // Augment with the intercept column: solve for [coeffs..., intercept].
  const std::size_t m = d + 1;
  std::vector<std::vector<double>> ata(m, std::vector<double>(m, 0.0));
  std::vector<double> atb(m, 0.0);
  for (std::size_t s = 0; s < xs.size(); ++s) {
    std::vector<double> row(m, 1.0);
    for (std::size_t j = 0; j < d; ++j) row[j] = xs[s][j];
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) ata[i][j] += row[i] * row[j];
      atb[i] += row[i] * ys[s];
    }
  }
  if (!solve_dense(ata, atb)) return fit;
  fit.coeffs.assign(atb.begin(), atb.begin() + static_cast<long>(d));
  fit.intercept = atb.back();

  double y_mean = 0.0;
  for (double y : ys) y_mean += y;
  y_mean /= static_cast<double>(ys.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t s = 0; s < xs.size(); ++s) {
    const double pred = predict(fit, xs[s]);
    ss_res += (ys[s] - pred) * (ys[s] - pred);
    ss_tot += (ys[s] - y_mean) * (ys[s] - y_mean);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

RegressionFit fit_linear_1d(std::span<const double> x, std::span<const double> y) {
  std::vector<std::vector<double>> xs;
  xs.reserve(x.size());
  for (double v : x) xs.push_back({v});
  return fit_linear(xs, y);
}

double predict(const RegressionFit& fit, std::span<const double> x) {
  double acc = fit.intercept;
  const std::size_t d = std::min(fit.coeffs.size(), x.size());
  for (std::size_t i = 0; i < d; ++i) acc += fit.coeffs[i] * x[i];
  return acc;
}

}  // namespace hars
