// Small statistics toolkit: online moments, geometric mean, and ordinary
// least-squares linear regression (the paper's power estimator fits
// per-(cluster, frequency) linear models to profiled sensor data).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hars {

/// Numerically stable online mean / variance / min / max accumulator
/// (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of strictly positive values. An empty input has no
/// mean: asserts in debug builds and returns NaN in release; any
/// non-positive value yields 0.
double geomean(std::span<const double> values);

/// Arithmetic mean. An empty input has no mean: asserts in debug builds
/// and returns NaN in release.
double mean(std::span<const double> values);

/// Result of a simple (one- or multi-feature) least-squares fit.
struct RegressionFit {
  std::vector<double> coeffs;  ///< One coefficient per feature.
  double intercept = 0.0;
  double r_squared = 0.0;  ///< Coefficient of determination on the fit data.
  std::size_t n = 0;       ///< Number of samples fitted.
};

/// Ordinary least-squares for y = coeffs . x + intercept.
///
/// `xs` holds one feature row per sample. Solved via normal equations with
/// Gaussian elimination (feature counts here are tiny: 1-2). Returns a fit
/// with r_squared = 0 when the system is degenerate.
RegressionFit fit_linear(std::span<const std::vector<double>> xs,
                         std::span<const double> ys);

/// Convenience: single-feature fit y = a*x + b.
RegressionFit fit_linear_1d(std::span<const double> x, std::span<const double> y);

/// Evaluate a fit on a feature vector.
double predict(const RegressionFit& fit, std::span<const double> x);

}  // namespace hars
