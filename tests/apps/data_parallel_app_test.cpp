#include "apps/data_parallel_app.hpp"

#include <gtest/gtest.h>

namespace hars {
namespace {

DataParallelConfig base_config() {
  DataParallelConfig cfg;
  cfg.threads = 4;
  cfg.speed = SpeedModel{3.0, 2.0};
  cfg.workload = {WorkloadShape::kStable, 4.0, 0.0, 0.0, 1};
  return cfg;
}

TEST(DataParallelApp, AllThreadsRunnableAtStart) {
  DataParallelApp app("t", base_config());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(app.runnable(i));
}

TEST(DataParallelApp, HeartbeatAtBarrierOnly) {
  DataParallelApp app("t", base_config());
  // Each thread has 1.0 work. At big/1.0 GHz a thread does 3 wu/s:
  // 1 wu needs ~333 ms.
  for (int step = 0; step < 300; ++step) {
    for (int i = 0; i < 3; ++i) {  // Thread 3 starved.
      app.execute(i, 10 * kUsPerMs, CoreType::kBig, 1.0);
    }
    app.end_tick((step + 1) * 10 * kUsPerMs);
  }
  EXPECT_EQ(app.heartbeats().count(), 0);  // Barrier never completes.
  EXPECT_FALSE(app.runnable(0));           // Done threads idle at barrier.
  EXPECT_TRUE(app.runnable(3));
}

TEST(DataParallelApp, IterationCompletesWithAllThreads) {
  DataParallelApp app("t", base_config());
  TimeUs now = 0;
  while (app.heartbeats().count() < 3 && now < 10 * kUsPerSec) {
    now += kUsPerMs;
    for (int i = 0; i < 4; ++i) app.execute(i, kUsPerMs, CoreType::kBig, 1.0);
    app.end_tick(now);
  }
  EXPECT_EQ(app.heartbeats().count(), 3);
  EXPECT_EQ(app.iterations_completed(), 3);
  // 1 wu per thread at 3 wu/s -> 333 ms per iteration.
  EXPECT_NEAR(static_cast<double>(now) / 3.0, 333'000.0, 5'000.0);
}

TEST(DataParallelApp, ExecuteReturnsUsedTimeOnly) {
  DataParallelApp app("t", base_config());
  // Share of 10 s at 3 wu/s would do 30 wu, but only 1 wu remains.
  const TimeUs used = app.execute(0, 10 * kUsPerSec, CoreType::kBig, 1.0);
  EXPECT_NEAR(static_cast<double>(used), 1.0 / 3.0 * kUsPerSec, 2000.0);
  EXPECT_EQ(app.execute(0, kUsPerSec, CoreType::kBig, 1.0), 0);
}

TEST(DataParallelApp, SpeedDependsOnCoreTypeAndFreq) {
  DataParallelConfig cfg = base_config();
  cfg.speed = SpeedModel{4.0, 1.0};
  DataParallelApp app("t", cfg);
  const TimeUs big = app.execute(0, 100 * kUsPerMs, CoreType::kBig, 1.0);
  // 0.1 s at 4 wu/s consumes 0.4 wu of the 1.0 share: full share used.
  EXPECT_EQ(big, 100 * kUsPerMs);
  // Little at 1 wu/s: also keeps running but retires 4x less work; after
  // 0.6 wu remain, 0.6 s of little time finishes the share.
  const TimeUs little = app.execute(0, kUsPerSec, CoreType::kLittle, 1.0);
  EXPECT_NEAR(static_cast<double>(little), 0.6 * kUsPerSec, 2000.0);
}

TEST(DataParallelApp, WarmupSerialPhase) {
  DataParallelConfig cfg = base_config();
  cfg.warmup_work = 3.0;
  DataParallelApp app("t", cfg);
  EXPECT_TRUE(app.in_warmup());
  EXPECT_TRUE(app.runnable(0));   // Only thread 0 parses input.
  EXPECT_FALSE(app.runnable(1));
  // 3 wu at 3 wu/s = 1 s of work.
  TimeUs now = 0;
  while (app.in_warmup() && now < 5 * kUsPerSec) {
    now += kUsPerMs;
    app.execute(0, kUsPerMs, CoreType::kBig, 1.0);
    app.end_tick(now);
  }
  EXPECT_NEAR(static_cast<double>(now), 1.0 * kUsPerSec, 10'000.0);
  EXPECT_EQ(app.heartbeats().count(), 0);  // No heartbeats during warmup.
  // After warmup all threads become runnable.
  app.end_tick(now + kUsPerMs);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(app.runnable(i));
}

TEST(DataParallelApp, MaxIterationsFinishes) {
  DataParallelConfig cfg = base_config();
  cfg.max_iterations = 2;
  DataParallelApp app("t", cfg);
  TimeUs now = 0;
  for (int step = 0; step < 2000 && !app.finished(); ++step) {
    now += kUsPerMs;
    for (int i = 0; i < 4; ++i) app.execute(i, kUsPerMs, CoreType::kBig, 1.6);
    app.end_tick(now);
  }
  EXPECT_TRUE(app.finished());
  EXPECT_EQ(app.heartbeats().count(), 2);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(app.runnable(i));
}

TEST(DataParallelApp, ImbalanceJittersShares) {
  DataParallelConfig cfg = base_config();
  cfg.imbalance = 0.3;
  DataParallelApp app("t", cfg);
  // Run threads with identical CPU; with jittered shares they finish at
  // different times, so right after some finish others still run.
  bool observed_partial = false;
  TimeUs now = 0;
  for (int step = 0; step < 3000; ++step) {
    now += kUsPerMs;
    for (int i = 0; i < 4; ++i) app.execute(i, kUsPerMs, CoreType::kBig, 1.0);
    int runnable = 0;
    for (int i = 0; i < 4; ++i) runnable += app.runnable(i);
    if (runnable > 0 && runnable < 4) observed_partial = true;
    app.end_tick(now);
  }
  EXPECT_TRUE(observed_partial);
}

TEST(DataParallelApp, RejectsZeroThreads) {
  DataParallelConfig cfg = base_config();
  cfg.threads = 0;
  EXPECT_THROW(DataParallelApp("t", cfg), std::invalid_argument);
}

}  // namespace
}  // namespace hars
