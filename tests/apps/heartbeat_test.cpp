#include "heartbeats/heartbeat.hpp"

#include <gtest/gtest.h>

namespace hars {
namespace {

TEST(PerfTarget, AroundBuildsSymmetricWindow) {
  const PerfTarget t = PerfTarget::around(2.0, 0.05);
  EXPECT_NEAR(t.min, 1.9, 1e-12);
  EXPECT_NEAR(t.max, 2.1, 1e-12);
  EXPECT_NEAR(t.avg(), 2.0, 1e-12);
}

TEST(PerfTarget, Contains) {
  const PerfTarget t{1.0, 2.0};
  EXPECT_TRUE(t.contains(1.0));
  EXPECT_TRUE(t.contains(1.5));
  EXPECT_TRUE(t.contains(2.0));
  EXPECT_FALSE(t.contains(0.99));
  EXPECT_FALSE(t.contains(2.01));
}

TEST(HeartbeatMonitor, CountsAndIndexes) {
  HeartbeatMonitor m;
  EXPECT_EQ(m.count(), 0);
  EXPECT_EQ(m.last_index(), -1);
  m.emit(100);
  m.emit(200);
  EXPECT_EQ(m.count(), 2);
  EXPECT_EQ(m.last_index(), 1);
  EXPECT_EQ(m.last_time(), 200);
}

TEST(HeartbeatMonitor, RateNeedsTwoBeats) {
  HeartbeatMonitor m;
  EXPECT_EQ(m.rate(), 0.0);
  m.emit(kUsPerSec);
  EXPECT_EQ(m.rate(), 0.0);
  m.emit(2 * kUsPerSec);
  EXPECT_NEAR(m.rate(), 1.0, 1e-9);
}

TEST(HeartbeatMonitor, WindowedRateTracksRecentBehaviour) {
  HeartbeatMonitor m(/*window=*/5);
  // 10 beats at 1 Hz, then 10 at 10 Hz.
  TimeUs t = 0;
  for (int i = 0; i < 10; ++i) m.emit(t += kUsPerSec);
  for (int i = 0; i < 10; ++i) m.emit(t += kUsPerSec / 10);
  EXPECT_NEAR(m.rate(), 10.0, 0.5);
}

TEST(HeartbeatMonitor, GlobalRateSpansWholeRun) {
  HeartbeatMonitor m(3);
  TimeUs t = 0;
  for (int i = 0; i < 21; ++i) m.emit(t += kUsPerSec / 2);
  EXPECT_NEAR(m.global_rate(t), 2.0, 0.01);
}

TEST(HeartbeatMonitor, HistoryKeepsEverything) {
  HeartbeatMonitor m(2);
  for (int i = 0; i < 50; ++i) m.emit(i * 1000);
  EXPECT_EQ(m.history().size(), 50u);
  EXPECT_EQ(m.history().front().index, 0);
  EXPECT_EQ(m.history().back().index, 49);
}

TEST(HeartbeatMonitor, ResetClears) {
  HeartbeatMonitor m;
  m.emit(1);
  m.reset();
  EXPECT_EQ(m.count(), 0);
  EXPECT_TRUE(m.history().empty());
  EXPECT_EQ(m.rate(), 0.0);
}

TEST(HeartbeatMonitor, TargetStored) {
  HeartbeatMonitor m;
  m.set_target(PerfTarget{1.5, 2.5});
  EXPECT_DOUBLE_EQ(m.target().min, 1.5);
  EXPECT_DOUBLE_EQ(m.target().max, 2.5);
}

}  // namespace
}  // namespace hars
