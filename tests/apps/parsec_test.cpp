#include "apps/parsec.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "apps/data_parallel_app.hpp"
#include "apps/pipeline_app.hpp"

namespace hars {
namespace {

TEST(Parsec, CodesAndNames) {
  EXPECT_STREQ(parsec_code(ParsecBenchmark::kBlackscholes), "BL");
  EXPECT_STREQ(parsec_code(ParsecBenchmark::kBodytrack), "BO");
  EXPECT_STREQ(parsec_code(ParsecBenchmark::kFacesim), "FA");
  EXPECT_STREQ(parsec_code(ParsecBenchmark::kFerret), "FE");
  EXPECT_STREQ(parsec_code(ParsecBenchmark::kFluidanimate), "FL");
  EXPECT_STREQ(parsec_code(ParsecBenchmark::kSwaptions), "SW");
  EXPECT_STREQ(parsec_name(ParsecBenchmark::kFerret), "ferret");
}

TEST(Parsec, SixBenchmarksInFigureOrder) {
  const auto all = all_parsec_benchmarks();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all.front(), ParsecBenchmark::kBlackscholes);
  EXPECT_EQ(all.back(), ParsecBenchmark::kSwaptions);
}

TEST(Parsec, MultiappSubsetHasFour) {
  EXPECT_EQ(multiapp_parsec_benchmarks().size(), 4u);
}

TEST(Parsec, BlackscholesRatioIsOne) {
  EXPECT_DOUBLE_EQ(parsec_true_ratio(ParsecBenchmark::kBlackscholes), 1.0);
  EXPECT_DOUBLE_EQ(parsec_true_ratio(ParsecBenchmark::kSwaptions), 1.5);
}

TEST(Parsec, BlackscholesSpeedEqualOnBothCoreTypes) {
  auto app = make_parsec_app(ParsecBenchmark::kBlackscholes);
  const SpeedModel& speed = app->speed_model();
  EXPECT_DOUBLE_EQ(speed.speed(CoreType::kBig, 1.0),
                   speed.speed(CoreType::kLittle, 1.0));
}

TEST(Parsec, BlackscholesHasWarmupPhase) {
  auto app = make_parsec_app(ParsecBenchmark::kBlackscholes);
  auto* dp = dynamic_cast<DataParallelApp*>(app.get());
  ASSERT_NE(dp, nullptr);
  EXPECT_TRUE(dp->in_warmup());
}

TEST(Parsec, FerretIsSixStagePipelineWithEightThreads) {
  auto app = make_parsec_app(ParsecBenchmark::kFerret);
  auto* pipe = dynamic_cast<PipelineApp*>(app.get());
  ASSERT_NE(pipe, nullptr);
  EXPECT_EQ(pipe->num_stages(), 6);
  EXPECT_EQ(pipe->thread_count(), 8);
}

TEST(Parsec, DataParallelBenchmarksHonorThreadCount) {
  for (ParsecBenchmark b : {ParsecBenchmark::kBodytrack, ParsecBenchmark::kFacesim,
                            ParsecBenchmark::kFluidanimate,
                            ParsecBenchmark::kSwaptions}) {
    auto app = make_parsec_app(b, 6);
    EXPECT_EQ(app->thread_count(), 6) << parsec_name(b);
  }
}

TEST(Parsec, DeterministicConstruction) {
  auto a = make_parsec_app(ParsecBenchmark::kBodytrack, 8, 99);
  auto b = make_parsec_app(ParsecBenchmark::kBodytrack, 8, 99);
  // Execute identically and compare heartbeat times.
  TimeUs now = 0;
  for (int step = 0; step < 2000; ++step) {
    now += kUsPerMs;
    for (int i = 0; i < 8; ++i) {
      a->execute(i, kUsPerMs, CoreType::kBig, 1.6);
      b->execute(i, kUsPerMs, CoreType::kBig, 1.6);
    }
    a->end_tick(now);
    b->end_tick(now);
  }
  ASSERT_EQ(a->heartbeats().count(), b->heartbeats().count());
  EXPECT_GT(a->heartbeats().count(), 0);
}

}  // namespace
}  // namespace hars
