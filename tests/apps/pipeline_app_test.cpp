#include "apps/pipeline_app.hpp"

#include <gtest/gtest.h>

namespace hars {
namespace {

PipelineConfig two_stage() {
  PipelineConfig cfg;
  cfg.stages = {{1, 1.0}, {1, 1.0}};
  cfg.speed = SpeedModel{3.0, 2.0};
  cfg.max_in_flight = 4;
  return cfg;
}

TEST(PipelineApp, ThreadCountSumsStages) {
  PipelineConfig cfg;
  cfg.stages = {{1, 0.2}, {1, 0.6}, {2, 1.6}, {2, 1.6}, {1, 0.6}, {1, 0.2}};
  PipelineApp app("ferret", cfg);
  EXPECT_EQ(app.thread_count(), 8);
  EXPECT_EQ(app.num_stages(), 6);
  EXPECT_EQ(app.stage_of_thread(0), 0);
  EXPECT_EQ(app.stage_of_thread(2), 2);
  EXPECT_EQ(app.stage_of_thread(3), 2);
  EXPECT_EQ(app.stage_of_thread(7), 5);
}

TEST(PipelineApp, ItemsFlowAndEmitHeartbeats) {
  PipelineApp app("p", two_stage());
  TimeUs now = 0;
  for (int step = 0; step < 5000; ++step) {
    now += kUsPerMs;
    app.begin_tick(now);
    for (int i = 0; i < 2; ++i) app.execute(i, kUsPerMs, CoreType::kBig, 1.0);
    app.end_tick(now);
  }
  // Each stage does 1 wu/item at 3 wu/s -> steady state 3 items/s; 5 s run.
  EXPECT_NEAR(static_cast<double>(app.items_retired()), 15.0, 2.0);
  EXPECT_EQ(app.heartbeats().count(), app.items_retired());
}

TEST(PipelineApp, ThroughputLimitedByBottleneckStage) {
  PipelineConfig cfg;
  cfg.stages = {{1, 0.5}, {1, 2.0}};  // Stage 1 is 4x heavier.
  cfg.speed = SpeedModel{2.0, 2.0};
  PipelineApp app("p", cfg);
  TimeUs now = 0;
  for (int step = 0; step < 10000; ++step) {
    now += kUsPerMs;
    app.begin_tick(now);
    for (int i = 0; i < 2; ++i) app.execute(i, kUsPerMs, CoreType::kBig, 1.0);
    app.end_tick(now);
  }
  // Bottleneck: 2 wu at 2 wu/s = 1 item/s.
  EXPECT_NEAR(app.heartbeats().global_rate(now), 1.0, 0.1);
}

TEST(PipelineApp, StarvedStageNotRunnable) {
  PipelineApp app("p", two_stage());
  app.begin_tick(kUsPerMs);
  EXPECT_TRUE(app.runnable(0));   // Source has admitted items.
  EXPECT_FALSE(app.runnable(1));  // Nothing has reached stage 1 yet.
}

TEST(PipelineApp, InFlightBounded) {
  PipelineConfig cfg = two_stage();
  cfg.max_in_flight = 2;
  PipelineApp app("p", cfg);
  TimeUs now = 0;
  // Stage 1 never executes: items pile up only to the in-flight cap.
  for (int step = 0; step < 1000; ++step) {
    now += kUsPerMs;
    app.begin_tick(now);
    app.execute(0, kUsPerMs, CoreType::kBig, 1.0);
    app.end_tick(now);
  }
  EXPECT_EQ(app.items_retired(), 0);
  EXPECT_TRUE(app.runnable(1));
}

TEST(PipelineApp, MaxItemsFinishes) {
  PipelineConfig cfg = two_stage();
  cfg.max_items = 3;
  PipelineApp app("p", cfg);
  TimeUs now = 0;
  for (int step = 0; step < 20000 && !app.finished(); ++step) {
    now += kUsPerMs;
    app.begin_tick(now);
    for (int i = 0; i < 2; ++i) app.execute(i, kUsPerMs, CoreType::kBig, 1.6);
    app.end_tick(now);
  }
  EXPECT_TRUE(app.finished());
  EXPECT_EQ(app.items_retired(), 3);
}

TEST(PipelineApp, MultipleItemsPerTickWhenFast) {
  PipelineConfig cfg;
  cfg.stages = {{1, 0.001}, {1, 0.001}};  // Tiny items.
  cfg.speed = SpeedModel{3.0, 2.0};
  cfg.max_in_flight = 64;
  PipelineApp app("p", cfg);
  TimeUs now = kUsPerMs;
  app.begin_tick(now);
  app.execute(0, kUsPerMs, CoreType::kBig, 1.6);
  app.execute(1, kUsPerMs, CoreType::kBig, 1.6);
  app.end_tick(now);
  EXPECT_GT(app.heartbeats().count(), 1);
}

TEST(PipelineApp, RequiresStages) {
  PipelineConfig cfg;
  EXPECT_THROW(PipelineApp("p", cfg), std::invalid_argument);
}

}  // namespace
}  // namespace hars
