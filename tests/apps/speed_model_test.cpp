#include <gtest/gtest.h>

#include "apps/app.hpp"

namespace hars {
namespace {

TEST(SpeedModel, ComputeBoundScalesLinearly) {
  const SpeedModel m{3.0, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(m.speed(CoreType::kBig, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(m.speed(CoreType::kBig, 1.6), 4.8);
  EXPECT_DOUBLE_EQ(m.speed(CoreType::kLittle, 1.3), 2.6);
}

TEST(SpeedModel, FullyMemoryBoundIgnoresFrequency) {
  const SpeedModel m{3.0, 2.0, 1.0};
  EXPECT_NEAR(m.speed(CoreType::kBig, 0.8), m.speed(CoreType::kBig, 1.6), 1e-9);
}

TEST(SpeedModel, PartialMemorySensitivitySublinear) {
  const SpeedModel m{3.0, 2.0, 0.5};
  const double low = m.speed(CoreType::kBig, 0.8);
  const double high = m.speed(CoreType::kBig, 1.6);
  // Doubling frequency buys sqrt(2), not 2.
  EXPECT_NEAR(high / low, std::sqrt(2.0), 1e-9);
}

TEST(SpeedModel, RatioUnaffectedByMemorySensitivity) {
  const SpeedModel m{3.0, 2.0, 0.4};
  const double r = m.speed(CoreType::kBig, 1.0) / m.speed(CoreType::kLittle, 1.0);
  EXPECT_NEAR(r, 1.5, 1e-9);
}

TEST(SpeedModel, SpeedAtOneGhzEqualsIpc) {
  const SpeedModel m{3.0, 2.0, 0.7};
  EXPECT_NEAR(m.speed(CoreType::kBig, 1.0), 3.0, 1e-9);
  EXPECT_NEAR(m.speed(CoreType::kLittle, 1.0), 2.0, 1e-9);
}

}  // namespace
}  // namespace hars
