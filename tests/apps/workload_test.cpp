#include "apps/workload.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace hars {
namespace {

TEST(WorkloadGenerator, StableIsConstant) {
  WorkloadConfig cfg{WorkloadShape::kStable, 5.0, 0.0, 0.0, 1};
  WorkloadGenerator gen(cfg, Rng(1));
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(gen.next(i), 5.0);
}

TEST(WorkloadGenerator, NoisyCentersOnBase) {
  WorkloadConfig cfg{WorkloadShape::kNoisy, 10.0, 0.1, 0.0, 1};
  WorkloadGenerator gen(cfg, Rng(2));
  OnlineStats stats;
  for (int i = 0; i < 5000; ++i) stats.add(gen.next(i));
  EXPECT_NEAR(stats.mean(), 10.0, 0.2);
  EXPECT_GT(stats.stddev(), 0.5);
}

TEST(WorkloadGenerator, PhasedOscillates) {
  WorkloadConfig cfg{WorkloadShape::kPhased, 10.0, 0.0, 0.3, 40};
  WorkloadGenerator gen(cfg, Rng(3));
  double min_v = 1e9;
  double max_v = -1e9;
  for (int i = 0; i < 80; ++i) {
    const double v = gen.next(i);
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  EXPECT_NEAR(max_v, 13.0, 0.2);
  EXPECT_NEAR(min_v, 7.0, 0.2);
}

TEST(WorkloadGenerator, PhasedPeriodRepeats) {
  WorkloadConfig cfg{WorkloadShape::kPhased, 10.0, 0.0, 0.3, 20};
  WorkloadGenerator gen(cfg, Rng(4));
  std::vector<double> first_cycle;
  for (int i = 0; i < 20; ++i) first_cycle.push_back(gen.next(i));
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(gen.next(i + 20), first_cycle[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(WorkloadGenerator, NeverCollapsesUnderHeavyNoise) {
  WorkloadConfig cfg{WorkloadShape::kNoisy, 1.0, 3.0, 0.0, 1};
  WorkloadGenerator gen(cfg, Rng(5));
  for (int i = 0; i < 1000; ++i) EXPECT_GE(gen.next(i), 0.2 * 1.0);
}

TEST(WorkloadGenerator, DeterministicAcrossInstances) {
  WorkloadConfig cfg{WorkloadShape::kNoisy, 4.0, 0.2, 0.0, 1};
  WorkloadGenerator a(cfg, Rng(42));
  WorkloadGenerator b(cfg, Rng(42));
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.next(i), b.next(i));
}

}  // namespace
}  // namespace hars
