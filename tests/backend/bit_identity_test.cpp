// SimBackend bit-identity: a manager driven through the Backend HAL must
// produce exactly the simulation it produced holding SimEngine& directly
// — same adaptation count, same final state, same behaviour trace, same
// heartbeat stream. This is the gate that lets the HAL refactor claim
// "the simulated path is unchanged".
#include <gtest/gtest.h>

#include <memory>

#include "apps/data_parallel_app.hpp"
#include "backend/sim_backend.hpp"
#include "core/power_profiler.hpp"
#include "core/runtime_manager.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"

namespace hars {
namespace {

struct SimFixture {
  SimEngine engine{Machine::exynos5422(), std::make_unique<GtsScheduler>()};
  std::unique_ptr<DataParallelApp> app;
  AppId id = -1;

  SimFixture() {
    DataParallelConfig cfg;
    cfg.threads = 8;
    cfg.speed = SpeedModel{3.0, 2.0};
    cfg.workload = {WorkloadShape::kStable, 4.0, 0.0, 0.0, 1};
    app = std::make_unique<DataParallelApp>("t", cfg);
    id = engine.add_app(app.get());
  }
};

void expect_identical_traces(const std::vector<TracePoint>& a,
                             const std::vector<TracePoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].hb_index, b[i].hb_index) << "point " << i;
    EXPECT_DOUBLE_EQ(a[i].hps, b[i].hps) << "point " << i;
    EXPECT_EQ(a[i].big_cores, b[i].big_cores) << "point " << i;
    EXPECT_EQ(a[i].little_cores, b[i].little_cores) << "point " << i;
    EXPECT_DOUBLE_EQ(a[i].big_freq_ghz, b[i].big_freq_ghz) << "point " << i;
    EXPECT_DOUBLE_EQ(a[i].little_freq_ghz, b[i].little_freq_ghz)
        << "point " << i;
  }
}

TEST(SimBackendBitIdentity, EngineCtorAndBackendCtorProduceTheSameRun) {
  const PerfTarget target = PerfTarget::around(2.0);

  // Run A: the legacy construction path — RuntimeManager(SimEngine&).
  SimFixture a;
  const PowerCoeffTable coeffs_a =
      profile_power(a.engine.machine(), a.engine.power_model());
  RuntimeManager manager_a(a.engine, a.id, target, coeffs_a);
  a.engine.set_manager(&manager_a);
  a.engine.run_for(60 * kUsPerSec);

  // Run B: the HAL path — an explicit SimBackend and the Backend& ctor.
  SimFixture b;
  SimBackend backend(b.engine);
  const PowerCoeffTable coeffs_b =
      profile_power(backend.topology(), backend.profiling_model());
  RuntimeManager manager_b(backend, b.id, target, coeffs_b);
  backend.attach_manager(&manager_b);
  backend.run_until(60 * kUsPerSec);

  EXPECT_EQ(a.engine.now(), b.engine.now());
  EXPECT_EQ(manager_a.adaptations(), manager_b.adaptations());
  EXPECT_EQ(manager_a.current_state(), manager_b.current_state());
  EXPECT_EQ(a.app->heartbeats().count(), b.app->heartbeats().count());
  EXPECT_DOUBLE_EQ(a.app->heartbeats().rate(), b.app->heartbeats().rate());
  EXPECT_DOUBLE_EQ(a.engine.sensor().total_energy_j(),
                   b.engine.sensor().total_energy_j());
  expect_identical_traces(manager_a.trace(), manager_b.trace());
}

TEST(SimBackendBitIdentity, ActuationForwardsOneToOne) {
  SimFixture f;
  SimBackend backend(f.engine);
  const Machine& m = f.engine.machine();

  backend.set_dvfs_level(m.fastest_cluster(), 2);
  EXPECT_EQ(m.freq_level(m.fastest_cluster()), 2);

  backend.set_online_mask(m.slowest_mask());
  EXPECT_EQ(m.online_mask(), m.slowest_mask());
  backend.set_online_mask(m.all_mask());

  backend.place(f.id, 0, m.fastest_mask());
  f.engine.run_for(kUsPerMs);
  const CoreId core = backend.thread_core(f.id, 0);
  ASSERT_GE(core, 0);
  EXPECT_TRUE(m.fastest_mask().test(core));
}

TEST(SimBackendBitIdentity, ObservationMatchesTheEngine) {
  SimFixture f;
  SimBackend backend(f.engine);
  f.engine.run_for(kUsPerSec);

  EXPECT_EQ(backend.now(), f.engine.now());
  EXPECT_EQ(backend.num_apps(), f.engine.num_apps());
  EXPECT_TRUE(backend.app_alive(f.id));
  EXPECT_EQ(backend.thread_count(f.id), 8);
  EXPECT_EQ(backend.elapsed_work_us(f.id, 0),
            f.engine.thread_cpu_time_us(f.id, 0));
  for (CoreId c = 0; c < f.engine.machine().num_cores(); ++c) {
    EXPECT_DOUBLE_EQ(backend.core_busy_fraction(c),
                     f.engine.core_busy_fraction(c));
  }
  EXPECT_DOUBLE_EQ(backend.energy_j(), f.engine.sensor().total_energy_j());
}

}  // namespace
}  // namespace hars
