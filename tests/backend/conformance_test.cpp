// Backend conformance: the contracts every Backend must honor, run over
// all three implementations — SimBackend (over a SimEngine), the
// CI-testable MockLinuxBackend, and LinuxBackend itself over a fixture
// tree (the same class hars_agentd ships against real sysfs).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "backend/backend.hpp"
#include "backend/linux_backend.hpp"
#include "backend/mock_linux_backend.hpp"
#include "backend/sim_backend.hpp"
#include "backend/sysfs.hpp"
#include "hmp/platform_spec.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"

namespace hars {
namespace {

/// One backend under test plus whatever it needs kept alive.
struct Harness {
  std::unique_ptr<SimEngine> engine;  ///< sim only.
  std::unique_ptr<Backend> backend;
};

Harness make_harness(const std::string& kind) {
  Harness h;
  if (kind == "sim") {
    // The simulator runs the same topology the fixture describes, so the
    // conformance assertions are identical across backends.
    const Machine machine =
        PlatformSpec::from_sysfs(FakeSysfs::exynos5422()).make_machine();
    h.engine = std::make_unique<SimEngine>(machine,
                                           std::make_unique<GtsScheduler>());
    h.backend = std::make_unique<SimBackend>(*h.engine);
  } else if (kind == "mock_linux") {
    h.backend = std::make_unique<MockLinuxBackend>();
  } else {
    // LinuxBackend proper, CI-safe over the fixture tree and modeled
    // threads (what --dry-run exercises minus the real filesystem).
    LinuxBackendConfig config;
    config.name = "linux";
    h.backend = std::make_unique<LinuxBackend>(
        std::make_unique<FakeSysfs>(FakeSysfs::exynos5422()),
        std::make_unique<FakeThreadOps>(), std::make_unique<FakeTimeSource>(),
        config);
  }
  return h;
}

class BackendConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(BackendConformance, ReportsItsName) {
  const Harness h = make_harness(GetParam());
  EXPECT_EQ(h.backend->name(), GetParam());
}

TEST_P(BackendConformance, CapsMatchTheImplementation) {
  const Harness h = make_harness(GetParam());
  const BackendCaps caps = h.backend->caps();
  EXPECT_EQ(caps.simulated, GetParam() == "sim");
  // Every harness platform supports the full actuation surface.
  EXPECT_TRUE(caps.dvfs);
  EXPECT_TRUE(caps.placement);
  EXPECT_TRUE(caps.hotplug);
}

TEST_P(BackendConformance, TopologyIsExynosShaped) {
  const Harness h = make_harness(GetParam());
  const Machine& m = h.backend->topology();
  EXPECT_EQ(m.num_clusters(), 2);
  EXPECT_EQ(m.num_cores(), 8);
  EXPECT_EQ(m.online_mask().count(), 8);
  EXPECT_NE(m.fastest_cluster(), m.slowest_cluster());
  EXPECT_EQ(m.max_freq_level(m.fastest_cluster()), 9);   // 0.2-2.0 GHz.
  EXPECT_EQ(m.max_freq_level(m.slowest_cluster()), 6);   // 0.2-1.4 GHz.
}

TEST_P(BackendConformance, DvfsClampsLikeCpufreq) {
  Harness h = make_harness(GetParam());
  const Machine& m = h.backend->topology();
  const ClusterId big = m.fastest_cluster();
  const ClusterId little = m.slowest_cluster();

  h.backend->set_dvfs_level(big, 99);
  EXPECT_EQ(h.backend->dvfs_level(big), m.max_freq_level(big));
  EXPECT_DOUBLE_EQ(m.freq_ghz(big), 2.0);

  h.backend->set_dvfs_level(little, -5);
  EXPECT_EQ(h.backend->dvfs_level(little), 0);
  EXPECT_DOUBLE_EQ(m.freq_ghz(little), 0.2);

  h.backend->set_dvfs_level(little, 3);
  EXPECT_EQ(h.backend->dvfs_level(little), 3);
  EXPECT_DOUBLE_EQ(m.freq_ghz(little), 0.8);
}

TEST_P(BackendConformance, HotplugNeverOfflinesTheBootCore) {
  Harness h = make_harness(GetParam());
  const Machine& m = h.backend->topology();

  h.backend->set_online_mask(CpuMask());  // Ask for everything off.
  EXPECT_TRUE(m.online_mask().test(0));
  EXPECT_GE(m.online_mask().count(), 1);

  h.backend->set_online_mask(m.all_mask());
  EXPECT_EQ(m.online_mask().count(), 8);
}

TEST_P(BackendConformance, HotplugMaskReadsBackAsAccepted) {
  Harness h = make_harness(GetParam());
  const Machine& m = h.backend->topology();
  const CpuMask little_only = m.slowest_mask();

  h.backend->set_online_mask(little_only);
  EXPECT_EQ(m.online_mask(), little_only & m.all_mask());
  EXPECT_EQ((m.online_mask() & m.fastest_mask()).count(), 0);

  h.backend->set_online_mask(m.all_mask());
}

TEST_P(BackendConformance, TimeIsMonotoneUnderRunFor) {
  Harness h = make_harness(GetParam());
  const TimeUs t0 = h.backend->now();
  h.backend->run_for(kUsPerSec);
  const TimeUs t1 = h.backend->now();
  EXPECT_GE(t1, t0 + kUsPerSec);
  h.backend->run_for(kUsPerSec / 2);
  EXPECT_GE(h.backend->now(), t1);
}

TEST_P(BackendConformance, EnergyIsMonotone) {
  Harness h = make_harness(GetParam());
  const double e0 = h.backend->energy_j();
  h.backend->run_for(kUsPerSec);
  const double e1 = h.backend->energy_j();
  EXPECT_GE(e1, e0);
  h.backend->run_for(kUsPerSec);
  EXPECT_GE(h.backend->energy_j(), e1);
}

TEST_P(BackendConformance, ProfilingModelIsUsable) {
  const Harness h = make_harness(GetParam());
  std::vector<double> idle(8, 0.0);
  std::vector<double> busy(8, 1.0);
  const double p_idle = h.backend->profiling_model().total_power(idle);
  const double p_busy = h.backend->profiling_model().total_power(busy);
  EXPECT_GT(p_busy, p_idle);
}

TEST_P(BackendConformance, SimEngineEscapeHatchIsSimOnly) {
  Harness h = make_harness(GetParam());
  if (GetParam() == "sim") {
    EXPECT_NE(h.backend->sim_engine(), nullptr);
  } else {
    EXPECT_EQ(h.backend->sim_engine(), nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformance,
                         ::testing::Values("sim", "mock_linux", "linux"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace hars
