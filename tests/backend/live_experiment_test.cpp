// The live pipeline end to end: ExperimentBuilder::backend("mock_linux")
// runs a real variant against the fixture platform — workload spawn,
// probe-slice target derivation, manager attach, metric collection —
// entirely in-process and deterministic.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace hars {
namespace {

TEST(LiveExperiment, MockLinuxRunProducesMetrics) {
  const ExperimentResult result = ExperimentBuilder()
                                      .backend("mock_linux")
                                      .app(ParsecBenchmark::kSwaptions)
                                      .variant("HARS-E")
                                      .duration_sec(20)
                                      .threads(4)
                                      .build()
                                      .run();
  ASSERT_EQ(result.apps.size(), 1u);
  const AppRunResult& app = result.app();
  EXPECT_GT(app.metrics.heartbeats, 0);
  EXPECT_GT(app.metrics.avg_rate_hps, 0.0);
  EXPECT_GT(app.target.max, 0.0);  // Derived from the probe slice.
  EXPECT_GT(result.avg_power_w, 0.0);
  ASSERT_TRUE(result.final_state.has_value());
}

TEST(LiveExperiment, ExplicitTargetSkipsDerivation) {
  PerfTarget target;
  target.min = 5.0;
  target.max = 8.0;
  const ExperimentResult result = ExperimentBuilder()
                                      .backend("mock_linux")
                                      .app(ParsecBenchmark::kSwaptions)
                                      .target(target)
                                      .variant("Baseline")
                                      .duration_sec(5)
                                      .threads(4)
                                      .build()
                                      .run();
  EXPECT_DOUBLE_EQ(result.app().target.min, 5.0);
  EXPECT_DOUBLE_EQ(result.app().target.max, 8.0);
}

TEST(LiveExperiment, RunIsDeterministic) {
  const auto run_once = [] {
    return ExperimentBuilder()
        .backend("mock_linux")
        .app(ParsecBenchmark::kSwaptions)
        .variant("HARS-E")
        .duration_sec(10)
        .threads(4)
        .build()
        .run();
  };
  const ExperimentResult a = run_once();
  const ExperimentResult b = run_once();
  EXPECT_EQ(a.app().metrics.heartbeats, b.app().metrics.heartbeats);
  EXPECT_DOUBLE_EQ(a.app().metrics.avg_rate_hps, b.app().metrics.avg_rate_hps);
  EXPECT_EQ(a.adaptations, b.adaptations);
}

TEST(LiveExperiment, BuilderRejectsUnknownBackendUpFront) {
  try {
    ExperimentBuilder().backend("qemu");
    FAIL() << "expected ExperimentConfigError";
  } catch (const ExperimentConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("qemu"), std::string::npos);
    EXPECT_NE(what.find("mock_linux"), std::string::npos);  // Lists known.
  }
}

TEST(LiveExperiment, BuildRejectsSimOnlyFeaturesOnLiveBackends) {
  EXPECT_THROW(ExperimentBuilder()
                   .backend("mock_linux")
                   .scenario("steady")
                   .variant("HARS-E")
                   .build(),
               ExperimentConfigError);
  EXPECT_THROW(ExperimentBuilder()
                   .backend("mock_linux")
                   .app(ParsecBenchmark::kSwaptions)
                   .reference_impl()
                   .build(),
               ExperimentConfigError);
  EXPECT_THROW(ExperimentBuilder()
                   .backend("mock_linux")
                   .app(ParsecBenchmark::kSwaptions)
                   .sample_every(kUsPerSec, [](const RunView&) {})
                   .build(),
               ExperimentConfigError);
}

TEST(LiveExperiment, SimBackendNameKeepsTheSimPath) {
  const ExperimentResult result = ExperimentBuilder()
                                      .backend("sim")
                                      .app(ParsecBenchmark::kSwaptions)
                                      .variant("HARS-E")
                                      .duration_sec(10)
                                      .build()
                                      .run();
  EXPECT_GT(result.app().metrics.heartbeats, 0);
}

}  // namespace
}  // namespace hars
