// MockLinuxBackend: exact actuation sequences. Every sysfs write and
// affinity call LinuxBackend issues lands in the fixture's logs, so
// these tests pin the kernel-facing protocol — governor arming, kHz
// values, per-cpu hotplug cascades, affinity cpu lists — without
// hardware.
#include "backend/mock_linux_backend.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hars {
namespace {

constexpr const char* kLittleDir = "sys/devices/system/cpu/cpu0/cpufreq";
constexpr const char* kBigDir = "sys/devices/system/cpu/cpu4/cpufreq";

std::string cpu_online(int cpu) {
  return "sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/online";
}

TEST(MockLinuxDvfs, FirstWriteArmsUserspaceGovernorThenSetspeed) {
  MockLinuxBackend b;
  b.fake_sysfs().clear_writes();

  const ClusterId little = b.topology().slowest_cluster();
  b.set_dvfs_level(little, 3);  // 0.8 GHz on the A7 ladder.

  const auto& w = b.fake_sysfs().writes();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].path, std::string(kLittleDir) + "/scaling_governor");
  EXPECT_EQ(w[0].value, "userspace");
  EXPECT_EQ(w[1].path, std::string(kLittleDir) + "/scaling_setspeed");
  EXPECT_EQ(w[1].value, "800000");
}

TEST(MockLinuxDvfs, GovernorIsArmedOncePerCluster) {
  MockLinuxBackend b;
  const ClusterId little = b.topology().slowest_cluster();
  b.set_dvfs_level(little, 3);
  b.fake_sysfs().clear_writes();

  b.set_dvfs_level(little, 5);  // 1.2 GHz.
  const auto& w = b.fake_sysfs().writes();
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].path, std::string(kLittleDir) + "/scaling_setspeed");
  EXPECT_EQ(w[0].value, "1200000");
}

TEST(MockLinuxDvfs, OutOfRangeLevelsClampToLadderEdges) {
  MockLinuxBackend b;
  const ClusterId big = b.topology().fastest_cluster();
  const ClusterId little = b.topology().slowest_cluster();
  b.fake_sysfs().clear_writes();

  b.set_dvfs_level(big, 99);    // Clamps to level 9 = 2.0 GHz.
  b.set_dvfs_level(little, -7);  // Clamps to level 0 = 0.2 GHz.

  const auto& w = b.fake_sysfs().writes();
  ASSERT_EQ(w.size(), 4u);  // governor+setspeed per cluster (first write).
  EXPECT_EQ(w[1].path, std::string(kBigDir) + "/scaling_setspeed");
  EXPECT_EQ(w[1].value, "2000000");
  EXPECT_EQ(w[3].path, std::string(kLittleDir) + "/scaling_setspeed");
  EXPECT_EQ(w[3].value, "200000");
  EXPECT_EQ(b.dvfs_level(big), 9);
  EXPECT_EQ(b.dvfs_level(little), 0);
}

TEST(MockLinuxDvfs, MinMaxPairWhenSetspeedIsAbsent) {
  FakeSysfs fixture = FakeSysfs::exynos5422();
  fixture.remove("sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed");
  MockLinuxBackend b(std::move(fixture));
  const ClusterId little = b.topology().slowest_cluster();
  b.fake_sysfs().clear_writes();

  b.set_dvfs_level(little, 3);
  const auto& w = b.fake_sysfs().writes();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].path, std::string(kLittleDir) + "/scaling_min_freq");
  EXPECT_EQ(w[0].value, "800000");
  EXPECT_EQ(w[1].path, std::string(kLittleDir) + "/scaling_max_freq");
  EXPECT_EQ(w[1].value, "800000");
}

TEST(MockLinuxHotplug, CascadeWritesEachToggledCpuOnce) {
  MockLinuxBackend b;
  const Machine& m = b.topology();
  b.fake_sysfs().clear_writes();

  // Offline the whole big cluster (dense cores 4-7 = cpus 4-7).
  b.set_online_mask(m.slowest_mask());

  const auto& w = b.fake_sysfs().writes();
  ASSERT_EQ(w.size(), 4u);
  for (int cpu = 4; cpu <= 7; ++cpu) {
    EXPECT_EQ(w[static_cast<std::size_t>(cpu - 4)].path, cpu_online(cpu));
    EXPECT_EQ(w[static_cast<std::size_t>(cpu - 4)].value, "0");
  }
  EXPECT_EQ(m.online_mask(), m.slowest_mask());

  // Re-onlining writes "1" to exactly the same cpus.
  b.fake_sysfs().clear_writes();
  b.set_online_mask(m.all_mask());
  ASSERT_EQ(b.fake_sysfs().writes().size(), 4u);
  for (const SysfsWrite& write : b.fake_sysfs().writes()) {
    EXPECT_EQ(write.value, "1");
  }
}

TEST(MockLinuxHotplug, HotplugIsDiffAwareAgainstTheMirror) {
  MockLinuxBackend b;
  const Machine& m = b.topology();
  b.set_online_mask(m.slowest_mask());
  b.fake_sysfs().clear_writes();

  // Same desired mask again: nothing to toggle, nothing written.
  b.set_online_mask(m.slowest_mask());
  EXPECT_TRUE(b.fake_sysfs().writes().empty());
}

TEST(MockLinuxHotplug, BootCpuWithoutOnlineFileStaysOnline) {
  MockLinuxBackend b;
  b.fake_sysfs().clear_writes();

  b.set_online_mask(CpuMask());
  // cpu0 has no online knob: it is skipped, every other cpu gets "0".
  EXPECT_EQ(b.fake_sysfs().writes().size(), 7u);
  for (const SysfsWrite& w : b.fake_sysfs().writes()) {
    EXPECT_NE(w.path, cpu_online(0));
    EXPECT_EQ(w.value, "0");
  }
  EXPECT_EQ(b.topology().online_mask(), CpuMask::single(0));
  b.set_online_mask(b.topology().all_mask());
}

TEST(MockLinuxPlacement, AffinityCallsCarryKernelCpuNumbers) {
  MockLinuxBackend b;
  WorkloadDesc desc;
  desc.label = "w";
  desc.threads = 2;
  const AppId app = b.add_workload(desc);
  b.fake_threads().clear_affinity_calls();

  b.place(app, 0, b.topology().fastest_mask());
  b.place(app, 1, b.topology().slowest_mask());

  const auto& calls = b.fake_threads().affinity_calls();
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0].app, app);
  EXPECT_EQ(calls[0].local_tid, 0);
  EXPECT_EQ(calls[0].cpus, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(calls[1].cpus, (std::vector<int>{0, 1, 2, 3}));
}

TEST(MockLinuxPlacement, PlacedThreadsLandInsideTheMask) {
  MockLinuxBackend b;
  WorkloadDesc desc;
  desc.label = "w";
  desc.threads = 4;
  const AppId app = b.add_workload(desc);

  b.place_app(app, b.topology().fastest_mask());
  b.run_for(200 * kUsPerMs);

  for (int t = 0; t < 4; ++t) {
    const CoreId core = b.thread_core(app, t);
    ASSERT_GE(core, 0);
    EXPECT_TRUE(b.topology().fastest_mask().test(core));
  }
}

TEST(MockLinuxDryRun, NeverWritesNeverPlaces) {
  LinuxBackendConfig config = MockLinuxBackend::mock_config();
  config.dry_run = true;
  MockLinuxBackend b(FakeSysfs::exynos5422(), config);
  WorkloadDesc desc;
  desc.label = "w";
  const AppId app = b.add_workload(desc);
  b.fake_sysfs().clear_writes();
  b.fake_threads().clear_affinity_calls();

  b.set_dvfs_level(0, 2);
  b.set_online_mask(b.topology().slowest_mask());
  b.place(app, 0, b.topology().slowest_mask());

  EXPECT_TRUE(b.fake_sysfs().writes().empty());
  EXPECT_TRUE(b.fake_threads().affinity_calls().empty());
  // The mirror still tracks intent, so control flow is exercisable.
  EXPECT_EQ(b.dvfs_level(0), 2);
}

TEST(MockLinuxWorkload, HeartbeatsTrackDvfs) {
  MockLinuxBackend b;
  WorkloadDesc desc;
  desc.label = "w";
  desc.threads = 4;
  // Work accrues at core_speed (ipc x GHz) units per second; even the
  // 0.2 GHz floor yields a few beats per second at this grain.
  desc.work_per_beat = 0.05;
  const AppId app = b.add_workload(desc);

  // A slow second, then a fast second: the beat rate must rise.
  const ClusterId big = b.topology().fastest_cluster();
  const ClusterId little = b.topology().slowest_cluster();
  b.set_dvfs_level(big, 0);
  b.set_dvfs_level(little, 0);
  b.run_for(kUsPerSec);
  const std::int64_t slow = b.heartbeats(app).count();

  b.set_dvfs_level(big, 9);
  b.set_dvfs_level(little, 6);
  b.run_for(kUsPerSec);
  const std::int64_t fast = b.heartbeats(app).count() - slow;

  EXPECT_GT(slow, 0);
  EXPECT_GT(fast, slow);
}

TEST(MockLinuxEnergy, PowercapCounterFeedsTheRealReadPath) {
  MockLinuxBackend b;
  EXPECT_TRUE(b.caps().energy);
  WorkloadDesc desc;
  desc.label = "w";
  const AppId app = b.add_workload(desc);
  (void)app;

  const double e0 = b.energy_j();
  b.run_for(kUsPerSec);
  const double e1 = b.energy_j();
  EXPECT_GT(e1, e0);  // Modeled power integrated through the meter file.
}

TEST(MockLinuxEnergy, MeterWrapIsAccumulatedNotLost) {
  MockLinuxBackend b;
  const double e0 = b.energy_j();
  // Wind the counter near its range, then wrap it past zero.
  b.fake_sysfs().set("sys/class/powercap/energy-meter/energy_uj",
                     "999999999000");
  const double e1 = b.energy_j();
  EXPECT_GT(e1, e0);
  b.fake_sysfs().set("sys/class/powercap/energy-meter/energy_uj", "500000");
  const double e2 = b.energy_j();
  // 1e12 range: the wrap contributes (range - last) + cur, never negative.
  EXPECT_GT(e2, e1);
}

}  // namespace
}  // namespace hars
