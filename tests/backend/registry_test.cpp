#include "backend/backend_registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hars {
namespace {

TEST(BackendRegistry, BuiltInsRegisterInOrder) {
  const auto names = BackendRegistry::instance().names();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], "sim");
  EXPECT_EQ(names[1], "mock_linux");
  EXPECT_EQ(names[2], "linux");
}

TEST(BackendRegistry, KnownValidatesUpFront) {
  const BackendRegistry& r = BackendRegistry::instance();
  EXPECT_TRUE(r.known("sim"));
  EXPECT_TRUE(r.known("mock_linux"));
  EXPECT_TRUE(r.known("linux"));
  EXPECT_FALSE(r.known("qemu"));
  EXPECT_FALSE(r.known(""));
}

TEST(BackendRegistry, EntriesCarryDescriptions) {
  for (const BackendEntry& e : BackendRegistry::instance().entries()) {
    EXPECT_FALSE(e.name.empty());
    EXPECT_FALSE(e.description.empty());
  }
}

TEST(BackendRegistry, UnknownNameErrorListsKnownNames) {
  try {
    BackendRegistry::instance().get_live("qemu", {});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("qemu"), std::string::npos);
    EXPECT_NE(what.find("sim"), std::string::npos);
    EXPECT_NE(what.find("mock_linux"), std::string::npos);
    EXPECT_NE(what.find("linux"), std::string::npos);
  }
}

TEST(BackendRegistry, SimHasNoLiveFactory) {
  try {
    BackendRegistry::instance().get_live("sim", {});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The pointed error, not the unknown-name listing.
    EXPECT_NE(std::string(e.what()).find("sim"), std::string::npos);
  }
}

TEST(BackendRegistry, BuildsMockLinux) {
  const auto backend = BackendRegistry::instance().get_live("mock_linux", {});
  ASSERT_NE(backend, nullptr);
  EXPECT_STREQ(backend->name(), "mock_linux");
  EXPECT_FALSE(backend->caps().simulated);
  EXPECT_EQ(backend->topology().num_cores(), 8);
  EXPECT_EQ(backend->sim_engine(), nullptr);
}

TEST(BackendRegistry, DuplicateRegistrationIsRejected) {
  BackendEntry dup;
  dup.name = "mock_linux";
  dup.description = "dup";
  EXPECT_THROW(BackendRegistry::instance().register_backend(dup),
               std::invalid_argument);
}

}  // namespace
}  // namespace hars
