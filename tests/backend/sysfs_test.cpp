#include "backend/sysfs.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "backend/sysfs_probe.hpp"
#include "hmp/machine.hpp"
#include "hmp/platform_spec.hpp"

namespace hars {
namespace {

TEST(FakeSysfs, ParsesFixtureText) {
  const FakeSysfs fs = FakeSysfs::from_text(
      "# comment\n"
      "\n"
      "a/b 42\n"
      "a/c hello world\n"
      "a/empty\n");
  EXPECT_TRUE(fs.exists("a/b"));
  EXPECT_EQ(fs.read("a/b"), "42");
  EXPECT_EQ(fs.read("a/c"), "hello world");  // Value runs to end of line.
  EXPECT_EQ(fs.read("a/empty"), "");
  EXPECT_FALSE(fs.exists("a/missing"));
  EXPECT_EQ(fs.read("a/missing"), std::nullopt);
}

TEST(FakeSysfs, ExistsCoversDirectories) {
  const FakeSysfs fs = FakeSysfs::from_text("sys/devices/cpu0/online 1\n");
  EXPECT_TRUE(fs.exists("sys/devices/cpu0"));
  EXPECT_TRUE(fs.exists("sys/devices"));
  EXPECT_FALSE(fs.exists("sys/devices/cpu1"));
}

TEST(FakeSysfs, ListReturnsSortedChildren) {
  const FakeSysfs fs = FakeSysfs::from_text(
      "cpu/cpu10/online 1\n"
      "cpu/cpu2/online 1\n"
      "cpu/cpu2/cpufreq/scaling_cur_freq 1000\n"
      "cpu/present 0-10\n");
  const auto children = fs.list("cpu");
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0], "cpu10");
  EXPECT_EQ(children[1], "cpu2");
  EXPECT_EQ(children[2], "present");
  EXPECT_TRUE(fs.list("nothing").empty());
}

TEST(FakeSysfs, WriteToDeclaredPathIsRecorded) {
  FakeSysfs fs = FakeSysfs::from_text("knob 0\n");
  EXPECT_TRUE(fs.write("knob", "1"));
  EXPECT_EQ(fs.read("knob"), "1");
  ASSERT_EQ(fs.writes().size(), 1u);
  EXPECT_EQ(fs.writes()[0].path, "knob");
  EXPECT_EQ(fs.writes()[0].value, "1");
}

TEST(FakeSysfs, WriteToMissingPathFailsLikeEnoent) {
  FakeSysfs fs = FakeSysfs::from_text("knob 0\n");
  EXPECT_FALSE(fs.write("other", "1"));
  EXPECT_TRUE(fs.writes().empty());  // Rejected writes are not logged.
}

TEST(FakeSysfs, SetAndRemoveModelKernelKnobs) {
  FakeSysfs fs;
  fs.set("cpu4/online", "1");
  EXPECT_TRUE(fs.exists("cpu4/online"));
  fs.remove("cpu4/online");
  EXPECT_FALSE(fs.exists("cpu4/online"));
}

TEST(FakeSysfs, MalformedLineNamesTheLineNumber) {
  try {
    FakeSysfs::from_text("good 1\n/absolute-path 2\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ParseCpulist, HandlesRangesAndSingles) {
  EXPECT_EQ(parse_cpulist("0-3,5,7-8"),
            (std::vector<int>{0, 1, 2, 3, 5, 7, 8}));
  EXPECT_EQ(parse_cpulist("4"), (std::vector<int>{4}));
  EXPECT_TRUE(parse_cpulist("").empty());
}

TEST(ProbeTopology, GroupsExynos5422ByRelatedCpus) {
  const FakeSysfs fs = FakeSysfs::exynos5422();
  const ProbedTopology topo = probe_topology(fs);
  ASSERT_EQ(topo.clusters.size(), 2u);
  EXPECT_EQ(topo.num_cpus(), 8);
  // Ordered by first cpu: cpu0-3 (A7) then cpu4-7 (A15).
  EXPECT_EQ(topo.clusters[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.clusters[0].policy_cpu, 0);
  EXPECT_EQ(topo.clusters[0].freqs_ghz.size(), 7u);
  EXPECT_DOUBLE_EQ(topo.clusters[0].freqs_ghz.front(), 0.2);
  EXPECT_DOUBLE_EQ(topo.clusters[0].freqs_ghz.back(), 1.4);
  EXPECT_DOUBLE_EQ(topo.clusters[0].capacity, 448.0);
  EXPECT_EQ(topo.clusters[1].cpus, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(topo.clusters[1].policy_cpu, 4);
  EXPECT_EQ(topo.clusters[1].freqs_ghz.size(), 10u);
  EXPECT_DOUBLE_EQ(topo.clusters[1].freqs_ghz.back(), 2.0);
  EXPECT_DOUBLE_EQ(topo.clusters[1].capacity, 1024.0);
}

TEST(ProbeTopology, ThrowsWhenNoCpuIsFound) {
  const FakeSysfs fs = FakeSysfs::from_text("proc/stat cpu0 0 0 0 1\n");
  EXPECT_THROW(probe_topology(fs), PlatformConfigError);
}

TEST(ProbeTopology, CpusWithoutCpufreqFormFixedFrequencyGroup) {
  const FakeSysfs fs = FakeSysfs::from_text(
      "sys/devices/system/cpu/present 0-1\n"
      "sys/devices/system/cpu/cpu0/online 1\n"
      "sys/devices/system/cpu/cpu1/online 1\n");
  const ProbedTopology topo = probe_topology(fs);
  ASSERT_EQ(topo.clusters.size(), 1u);
  EXPECT_EQ(topo.clusters[0].cpus, (std::vector<int>{0, 1}));
  // No cpufreq at all: a single synthetic 1.0 GHz level.
  ASSERT_EQ(topo.clusters[0].freqs_ghz.size(), 1u);
  EXPECT_DOUBLE_EQ(topo.clusters[0].freqs_ghz[0], 1.0);
}

TEST(PlatformSpecFromSysfs, BuildsSimulatablePlatform) {
  const FakeSysfs fs = FakeSysfs::exynos5422();
  const PlatformSpec spec = PlatformSpec::from_sysfs(fs, "probed");
  EXPECT_EQ(spec.name, "probed");
  ASSERT_EQ(spec.clusters.size(), 2u);
  // Capacity-scaled peak splits big from little: cpu4-7 are big.
  EXPECT_EQ(spec.clusters[0].topology.type, CoreType::kLittle);
  EXPECT_EQ(spec.clusters[1].topology.type, CoreType::kBig);
  EXPECT_EQ(spec.clusters[0].topology.core_count, 4);
  EXPECT_EQ(spec.clusters[1].topology.core_count, 4);
  // The spec materializes: a Machine with the probed ladders.
  const Machine m = spec.make_machine();
  EXPECT_EQ(m.num_cores(), 8);
  EXPECT_EQ(m.max_freq_level(m.fastest_cluster()), 9);
  EXPECT_EQ(m.max_freq_level(m.slowest_cluster()), 6);
}

TEST(PlatformSpecFromSysfs, HomogeneousMachineIsRejectedWithAPointedError) {
  // A flat machine probes fine (one merged cluster) but cannot back the
  // runtime, which splits every machine into a fast and a slow pool.
  const FakeSysfs fs = FakeSysfs::from_text(
      "sys/devices/system/cpu/present 0-1\n"
      "sys/devices/system/cpu/cpu0/online 1\n"
      "sys/devices/system/cpu/cpu1/online 1\n");
  try {
    PlatformSpec::from_sysfs(fs);
    FAIL() << "expected PlatformConfigError";
  } catch (const PlatformConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("homogeneous"), std::string::npos);
  }
}

}  // namespace
}  // namespace hars
