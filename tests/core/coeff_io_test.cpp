#include "core/coeff_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/power_estimator.hpp"

namespace hars {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

PowerCoeffTable sample_table() {
  const Machine machine = Machine::exynos5422();
  return profile_power(machine, PowerModel{machine});
}

TEST(CoeffIo, RoundTripPreservesTable) {
  const std::string path = temp_path("coeffs_roundtrip.csv");
  const PowerCoeffTable original = sample_table();
  ASSERT_TRUE(save_power_coeffs(path, original));
  const auto loaded = load_power_coeffs(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->big.alpha.size(), original.big.alpha.size());
  ASSERT_EQ(loaded->little.alpha.size(), original.little.alpha.size());
  for (std::size_t i = 0; i < original.big.alpha.size(); ++i) {
    EXPECT_NEAR(loaded->big.alpha[i], original.big.alpha[i], 1e-4);
    EXPECT_NEAR(loaded->big.beta[i], original.big.beta[i], 1e-4);
  }
  for (std::size_t i = 0; i < original.little.alpha.size(); ++i) {
    EXPECT_NEAR(loaded->little.alpha[i], original.little.alpha[i], 1e-4);
  }
  std::remove(path.c_str());
}

TEST(CoeffIo, LoadMissingFileFails) {
  EXPECT_FALSE(load_power_coeffs("/nonexistent/dir/coeffs.csv").has_value());
}

TEST(CoeffIo, SaveToUnwritablePathFails) {
  const PowerCoeffTable table = sample_table();
  EXPECT_FALSE(save_power_coeffs("/nonexistent/dir/coeffs.csv", table));
}

TEST(CoeffIo, MalformedRowRejected) {
  const std::string path = temp_path("coeffs_malformed.csv");
  {
    std::ofstream out(path);
    out << "cluster,level,alpha,beta,r_squared\n";
    out << "big,0,not_a_number,0.1,0.99\n";
  }
  EXPECT_FALSE(load_power_coeffs(path).has_value());
  std::remove(path.c_str());
}

TEST(CoeffIo, UnknownClusterRejected) {
  const std::string path = temp_path("coeffs_unknown.csv");
  {
    std::ofstream out(path);
    out << "cluster,level,alpha,beta,r_squared\n";
    out << "medium,0,1.0,0.1,0.99\n";
  }
  EXPECT_FALSE(load_power_coeffs(path).has_value());
  std::remove(path.c_str());
}

TEST(CoeffIo, NonDenseLevelsRejected) {
  const std::string path = temp_path("coeffs_sparse.csv");
  {
    std::ofstream out(path);
    out << "cluster,level,alpha,beta,r_squared\n";
    out << "big,0,1.0,0.1,0.99\n";
    out << "big,2,1.2,0.1,0.99\n";  // Level 1 missing.
    out << "little,0,0.3,0.05,0.99\n";
  }
  EXPECT_FALSE(load_power_coeffs(path).has_value());
  std::remove(path.c_str());
}

TEST(CoeffIo, EmptyClusterRejected) {
  const std::string path = temp_path("coeffs_empty.csv");
  {
    std::ofstream out(path);
    out << "cluster,level,alpha,beta,r_squared\n";
    out << "big,0,1.0,0.1,0.99\n";  // No little rows.
  }
  EXPECT_FALSE(load_power_coeffs(path).has_value());
  std::remove(path.c_str());
}

TEST(CoeffIo, LoadedTableDrivesEstimator) {
  const std::string path = temp_path("coeffs_est.csv");
  const PowerCoeffTable original = sample_table();
  ASSERT_TRUE(save_power_coeffs(path, original));
  const auto loaded = load_power_coeffs(path);
  ASSERT_TRUE(loaded.has_value());
  const Machine machine = Machine::exynos5422();
  PerfEstimator perf(machine, 1.5);
  PowerEstimator a(original);
  PowerEstimator b(*loaded);
  const SystemState s{3, 2, 5, 3};
  EXPECT_NEAR(a.estimate(s, 8, perf), b.estimate(s, 8, perf), 1e-3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hars
