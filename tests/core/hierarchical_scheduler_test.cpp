#include <gtest/gtest.h>

#include <memory>

#include "apps/parsec.hpp"
#include "apps/pipeline_app.hpp"
#include "core/thread_scheduler.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"

namespace hars {
namespace {

int count_big(const std::vector<bool>& plan) {
  int n = 0;
  for (bool b : plan) n += b;
  return n;
}

TEST(HierarchicalPlacement, EvenSplitAcrossEqualGroups) {
  // Two groups of 4 threads, T_B = 4: each group gets 2 big slots.
  const auto plan = plan_hierarchical_placement({4, 4}, 4, 4);
  ASSERT_EQ(plan.size(), 8u);
  int big_first = 0;
  int big_second = 0;
  for (int i = 0; i < 4; ++i) big_first += plan[static_cast<std::size_t>(i)];
  for (int i = 4; i < 8; ++i) big_second += plan[static_cast<std::size_t>(i)];
  EXPECT_EQ(big_first, 2);
  EXPECT_EQ(big_second, 2);
}

TEST(HierarchicalPlacement, FerretStagesEachGetBigShare) {
  // Ferret's groups [1,1,2,2,1,1] with T_B = 4: the two heavy stages must
  // each receive at least one big slot.
  const std::vector<int> groups{1, 1, 2, 2, 1, 1};
  const auto plan = plan_hierarchical_placement(groups, 4, 4);
  ASSERT_EQ(plan.size(), 8u);
  EXPECT_EQ(count_big(plan), 4);
  // Threads 2-3 are stage 2, threads 4-5 stage 3.
  EXPECT_TRUE(plan[2] || plan[3]);
  EXPECT_TRUE(plan[4] || plan[5]);
}

TEST(HierarchicalPlacement, QuotaNeverExceedsGroupSize) {
  const std::vector<int> groups{1, 6, 1};
  for (int tb = 0; tb <= 8; ++tb) {
    const auto plan = plan_hierarchical_placement(groups, tb, 8 - tb);
    EXPECT_EQ(count_big(plan), tb) << "tb=" << tb;
    // Group 0 (thread 0) and group 2 (thread 7) are single threads.
    int single_bigs = plan[0] + plan[7];
    EXPECT_LE(single_bigs, 2);
  }
}

TEST(HierarchicalPlacement, AllBigAllLittle) {
  const std::vector<int> groups{2, 3, 3};
  const auto all_big = plan_hierarchical_placement(groups, 8, 0);
  EXPECT_EQ(count_big(all_big), 8);
  const auto all_little = plan_hierarchical_placement(groups, 0, 8);
  EXPECT_EQ(count_big(all_little), 0);
}

TEST(HierarchicalPlacement, EmptyGroups) {
  EXPECT_TRUE(plan_hierarchical_placement({}, 0, 0).empty());
}

TEST(HierarchicalPlacement, LargestRemainderFavorsBiggerGroups) {
  // Groups 5+3, T_B = 4: ideal quotas 2.5 / 1.5 -> 3 / 1 or 2 / 2; the
  // larger group must get at least as many slots.
  const auto plan = plan_hierarchical_placement({5, 3}, 4, 4);
  int big_a = 0;
  int big_b = 0;
  for (int i = 0; i < 5; ++i) big_a += plan[static_cast<std::size_t>(i)];
  for (int i = 5; i < 8; ++i) big_b += plan[static_cast<std::size_t>(i)];
  EXPECT_EQ(big_a + big_b, 4);
  EXPECT_GE(big_a, big_b);
}

TEST(HierarchicalApply, UsesAppThreadGroups) {
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  auto app = make_parsec_app(ParsecBenchmark::kFerret);
  const AppId id = engine.add_app(app.get());

  ThreadAssignment a;
  a.tb = 4;
  a.tl = 4;
  const CpuMask big_set = CpuMask::range(4, 4);
  const CpuMask little_set = CpuMask::range(0, 4);
  apply_thread_schedule(engine, id, ThreadSchedulerKind::kHierarchical, a,
                        big_set, little_set);
  // Heavy stages (threads 2-3 and 4-5) each have one big + one little.
  const bool t2_big = engine.thread_affinity(id, 2) == big_set;
  const bool t3_big = engine.thread_affinity(id, 3) == big_set;
  EXPECT_NE(t2_big, t3_big);
  const bool t4_big = engine.thread_affinity(id, 4) == big_set;
  const bool t5_big = engine.thread_affinity(id, 5) == big_set;
  EXPECT_NE(t4_big, t5_big);
}

TEST(ThreadGroupSizes, DefaultsToOneFlatGroup) {
  auto app = make_parsec_app(ParsecBenchmark::kSwaptions);
  EXPECT_EQ(app->thread_group_sizes(), std::vector<int>{8});
}

TEST(ThreadGroupSizes, PipelineReportsStages) {
  auto app = make_parsec_app(ParsecBenchmark::kFerret);
  EXPECT_EQ(app->thread_group_sizes(), (std::vector<int>{1, 1, 2, 2, 1, 1}));
}

TEST(SchedulerNames, IncludesHierarchical) {
  EXPECT_STREQ(thread_scheduler_name(ThreadSchedulerKind::kHierarchical),
               "hierarchical");
}

}  // namespace
}  // namespace hars
