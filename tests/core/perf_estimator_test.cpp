#include "core/perf_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hars {
namespace {

class PerfEstimatorTest : public testing::Test {
 protected:
  Machine machine_ = Machine::exynos5422();
  PerfEstimator est_{machine_, 1.5, 1.0};
};

TEST_F(PerfEstimatorTest, SpeedsScaleWithFrequencyLevels) {
  const SystemState low{4, 4, 0, 0};   // 0.8 / 0.8 GHz.
  const SystemState high{4, 4, 8, 5};  // 1.6 / 1.3 GHz.
  EXPECT_NEAR(est_.big_speed(low), 1.5 * 0.8, 1e-9);
  EXPECT_NEAR(est_.big_speed(high), 1.5 * 1.6, 1e-9);
  EXPECT_NEAR(est_.little_speed(high), 1.3, 1e-9);
}

TEST_F(PerfEstimatorTest, RatioVariesWithFrequencies) {
  // r = 1.5 * fB / fL can dip below 1 (big at 0.8, little at 1.3).
  const SystemState big_slow{4, 4, 0, 5};
  EXPECT_LT(est_.ratio(big_slow), 1.0);
  const SystemState big_fast{4, 4, 8, 0};
  EXPECT_NEAR(est_.ratio(big_fast), 1.5 * 1.6 / 0.8, 1e-9);
}

TEST_F(PerfEstimatorTest, UnitTimeMonotoneInFrequency) {
  // Non-increasing in f_B (the little cluster can be the bottleneck, in
  // which case raising f_B does not help), strictly better end to end.
  const int t = 8;
  double prev = 1e18;
  for (int fb = 0; fb < 9; ++fb) {
    const double ut = est_.unit_time(SystemState{4, 4, fb, 5}, t);
    EXPECT_LE(ut, prev + 1e-12);
    prev = ut;
  }
  EXPECT_LT(est_.unit_time(SystemState{4, 4, 8, 5}, t),
            est_.unit_time(SystemState{4, 4, 0, 5}, t));
}

TEST_F(PerfEstimatorTest, UnitTimeImprovesWithMoreCores) {
  const int t = 8;
  const double one_big = est_.unit_time(SystemState{1, 0, 8, 5}, t);
  const double four_big = est_.unit_time(SystemState{4, 0, 8, 5}, t);
  const double full = est_.unit_time(SystemState{4, 4, 8, 5}, t);
  EXPECT_GT(one_big, four_big);
  EXPECT_GT(four_big, full);
}

TEST_F(PerfEstimatorTest, ZeroCoresIsInfeasible) {
  EXPECT_TRUE(std::isinf(est_.unit_time(SystemState{0, 0, 0, 0}, 8)));
}

TEST_F(PerfEstimatorTest, EstimateRateScalesFromCurrent) {
  const SystemState cur{4, 4, 8, 5};
  const SystemState half_freq{4, 4, 0, 0};
  const double rate = est_.estimate_rate(half_freq, cur, 4.0, 8);
  // Both clusters drop to 0.8 GHz: rates scale by the t_f ratio.
  const double expected = 4.0 * est_.unit_time(cur, 8) / est_.unit_time(half_freq, 8);
  EXPECT_NEAR(rate, expected, 1e-9);
  EXPECT_LT(rate, 4.0);
}

TEST_F(PerfEstimatorTest, EstimateRateIdentity) {
  const SystemState cur{3, 2, 4, 2};
  EXPECT_NEAR(est_.estimate_rate(cur, cur, 2.5, 8), 2.5, 1e-9);
}

TEST_F(PerfEstimatorTest, EstimateRateInfeasibleCandidateIsZero) {
  const SystemState cur{4, 4, 8, 5};
  EXPECT_EQ(est_.estimate_rate(SystemState{0, 0, 0, 0}, cur, 4.0, 8), 0.0);
}

TEST_F(PerfEstimatorTest, AssignmentUsesTable) {
  // r(f=max) = 1.5 * 1.6/1.3 ~= 1.846; T=8, C_B=4 -> r*C_B ~= 7.38 < 8:
  // row 3: T_B = 7, T_L = 1.
  const ThreadAssignment a = est_.assignment(SystemState{4, 4, 8, 5}, 8);
  EXPECT_EQ(a.tb, 7);
  EXPECT_EQ(a.tl, 1);
}

TEST_F(PerfEstimatorTest, UtilizationBoundsAndBottleneck) {
  const ClusterUtilization u = est_.utilization(SystemState{4, 4, 8, 5}, 8);
  EXPECT_GT(u.big, 0.0);
  EXPECT_LE(u.big, 1.0 + 1e-12);
  EXPECT_GE(u.little, 0.0);
  EXPECT_LE(u.little, 1.0 + 1e-12);
  EXPECT_GE(std::max(u.big, u.little), 1.0 - 1e-9);  // Someone is critical.
}

TEST_F(PerfEstimatorTest, R0Settable) {
  est_.set_r0(1.0);
  EXPECT_DOUBLE_EQ(est_.r0(), 1.0);
  const SystemState s{4, 4, 8, 8};
  EXPECT_NEAR(est_.ratio(SystemState{4, 4, 0, 0}), 1.0, 1e-9);
  (void)s;
}

}  // namespace
}  // namespace hars
