#include "core/power_estimator.hpp"

#include <gtest/gtest.h>

#include "core/power_profiler.hpp"

namespace hars {
namespace {

class PowerEstimatorTest : public testing::Test {
 protected:
  Machine machine_ = Machine::exynos5422();
  PowerModel model_{machine_};
  PowerCoeffTable table_ = profile_power(machine_, model_);
  PerfEstimator perf_{machine_, 1.5};
};

TEST_F(PowerEstimatorTest, ProfilerFitsEveryLevelWell) {
  ASSERT_EQ(table_.big.alpha.size(), 9u);
  ASSERT_EQ(table_.little.alpha.size(), 6u);
  for (double r2 : table_.big.r_squared) EXPECT_GT(r2, 0.97);
  for (double r2 : table_.little.r_squared) EXPECT_GT(r2, 0.97);
}

TEST_F(PowerEstimatorTest, AlphaGrowsWithFrequency) {
  for (std::size_t i = 1; i < table_.big.alpha.size(); ++i) {
    EXPECT_GT(table_.big.alpha[i], table_.big.alpha[i - 1]);
  }
  for (std::size_t i = 1; i < table_.little.alpha.size(); ++i) {
    EXPECT_GT(table_.little.alpha[i], table_.little.alpha[i - 1]);
  }
}

TEST_F(PowerEstimatorTest, BigAlphaDominatesLittle) {
  // A big core at max frequency costs far more than a little core at max.
  EXPECT_GT(table_.big.alpha.back(), 3.0 * table_.little.alpha.back());
}

TEST_F(PowerEstimatorTest, EstimateMatchesGroundTruthClosely) {
  PowerEstimator est(table_);
  for (int level : {0, 4, 8}) {
    machine_.set_freq_level(machine_.big_cluster(), level);
    for (double busy : {1.0, 2.0, 3.5}) {
      const double truth = model_.cluster_power(machine_.big_cluster(), busy);
      const SystemState s{4, 0, level, 0};
      const double est_w = est.big_power(s, static_cast<int>(busy) == 0 ? 0 : 4,
                                         busy / 4.0);
      EXPECT_NEAR(est_w, truth, truth * 0.10 + 0.05)
          << "level=" << level << " busy=" << busy;
    }
  }
}

TEST_F(PowerEstimatorTest, IdleClusterStillHasBeta) {
  PowerEstimator est(table_);
  const SystemState s{0, 4, 0, 5};
  EXPECT_GT(est.big_power(s, 0, 0.0), 0.0);  // Beta = leakage floor.
}

TEST_F(PowerEstimatorTest, EstimateMonotoneInCores) {
  PowerEstimator est(table_);
  double prev = 0.0;
  for (int cb = 1; cb <= 4; ++cb) {
    const double p = est.estimate(SystemState{cb, 0, 8, 0}, 8, perf_);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST_F(PowerEstimatorTest, EstimateMonotoneInBigFrequencyWhenSaturated) {
  PowerEstimator est(table_);
  double prev = 0.0;
  for (int fb = 0; fb < 9; ++fb) {
    // 8 threads on 4 big cores: always saturated -> higher f, more power.
    const double p = est.estimate(SystemState{4, 0, fb, 0}, 8, perf_);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST_F(PowerEstimatorTest, LittleOnlyCheaperThanBigOnly) {
  PowerEstimator est(table_);
  const double big = est.estimate(SystemState{4, 0, 8, 0}, 8, perf_);
  const double little = est.estimate(SystemState{0, 4, 0, 5}, 8, perf_);
  EXPECT_GT(big, 2.0 * little);
}

TEST_F(PowerEstimatorTest, FreqLevelClampedInsteadOfCrashing) {
  PowerEstimator est(table_);
  const SystemState s{2, 0, 42, 0};  // Bogus level.
  EXPECT_GT(est.big_power(s, 2, 1.0), 0.0);
}

}  // namespace
}  // namespace hars
