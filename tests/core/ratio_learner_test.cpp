#include "core/ratio_learner.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hars {
namespace {

class RatioLearnerTest : public testing::Test {
 protected:
  /// Generates the rate the Table-3.1 model predicts for `state` under a
  /// ground-truth ratio, times a per-app constant.
  double true_rate(const SystemState& state, double true_r, double k = 5.0,
                   double noise = 0.0) {
    PerfEstimator est(machine_, true_r);
    const double tf = est.unit_time(state, threads_);
    double rate = k / tf;
    if (noise > 0.0) rate *= (1.0 + rng_.normal(0.0, noise));
    return rate;
  }

  Machine machine_ = Machine::exynos5422();
  int threads_ = 8;
  Rng rng_{11};
  std::vector<SystemState> mixed_states_{
      {4, 0, 8, 5}, {0, 4, 8, 5}, {2, 2, 4, 3}, {4, 4, 8, 5},
      {1, 3, 2, 4}, {3, 1, 6, 1}, {2, 4, 5, 5}, {4, 2, 3, 0}};
};

TEST_F(RatioLearnerTest, PriorUntilEnoughSamples) {
  RatioLearner learner(machine_, threads_);
  EXPECT_DOUBLE_EQ(learner.estimate(), 1.5);
  learner.observe(SystemState{4, 4, 8, 5}, 3.0);
  EXPECT_DOUBLE_EQ(learner.estimate(), 1.5);
  EXPECT_EQ(learner.samples(), 1u);
}

TEST_F(RatioLearnerTest, PriorWhenUnidentifiable) {
  RatioLearner learner(machine_, threads_);
  // Many samples but always the same core mix: r cannot be identified.
  for (int f = 0; f < 9; ++f) {
    learner.observe(SystemState{4, 4, f, 5}, true_rate({4, 4, f, 5}, 1.2));
  }
  EXPECT_DOUBLE_EQ(learner.estimate(), 1.5);
}

TEST_F(RatioLearnerTest, RecoversTrueRatioNoiseless) {
  for (double true_r : {1.0, 1.5, 2.0, 2.5}) {
    RatioLearner learner(machine_, threads_);
    for (const auto& s : mixed_states_) {
      learner.observe(s, true_rate(s, true_r));
    }
    EXPECT_NEAR(learner.estimate(), true_r, 0.051) << "true r = " << true_r;
  }
}

TEST_F(RatioLearnerTest, RecoversBlackscholesRatioUnderNoise) {
  RatioLearner learner(machine_, threads_);
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto& s : mixed_states_) {
      learner.observe(s, true_rate(s, 1.0, 5.0, 0.03));
    }
  }
  EXPECT_NEAR(learner.estimate(), 1.0, 0.15);
}

TEST_F(RatioLearnerTest, FitResidualLowForModelConsistentData) {
  RatioLearner learner(machine_, threads_);
  for (const auto& s : mixed_states_) learner.observe(s, true_rate(s, 1.5));
  EXPECT_LT(learner.fit_residual(), 1e-3);
}

TEST_F(RatioLearnerTest, IgnoresNonPositiveRates) {
  RatioLearner learner(machine_, threads_);
  learner.observe(SystemState{4, 4, 8, 5}, 0.0);
  learner.observe(SystemState{4, 4, 8, 5}, -1.0);
  EXPECT_EQ(learner.samples(), 0u);
}

TEST_F(RatioLearnerTest, ResetRestoresPrior) {
  RatioLearner learner(machine_, threads_);
  for (const auto& s : mixed_states_) learner.observe(s, true_rate(s, 2.0));
  EXPECT_NEAR(learner.estimate(), 2.0, 0.06);
  learner.reset();
  EXPECT_DOUBLE_EQ(learner.estimate(), 1.5);
  EXPECT_EQ(learner.samples(), 0u);
}

TEST_F(RatioLearnerTest, SlidingWindowForgetsOldRegime) {
  RatioLearnerConfig config;
  config.per_mix_cap = 2;
  RatioLearner learner(machine_, threads_, config);
  // Old regime r=2.5 ...
  for (const auto& s : mixed_states_) learner.observe(s, true_rate(s, 2.5));
  // ... displaced by repeated passes of a new regime at r=1.0 (the per-mix
  // cap evicts the stale entries state by state).
  for (int pass = 0; pass < 3; ++pass) {
    for (const auto& s : mixed_states_) learner.observe(s, true_rate(s, 1.0));
  }
  EXPECT_NEAR(learner.estimate(), 1.0, 0.1);
}

TEST_F(RatioLearnerTest, PerMixCapPreservesExplorationEvidence) {
  RatioLearner learner(machine_, threads_);
  // A short exploration phase over mixed states...
  for (const auto& s : mixed_states_) learner.observe(s, true_rate(s, 1.0));
  // ...followed by a long settled phase in one state must not wipe out
  // identifiability.
  const SystemState settled{0, 4, 0, 2};
  for (int i = 0; i < 500; ++i) {
    learner.observe(settled, true_rate(settled, 1.0, 5.0, 0.01));
  }
  EXPECT_NEAR(learner.estimate(), 1.0, 0.15);
}

}  // namespace
}  // namespace hars
