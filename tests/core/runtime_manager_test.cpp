#include "core/runtime_manager.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "apps/data_parallel_app.hpp"
#include "core/hars.hpp"
#include "sched/gts.hpp"

namespace hars {
namespace {

struct Fixture {
  SimEngine engine{Machine::exynos5422(), std::make_unique<GtsScheduler>()};
  std::unique_ptr<DataParallelApp> app;
  AppId id = -1;

  explicit Fixture(double work_per_iter = 4.0, int threads = 8) {
    DataParallelConfig cfg;
    cfg.threads = threads;
    cfg.speed = SpeedModel{3.0, 2.0};
    cfg.workload = {WorkloadShape::kStable, work_per_iter, 0.0, 0.0, 1};
    app = std::make_unique<DataParallelApp>("t", cfg);
    id = engine.add_app(app.get());
  }
};

TEST(RuntimeManager, StartsAtMaxState) {
  Fixture f;
  auto manager = attach_hars(f.engine, f.id, PerfTarget::around(2.0),
                             HarsVariant::kHarsE);
  EXPECT_EQ(manager->current_state(),
            StateSpace::from_machine(f.engine.machine()).max_state());
}

TEST(RuntimeManager, InstallsTargetOnMonitor) {
  Fixture f;
  auto manager = attach_hars(f.engine, f.id, PerfTarget::around(2.0),
                             HarsVariant::kHarsE);
  EXPECT_NEAR(f.app->heartbeats().target().avg(), 2.0, 1e-9);
}

TEST(RuntimeManager, AdaptsDownWhenOverperforming) {
  Fixture f;
  // Max state gives ~9+ hb/s for work=4; target 2 hb/s -> must shed power.
  auto manager = attach_hars(f.engine, f.id, PerfTarget::around(2.0),
                             HarsVariant::kHarsE);
  f.engine.run_for(60 * kUsPerSec);
  EXPECT_GT(manager->adaptations(), 0);
  const SystemState s = manager->current_state();
  EXPECT_LT(manhattan_distance(s, StateSpace::from_machine(f.engine.machine()).max_state()),
            100);  // Moved somewhere.
  const double rate = f.app->heartbeats().rate();
  EXPECT_NEAR(rate, 2.0, 0.5);
}

TEST(RuntimeManager, HarsIAdaptsSlowerThanHarsE) {
  Fixture fi;
  auto mi = attach_hars(fi.engine, fi.id, PerfTarget::around(2.0),
                        HarsVariant::kHarsI);
  Fixture fe;
  auto me = attach_hars(fe.engine, fe.id, PerfTarget::around(2.0),
                        HarsVariant::kHarsE);
  fi.engine.run_for(20 * kUsPerSec);
  fe.engine.run_for(20 * kUsPerSec);
  // HARS-I moves one knob per adaptation: after the same wall time its
  // state is no further from max than HARS-E's.
  const SystemState max_state =
      StateSpace::from_machine(fi.engine.machine()).max_state();
  EXPECT_LE(manhattan_distance(mi->current_state(), max_state),
            manhattan_distance(me->current_state(), max_state) + 1);
}

TEST(RuntimeManager, NoAdaptationInsideWindow) {
  Fixture f;
  RuntimeManagerConfig config = config_for_variant(HarsVariant::kHarsE);
  auto manager = attach_hars(f.engine, f.id, PerfTarget::around(2.0),
                             HarsVariant::kHarsE, &config);
  f.engine.run_for(90 * kUsPerSec);
  const std::int64_t settled = manager->adaptations();
  // Once in the window, further run should add few or no adaptations.
  f.engine.run_for(20 * kUsPerSec);
  EXPECT_LE(manager->adaptations() - settled, 3);
}

TEST(RuntimeManager, TraceRecordsHeartbeats) {
  Fixture f;
  auto manager = attach_hars(f.engine, f.id, PerfTarget::around(2.0),
                             HarsVariant::kHarsEI);
  f.engine.run_for(20 * kUsPerSec);
  ASSERT_FALSE(manager->trace().empty());
  const TracePoint& p = manager->trace().back();
  EXPECT_GT(p.hb_index, 0);
  EXPECT_GT(p.hps, 0.0);
  EXPECT_GE(p.big_cores, 0);
  EXPECT_LE(p.big_cores, 4);
  EXPECT_GT(p.big_freq_ghz, 0.0);
}

TEST(RuntimeManager, OverheadChargedToEngine) {
  Fixture f;
  auto manager = attach_hars(f.engine, f.id, PerfTarget::around(2.0),
                             HarsVariant::kHarsE);
  f.engine.run_for(30 * kUsPerSec);
  EXPECT_GT(f.engine.manager_overhead_us(), 0);
  EXPECT_LT(f.engine.manager_cpu_utilization_pct(), 10.0);
}

TEST(RuntimeManager, ApplyStateSetsFrequenciesAndAffinity) {
  Fixture f;
  RuntimeManagerConfig config = config_for_variant(HarsVariant::kHarsE);
  const PowerCoeffTable coeffs =
      profile_power(f.engine.machine(), f.engine.power_model());
  RuntimeManager manager(f.engine, f.id, PerfTarget::around(2.0), coeffs,
                         config);
  manager.apply_state(SystemState{2, 3, 1, 2});
  const Machine& m = f.engine.machine();
  EXPECT_EQ(m.freq_level(m.big_cluster()), 1);
  EXPECT_EQ(m.freq_level(m.little_cluster()), 2);
  // Affinities only cover the allocated cores (big 4-5, little 0-2).
  const CpuMask allowed = CpuMask::range(4, 2) | CpuMask::range(0, 3);
  for (int i = 0; i < f.app->thread_count(); ++i) {
    EXPECT_TRUE(allowed.contains(f.engine.thread_affinity(f.id, i))) << i;
  }
}

TEST(ConfigForVariant, MatchesPaper) {
  const RuntimeManagerConfig i = config_for_variant(HarsVariant::kHarsI);
  EXPECT_EQ(i.policy, SearchPolicy::kIncremental);
  EXPECT_EQ(i.scheduler, ThreadSchedulerKind::kChunk);
  const RuntimeManagerConfig e = config_for_variant(HarsVariant::kHarsE);
  EXPECT_EQ(e.policy, SearchPolicy::kExhaustive);
  EXPECT_EQ(e.exhaustive_window, 4);
  EXPECT_EQ(e.exhaustive_d, 7);
  const RuntimeManagerConfig ei = config_for_variant(HarsVariant::kHarsEI);
  EXPECT_EQ(ei.scheduler, ThreadSchedulerKind::kInterleaved);
}

// Regression: a non-positive target average zeroed every normalized-perf
// score (search tied at pp = 0); managers now reject such targets at
// construction / retarget time.
TEST(RuntimeManager, RejectsNonPositiveTargetWindow) {
  for (const PerfTarget target :
       {PerfTarget{-2.0, 1.0}, PerfTarget{0.0, 0.0}, PerfTarget{-3.0, -1.0}}) {
    Fixture f;
    EXPECT_THROW(
        attach_hars(f.engine, f.id, target, HarsVariant::kHarsE),
        std::invalid_argument)
        << "min=" << target.min << " max=" << target.max;
  }
}

TEST(HarsVariantName, Names) {
  EXPECT_STREQ(hars_variant_name(HarsVariant::kHarsI), "HARS-I");
  EXPECT_STREQ(hars_variant_name(HarsVariant::kHarsE), "HARS-E");
  EXPECT_STREQ(hars_variant_name(HarsVariant::kHarsEI), "HARS-EI");
}

}  // namespace
}  // namespace hars
