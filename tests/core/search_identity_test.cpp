// ISSUE 5 property suite: the memoized SearchScratch path must return
// bit-identical SearchResults to the retained reference implementations
// across randomized (state, target, params) cases for all three
// SearchPolicy values, on both golden platforms (exynos5422, sd855).
// "Bit-identical" is taken literally: the estimate doubles are compared
// by their bit patterns, not within a tolerance.
#include <bit>
#include <cstdint>
#include <gtest/gtest.h>

#include "core/power_profiler.hpp"
#include "core/search.hpp"
#include "core/tabu_search.hpp"
#include "hmp/platform_registry.hpp"
#include "util/rng.hpp"

namespace hars {
namespace {

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bit_identical(const SearchResult& a, const SearchResult& b,
                          const char* what, int case_index) {
  EXPECT_EQ(a.state, b.state) << what << " case " << case_index;
  EXPECT_EQ(a.candidates, b.candidates) << what << " case " << case_index;
  EXPECT_EQ(a.moved, b.moved) << what << " case " << case_index;
  EXPECT_EQ(bits_of(a.est_perf), bits_of(b.est_perf))
      << what << " case " << case_index;
  EXPECT_EQ(bits_of(a.est_power), bits_of(b.est_power))
      << what << " case " << case_index;
  EXPECT_EQ(bits_of(a.est_pp), bits_of(b.est_pp))
      << what << " case " << case_index;
}

SystemState random_valid_state(Rng& rng, const StateSpace& space) {
  for (;;) {
    const SystemState s{rng.uniform_int(0, space.max_big_cores),
                        rng.uniform_int(0, space.max_little_cores),
                        rng.uniform_int(0, space.num_big_freqs - 1),
                        rng.uniform_int(0, space.num_little_freqs - 1)};
    if (space.valid(s)) return s;
  }
}

void run_property_cases(const char* platform, int cases,
                        std::uint64_t seed) {
  const Machine machine =
      PlatformRegistry::instance().get(platform).make_machine();
  const StateSpace space = StateSpace::from_machine(machine);
  const PerfEstimator perf(machine, 1.5);
  const PowerEstimator power(profile_power(machine, PowerModel{machine}));
  Rng rng(seed);
  SearchScratch scratch;  // One scratch, one epoch per case (as managers do).

  for (int i = 0; i < cases; ++i) {
    const SystemState cur = random_valid_state(rng, space);
    const double center = rng.uniform(0.2, 6.0);
    const PerfTarget target = PerfTarget::around(center);
    const double rate = rng.uniform(0.0, 8.0);
    const int threads = rng.uniform_int(1, 16);
    const int remainder = rng.uniform_int(0, 2);
    const bool with_filter = rng.next_double() < 0.5;
    const auto filter_fn = [&](const SystemState& s) {
      return (s.big_cores + s.little_cores + s.big_freq + s.little_freq) % 3 !=
             remainder;
    };
    const CandidateFilter filter =
        with_filter ? CandidateFilter(filter_fn) : CandidateFilter();

    // Incremental and exhaustive share get_next_sys_state; their policies
    // differ only in SearchParams, so exercise both parameterizations.
    for (const SearchPolicy policy :
         {SearchPolicy::kIncremental, SearchPolicy::kExhaustive}) {
      SearchParams params;
      if (policy == SearchPolicy::kIncremental) {
        params = params_for_policy(policy, rng.next_double() < 0.5);
      } else {
        params = params_for_policy(policy, rng.next_double() < 0.5,
                                   rng.uniform_int(0, 5),
                                   rng.uniform_int(0, 10));
      }
      const SearchResult ref = get_next_sys_state_reference(
          rate, cur, target, params, space, perf, power, threads, filter);
      scratch.begin_tick(space);
      const SearchResult opt =
          get_next_sys_state(rate, cur, target, params, space, perf, power,
                             threads, filter, &scratch);
      expect_bit_identical(ref, opt, search_policy_name(policy), i);
      if (testing::Test::HasFailure()) return;  // Stop at the first failure.
    }

    TabuParams tabu;
    tabu.iterations = rng.uniform_int(1, 16);
    tabu.tenure = rng.uniform_int(1, 10);
    tabu.step = rng.uniform_int(1, 2);
    const SearchResult ref = tabu_get_next_sys_state_reference(
        rate, cur, target, tabu, space, perf, power, threads, filter);
    scratch.begin_tick(space);
    const SearchResult opt =
        tabu_get_next_sys_state(rate, cur, target, tabu, space, perf, power,
                                threads, filter, &scratch);
    expect_bit_identical(ref, opt, "tabu", i);
    if (testing::Test::HasFailure()) return;
  }
}

TEST(SearchIdentityProperty, ExynosThousandRandomizedCases) {
  run_property_cases("exynos5422", 1000, 0xCAFE);
}

TEST(SearchIdentityProperty, Sd855ThousandRandomizedCases) {
  run_property_cases("sd855", 1000, 0xBEEF);
}

}  // namespace
}  // namespace hars
