#include "core/search.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/power_profiler.hpp"

namespace hars {
namespace {

class SearchTest : public testing::Test {
 protected:
  Machine machine_ = Machine::exynos5422();
  StateSpace space_ = StateSpace::from_machine(machine_);
  PerfEstimator perf_{machine_, 1.5};
  PowerEstimator power_{profile_power(machine_, PowerModel{machine_})};
};

TEST_F(SearchTest, NormalizedPerfCapsAtOne) {
  const PerfTarget t{1.9, 2.1};
  EXPECT_NEAR(normalized_perf(2.0, t), 1.0, 1e-12);
  EXPECT_NEAR(normalized_perf(4.0, t), 1.0, 1e-12);  // No overperf credit.
  EXPECT_NEAR(normalized_perf(1.0, t), 0.5, 1e-12);
  EXPECT_EQ(normalized_perf(1.0, PerfTarget{0.0, 0.0}), 0.0);
}

TEST_F(SearchTest, PolicyParams) {
  const SearchParams over = params_for_policy(SearchPolicy::kIncremental, true);
  EXPECT_EQ(over.m, 1);
  EXPECT_EQ(over.n, 0);
  EXPECT_EQ(over.d, 1);
  const SearchParams under = params_for_policy(SearchPolicy::kIncremental, false);
  EXPECT_EQ(under.m, 0);
  EXPECT_EQ(under.n, 1);
  EXPECT_EQ(under.d, 1);
  const SearchParams ex = params_for_policy(SearchPolicy::kExhaustive, true);
  EXPECT_EQ(ex.m, 4);
  EXPECT_EQ(ex.n, 4);
  EXPECT_EQ(ex.d, 7);
}

// ISSUE 5 satellite: params_for_policy deliberately passes
// `exhaustive_window` for BOTH the decrease bound m and the increase
// bound n of non-incremental policies — the paper's exhaustive window is
// symmetric by definition (§3.1.3: HARS-E is m = n = 4, d = 7),
// independent of the over/underperforming direction. Only HARS-I is
// direction-asymmetric.
TEST_F(SearchTest, ExhaustiveWindowIsSymmetric) {
  for (bool over : {true, false}) {
    for (int window : {1, 3, 4, 6}) {
      const SearchParams p =
          params_for_policy(SearchPolicy::kExhaustive, over, window, 7);
      EXPECT_EQ(p.m, window) << "over=" << over;
      EXPECT_EQ(p.n, window) << "over=" << over;
      EXPECT_EQ(p.d, 7);
      // Tabu runs through the same branch: its fallback params are the
      // exhaustive ones.
      const SearchParams t =
          params_for_policy(SearchPolicy::kTabu, over, window, 7);
      EXPECT_EQ(t.m, window);
      EXPECT_EQ(t.n, window);
    }
  }
  // The symmetric window really explores both directions: from a middle
  // state, candidates exist below and above on every dimension.
  const SystemState cur{2, 2, 4, 3};
  const PerfTarget target = PerfTarget::around(2.0);
  bool saw_lower_big = false;
  bool saw_higher_big = false;
  const auto filter = [&](const SystemState& s) {
    saw_lower_big |= s.big_cores < cur.big_cores;
    saw_higher_big |= s.big_cores > cur.big_cores;
    return true;
  };
  (void)get_next_sys_state(2.0, cur, target,
                           params_for_policy(SearchPolicy::kExhaustive, true),
                           space_, perf_, power_, 8, filter);
  EXPECT_TRUE(saw_lower_big);
  EXPECT_TRUE(saw_higher_big);
}

// Golden HARS-E decisions on the exynos5422 space (r0 = 1.5, profiled
// power table, 8 threads): chosen states and candidate counts pinned so
// any change to the window semantics or the selection rules is caught.
// Values derived from the retained reference implementation.
TEST_F(SearchTest, HarsEDecisionGolden) {
  struct Golden {
    SystemState cur;
    double rate;
    bool overperforming;
    SystemState expect;
    int candidates;
  };
  const Golden goldens[] = {
      {{4, 4, 8, 5}, 4.0, true, {0, 4, 5, 5}, 270},
      {{2, 2, 4, 3}, 1.0, false, {3, 3, 7, 5}, 990},
      {{1, 0, 0, 0}, 0.4, false, {3, 4, 0, 0}, 300},
      {{3, 1, 6, 2}, 2.6, true, {2, 3, 2, 2}, 749},
  };
  const PerfTarget target = PerfTarget::around(2.0);
  SearchScratch scratch;
  for (const Golden& g : goldens) {
    const SearchParams params =
        params_for_policy(SearchPolicy::kExhaustive, g.overperforming);
    // Reference and memoized paths must both hit the golden decision.
    const SearchResult ref = get_next_sys_state_reference(
        g.rate, g.cur, target, params, space_, perf_, power_, 8);
    scratch.begin_tick(space_);
    const SearchResult opt =
        get_next_sys_state(g.rate, g.cur, target, params, space_, perf_,
                           power_, 8, {}, &scratch);
    for (const SearchResult& r : {ref, opt}) {
      EXPECT_EQ(r.state, g.expect) << g.cur.to_string();
      EXPECT_EQ(r.candidates, g.candidates) << g.cur.to_string();
      EXPECT_TRUE(r.moved);
    }
  }
}

TEST_F(SearchTest, OverperformingMovesToCheaperState) {
  // At max state with rate far above target, the search must find a state
  // that still satisfies the target with lower estimated power.
  const SystemState cur = space_.max_state();
  const PerfTarget target = PerfTarget::around(2.0);
  const SearchResult r =
      get_next_sys_state(4.0, cur, target, SearchParams{4, 4, 7}, space_,
                         perf_, power_, 8);
  EXPECT_TRUE(r.moved);
  EXPECT_GE(r.est_perf, target.min);
  EXPECT_LT(power_.estimate(r.state, 8, perf_), power_.estimate(cur, 8, perf_));
}

TEST_F(SearchTest, UnderperformingMovesToFasterState) {
  const SystemState cur{1, 0, 0, 0};
  const PerfTarget target = PerfTarget::around(2.0);
  const SearchResult r =
      get_next_sys_state(0.4, cur, target, SearchParams{4, 4, 7}, space_,
                         perf_, power_, 8);
  EXPECT_TRUE(r.moved);
  EXPECT_GT(perf_.estimate_rate(r.state, cur, 0.4, 8), 0.4);
}

TEST_F(SearchTest, ResultAlwaysWithinDistanceBudget) {
  const PerfTarget target = PerfTarget::around(2.0);
  for (int d : {1, 3, 5, 7}) {
    const SystemState cur{2, 2, 4, 3};
    const SearchResult r = get_next_sys_state(
        4.0, cur, target, SearchParams{4, 4, d}, space_, perf_, power_, 8);
    EXPECT_LE(manhattan_distance(r.state, cur), d) << "d=" << d;
  }
}

TEST_F(SearchTest, ResultAlwaysValid) {
  const PerfTarget target = PerfTarget::around(1.0);
  for (double rate : {0.1, 1.0, 10.0}) {
    const SystemState cur{0, 1, 0, 0};  // Corner of the space.
    const SearchResult r = get_next_sys_state(
        rate, cur, target, SearchParams{4, 4, 7}, space_, perf_, power_, 8);
    EXPECT_TRUE(space_.valid(r.state));
  }
}

TEST_F(SearchTest, IncrementalChangesAtMostOneStep) {
  const SystemState cur{2, 2, 4, 3};
  const PerfTarget target = PerfTarget::around(2.0);
  const SearchResult r = get_next_sys_state(
      4.0, cur, target, params_for_policy(SearchPolicy::kIncremental, true),
      space_, perf_, power_, 8);
  EXPECT_LE(manhattan_distance(r.state, cur), 1);
}

TEST_F(SearchTest, CandidateCountGrowsWithD) {
  const SystemState cur{2, 2, 4, 3};
  const PerfTarget target = PerfTarget::around(2.0);
  int prev = 0;
  for (int d : {1, 3, 5, 7, 9}) {
    const SearchResult r = get_next_sys_state(
        4.0, cur, target, SearchParams{4, 4, d}, space_, perf_, power_, 8);
    EXPECT_GT(r.candidates, prev) << "d=" << d;
    prev = r.candidates;
  }
}

TEST_F(SearchTest, FilterExcludesCandidates) {
  const SystemState cur{2, 2, 4, 3};
  const PerfTarget target = PerfTarget::around(2.0);
  // Forbid any big-core change (MP-HARS-style narrowing). Named lvalue:
  // CandidateFilter is a non-owning reference.
  const auto filter = [&](const SystemState& s) {
    return s.big_cores == cur.big_cores;
  };
  const SearchResult r = get_next_sys_state(4.0, cur, target,
                                            SearchParams{4, 4, 7}, space_,
                                            perf_, power_, 8, filter);
  EXPECT_EQ(r.state.big_cores, cur.big_cores);
}

TEST_F(SearchTest, StaysWhenCurrentAlreadyBest) {
  // Current state satisfies the target; no candidate should win unless it
  // strictly improves estimated perf/watt.
  const PerfTarget target = PerfTarget::around(2.0);
  // First let an exhaustive search settle from max.
  SystemState cur = space_.max_state();
  double rate = 4.0;
  for (int iter = 0; iter < 10; ++iter) {
    const SearchResult r = get_next_sys_state(
        rate, cur, target, SearchParams{4, 4, 7}, space_, perf_, power_, 8);
    if (!r.moved) break;
    rate = perf_.estimate_rate(r.state, cur, rate, 8);
    cur = r.state;
  }
  // Converged: one more search stays put.
  const SearchResult r = get_next_sys_state(
      rate, cur, target, SearchParams{4, 4, 7}, space_, perf_, power_, 8);
  EXPECT_FALSE(r.moved);
}

TEST_F(SearchTest, PrefersTargetSatisfactionOverEfficiency) {
  // From a tiny state, some candidates have great perf/watt but miss the
  // target; the search must prefer a target-satisfying one (Algorithm 2's
  // two-tier selection).
  const SystemState cur{1, 0, 4, 0};
  const double rate = 1.0;
  const PerfTarget target = PerfTarget::around(1.5);
  const SearchResult r = get_next_sys_state(
      rate, cur, target, SearchParams{4, 4, 7}, space_, perf_, power_, 8);
  EXPECT_GE(r.est_perf, target.min);
}

// Distance-budget sweep as a parameterized property: the chosen state never
// violates the budget nor the space bounds for any (current state, rate).
using SearchCase = std::tuple<int, int, int, int, double, int>;

class SearchProperty : public testing::TestWithParam<SearchCase> {};

TEST_P(SearchProperty, RespectsBudgetAndBounds) {
  const auto [cb, cl, fb, fl, rate, d] = GetParam();
  Machine machine = Machine::exynos5422();
  const StateSpace space = StateSpace::from_machine(machine);
  PerfEstimator perf(machine, 1.5);
  PowerEstimator power(profile_power(machine, PowerModel{machine}));
  const SystemState cur{cb, cl, fb, fl};
  if (!space.valid(cur)) GTEST_SKIP();
  const PerfTarget target = PerfTarget::around(2.0);
  const SearchResult r = get_next_sys_state(rate, cur, target,
                                            SearchParams{4, 4, d}, space, perf,
                                            power, 8);
  EXPECT_TRUE(space.valid(r.state));
  EXPECT_LE(manhattan_distance(r.state, cur), d);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SearchProperty,
    testing::Combine(testing::Values(0, 2, 4), testing::Values(0, 2, 4),
                     testing::Values(0, 4, 8), testing::Values(0, 5),
                     testing::Values(0.5, 2.0, 6.0), testing::Values(1, 4, 9)));

}  // namespace
}  // namespace hars
