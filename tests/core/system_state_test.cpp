#include "core/system_state.hpp"

#include <gtest/gtest.h>

namespace hars {
namespace {

TEST(SystemState, Equality) {
  const SystemState a{1, 2, 3, 4};
  const SystemState b{1, 2, 3, 4};
  const SystemState c{1, 2, 3, 5};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(SystemState, ManhattanDistance) {
  const SystemState a{1, 2, 3, 4};
  const SystemState b{2, 0, 3, 7};
  EXPECT_EQ(manhattan_distance(a, b), 1 + 2 + 0 + 3);
  EXPECT_EQ(manhattan_distance(a, a), 0);
  EXPECT_EQ(manhattan_distance(a, b), manhattan_distance(b, a));
}

TEST(SystemState, ToStringReadable) {
  EXPECT_EQ((SystemState{1, 2, 3, 4}.to_string()), "(CB=1 CL=2 fB=3 fL=4)");
}

TEST(StateSpace, FromExynosMachine) {
  const StateSpace s = StateSpace::from_machine(Machine::exynos5422());
  EXPECT_EQ(s.max_big_cores, 4);
  EXPECT_EQ(s.max_little_cores, 4);
  EXPECT_EQ(s.num_big_freqs, 9);
  EXPECT_EQ(s.num_little_freqs, 6);
}

TEST(StateSpace, ValidityBounds) {
  const StateSpace s = StateSpace::from_machine(Machine::exynos5422());
  EXPECT_TRUE(s.valid(SystemState{4, 4, 8, 5}));
  EXPECT_TRUE(s.valid(SystemState{0, 1, 0, 0}));
  EXPECT_TRUE(s.valid(SystemState{1, 0, 0, 0}));
  EXPECT_FALSE(s.valid(SystemState{0, 0, 0, 0}));  // Needs >= 1 core.
  EXPECT_FALSE(s.valid(SystemState{5, 0, 0, 0}));
  EXPECT_FALSE(s.valid(SystemState{-1, 2, 0, 0}));
  EXPECT_FALSE(s.valid(SystemState{1, 1, 9, 0}));  // Big freq out of range.
  EXPECT_FALSE(s.valid(SystemState{1, 1, 0, 6}));  // Little freq out of range.
}

TEST(StateSpace, MaxState) {
  const StateSpace s = StateSpace::from_machine(Machine::exynos5422());
  const SystemState m = s.max_state();
  EXPECT_EQ(m, (SystemState{4, 4, 8, 5}));
  EXPECT_TRUE(s.valid(m));
}

TEST(StateSpace, NarrowedSpaceForMpHars) {
  StateSpace s = StateSpace::from_machine(Machine::exynos5422());
  s.max_big_cores = 2;  // Only 2 big cores available to this app.
  EXPECT_FALSE(s.valid(SystemState{3, 0, 0, 0}));
  EXPECT_TRUE(s.valid(SystemState{2, 0, 0, 0}));
}

}  // namespace
}  // namespace hars
