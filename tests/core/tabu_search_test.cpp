#include "core/tabu_search.hpp"

#include <gtest/gtest.h>

#include "core/power_profiler.hpp"

namespace hars {
namespace {

class TabuSearchTest : public testing::Test {
 protected:
  Machine machine_ = Machine::exynos5422();
  StateSpace space_ = StateSpace::from_machine(machine_);
  PerfEstimator perf_{machine_, 1.5};
  PowerEstimator power_{profile_power(machine_, PowerModel{machine_})};
};

TEST_F(TabuSearchTest, ReturnsValidState) {
  const PerfTarget target = PerfTarget::around(2.0);
  for (const SystemState cur : {SystemState{4, 4, 8, 5}, SystemState{0, 1, 0, 0},
                                SystemState{2, 2, 4, 3}}) {
    const SearchResult r = tabu_get_next_sys_state(
        3.0, cur, target, TabuParams{}, space_, perf_, power_, 8);
    EXPECT_TRUE(space_.valid(r.state)) << cur.to_string();
  }
}

TEST_F(TabuSearchTest, TravelsFurtherThanOneNeighbourhood) {
  // From the max state massively overperforming, a 12-step trajectory can
  // reach states far beyond a d=1 neighbourhood.
  const SystemState cur = space_.max_state();
  const PerfTarget target = PerfTarget::around(2.0);
  const SearchResult r = tabu_get_next_sys_state(
      8.0, cur, target, TabuParams{12, 8, 1}, space_, perf_, power_, 8);
  EXPECT_TRUE(r.moved);
  EXPECT_GT(manhattan_distance(r.state, cur), 1);
  EXPECT_GE(r.est_perf, target.min);
}

TEST_F(TabuSearchTest, FindsEfficientTargetSatisfyingState) {
  const SystemState cur = space_.max_state();
  const PerfTarget target = PerfTarget::around(2.0);
  const SearchResult tabu = tabu_get_next_sys_state(
      8.0, cur, target, TabuParams{16, 8, 1}, space_, perf_, power_, 8);
  const SearchResult sweep = get_next_sys_state(
      8.0, cur, target, SearchParams{4, 4, 7}, space_, perf_, power_, 8);
  // The trajectory should be competitive with the exhaustive sweep.
  EXPECT_GE(tabu.est_pp, 0.7 * sweep.est_pp);
}

TEST_F(TabuSearchTest, RespectsCandidateFilter) {
  const SystemState cur{2, 2, 4, 3};
  const PerfTarget target = PerfTarget::around(2.0);
  // Named lvalue: CandidateFilter is a non-owning reference.
  const auto filter = [&](const SystemState& s) {
    return s.big_cores == cur.big_cores;  // Big-core count locked.
  };
  const SearchResult r = tabu_get_next_sys_state(
      3.0, cur, target, TabuParams{}, space_, perf_, power_, 8, filter);
  EXPECT_EQ(r.state.big_cores, cur.big_cores);
}

TEST_F(TabuSearchTest, CandidateCountScalesWithIterations) {
  const SystemState cur{2, 2, 4, 3};
  const PerfTarget target = PerfTarget::around(2.0);
  const SearchResult small = tabu_get_next_sys_state(
      3.0, cur, target, TabuParams{2, 8, 1}, space_, perf_, power_, 8);
  const SearchResult large = tabu_get_next_sys_state(
      3.0, cur, target, TabuParams{20, 8, 1}, space_, perf_, power_, 8);
  EXPECT_GT(large.candidates, small.candidates);
}

TEST_F(TabuSearchTest, DoesNotReturnWorseThanCurrentWhenSatisfied) {
  // Current state already satisfies the target; the result must not be a
  // target-missing state.
  const SystemState cur{0, 4, 0, 2};
  const PerfTarget target = PerfTarget::around(2.0);
  const SearchResult r = tabu_get_next_sys_state(
      2.0, cur, target, TabuParams{}, space_, perf_, power_, 8);
  EXPECT_GE(r.est_perf, target.min);
}

TEST_F(TabuSearchTest, MovedFlagConsistent) {
  const SystemState cur{0, 4, 0, 1};
  const PerfTarget target = PerfTarget::around(2.0);
  const SearchResult r = tabu_get_next_sys_state(
      2.0, cur, target, TabuParams{}, space_, perf_, power_, 8);
  EXPECT_EQ(r.moved, !(r.state == cur));
}

TEST(SearchPolicyName, IncludesTabu) {
  EXPECT_STREQ(search_policy_name(SearchPolicy::kTabu), "tabu");
  EXPECT_STREQ(search_policy_name(SearchPolicy::kIncremental), "incremental");
  EXPECT_STREQ(search_policy_name(SearchPolicy::kExhaustive), "exhaustive");
}

}  // namespace
}  // namespace hars
