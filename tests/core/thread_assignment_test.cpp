#include "core/thread_assignment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

namespace hars {
namespace {

// Brute-force optimum: try every (tb, tl) split and return the best t_f.
double brute_force_best_tf(int t, int cb, int cl, double sb, double sl) {
  double best = std::numeric_limits<double>::infinity();
  for (int tb = 0; tb <= t; ++tb) {
    const int tl = t - tb;
    ThreadAssignment a;
    a.tb = tb;
    a.tl = tl;
    a.cb_used = std::min(tb, cb);
    a.cl_used = std::min(tl, cl);
    if ((tb > 0 && cb == 0) || (tl > 0 && cl == 0)) continue;
    best = std::min(best, unit_completion_time(a, t, t, cb, cl, sb, sl));
  }
  return best;
}

TEST(ThreadAssignment, Row1OneCorePerThread) {
  // 0 < T <= C_B: all threads on dedicated big cores.
  const ThreadAssignment a = assign_threads(3, 4, 4, 1.5);
  EXPECT_EQ(a.tb, 3);
  EXPECT_EQ(a.tl, 0);
  EXPECT_EQ(a.cb_used, 3);
  EXPECT_EQ(a.cl_used, 0);
}

TEST(ThreadAssignment, Row2TimeShareBigStillWins) {
  // C_B < T <= r*C_B: time-sharing big beats moving to little.
  // T=5, C_B=4, r=1.5: r*C_B = 6 >= 5.
  const ThreadAssignment a = assign_threads(5, 4, 4, 1.5);
  EXPECT_EQ(a.tb, 5);
  EXPECT_EQ(a.tl, 0);
  EXPECT_EQ(a.cb_used, 4);
  EXPECT_EQ(a.cl_used, 0);
}

TEST(ThreadAssignment, Row3SpillToLittle) {
  // r*C_B < T <= r*C_B + C_L: T_B = floor(r*C_B).
  // T=8, C_B=4, C_L=4, r=1.5: r*C_B = 6 < 8 <= 10.
  const ThreadAssignment a = assign_threads(8, 4, 4, 1.5);
  EXPECT_EQ(a.tb, 6);
  EXPECT_EQ(a.tl, 2);
  EXPECT_EQ(a.cb_used, 4);
  EXPECT_EQ(a.cl_used, 2);
}

TEST(ThreadAssignment, Row4ProportionalSplit) {
  // T > r*C_B + C_L: proportional with ceil on the big side.
  // T=20, C_B=4, C_L=4, r=1.5: T_B = ceil(6/10*20) = 12.
  const ThreadAssignment a = assign_threads(20, 4, 4, 1.5);
  EXPECT_EQ(a.tb, 12);
  EXPECT_EQ(a.tl, 8);
  EXPECT_EQ(a.cb_used, 4);
  EXPECT_EQ(a.cl_used, 4);
}

TEST(ThreadAssignment, DegenerateNoBigCores) {
  const ThreadAssignment a = assign_threads(6, 0, 4, 1.5);
  EXPECT_EQ(a.tb, 0);
  EXPECT_EQ(a.tl, 6);
  EXPECT_EQ(a.cl_used, 4);
}

TEST(ThreadAssignment, DegenerateNoLittleCores) {
  const ThreadAssignment a = assign_threads(6, 4, 0, 1.5);
  EXPECT_EQ(a.tb, 6);
  EXPECT_EQ(a.tl, 0);
  EXPECT_EQ(a.cb_used, 4);
}

TEST(ThreadAssignment, ZeroThreads) {
  const ThreadAssignment a = assign_threads(0, 4, 4, 1.5);
  EXPECT_EQ(a.tb + a.tl, 0);
}

TEST(ThreadAssignment, MirroredWhenLittleFaster) {
  // r < 1: little is effectively faster (e.g. big at 0.8 GHz, little 1.3).
  const ThreadAssignment a = assign_threads(3, 4, 4, 0.5);
  EXPECT_EQ(a.tl, 3);  // One fast (little) core per thread.
  EXPECT_EQ(a.tb, 0);
}

TEST(UnitCompletionTime, DedicatedCores) {
  ThreadAssignment a{2, 2, 2, 2};
  // W=4 over 4 threads -> w=1; tB = 1/2, tL = 1/1.
  const double tf = unit_completion_time(a, 4, 4.0, 4, 4, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(tf, 1.0);
}

TEST(UnitCompletionTime, TimeSharedCluster) {
  ThreadAssignment a{4, 0, 2, 0};
  // 4 threads share 2 big cores: tB = 4*w/(2*sB) = 4*1/(2*2) = 1.
  const double tf = unit_completion_time(a, 4, 4.0, 2, 4, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(tf, 1.0);
}

TEST(UnitCompletionTime, InfeasibleIsInfinite) {
  ThreadAssignment a{2, 0, 0, 0};
  EXPECT_TRUE(std::isinf(unit_completion_time(a, 2, 2.0, 0, 4, 2.0, 1.0)));
}

TEST(EstimateUtilization, BottleneckClusterFullyUtilized) {
  const ThreadAssignment a = assign_threads(8, 4, 4, 1.5);
  const ClusterUtilization u = estimate_utilization(a, 8, 4, 4, 1.5, 1.0);
  // T_B = 6 on 4 cores is the slower side in this layout.
  EXPECT_GT(u.big, 0.9);
  EXPECT_GT(u.little, 0.0);
  EXPECT_LE(u.big, 1.0 + 1e-12);
  EXPECT_LE(u.little, 1.0 + 1e-12);
}

TEST(EstimateUtilization, UnusedClusterZero) {
  const ThreadAssignment a = assign_threads(2, 4, 4, 1.5);
  const ClusterUtilization u = estimate_utilization(a, 2, 4, 4, 1.5, 1.0);
  EXPECT_EQ(u.little, 0.0);
  EXPECT_GT(u.big, 0.0);
}

// ---- Property sweep: Table 3.1 minimizes t_f over brute force. ----

using AssignCase = std::tuple<int, int, int, double>;  // T, C_B, C_L, r.

class ThreadAssignmentOptimality : public testing::TestWithParam<AssignCase> {};

TEST_P(ThreadAssignmentOptimality, MatchesBruteForceOptimum) {
  const auto [t, cb, cl, r] = GetParam();
  const double sl = 1.0;
  const double sb = r * sl;
  const ThreadAssignment a = assign_threads(t, cb, cl, r);
  EXPECT_EQ(a.tb + a.tl, t);
  EXPECT_LE(a.cb_used, cb);
  EXPECT_LE(a.cl_used, cl);
  EXPECT_LE(a.cb_used, std::max(a.tb, 0));
  EXPECT_LE(a.cl_used, std::max(a.tl, 0));
  const double table_tf = unit_completion_time(a, t, t, cb, cl, sb, sl);
  const double best_tf = brute_force_best_tf(t, cb, cl, sb, sl);
  // Table 3.1 rounds the proportional split (floor/ceil), so it can be off
  // the brute-force optimum by at most one thread on the fast side. The
  // implied bound is (ideal_fast + 1) / ideal_fast.
  const double r_fast = r >= 1.0 ? r : 1.0 / r;
  const int c_fast = r >= 1.0 ? cb : cl;
  const int c_slow = r >= 1.0 ? cl : cb;
  const double ideal_fast =
      r_fast * c_fast / (r_fast * c_fast + c_slow) * static_cast<double>(t);
  const double slack = 1.0 + 1.0 / std::max(1.0, std::floor(ideal_fast));
  EXPECT_LE(table_tf, best_tf * slack + 1e-9)
      << "T=" << t << " CB=" << cb << " CL=" << cl << " r=" << r;
}

std::vector<AssignCase> assignment_cases() {
  std::vector<AssignCase> cases;
  for (int t : {1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 24}) {
    for (int cb : {0, 1, 2, 3, 4}) {
      for (int cl : {0, 1, 2, 4}) {
        if (cb + cl == 0) continue;
        for (double r : {0.6, 1.0, 1.5, 2.0, 3.0}) {
          cases.emplace_back(t, cb, cl, r);
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThreadAssignmentOptimality,
                         testing::ValuesIn(assignment_cases()));

}  // namespace
}  // namespace hars
