#include "core/thread_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "apps/data_parallel_app.hpp"
#include "sched/gts.hpp"

namespace hars {
namespace {

int count_big(const std::vector<bool>& plan) {
  int n = 0;
  for (bool b : plan) n += b;
  return n;
}

TEST(PlanThreadPlacement, ChunkPutsConsecutiveLowIdsOnLittle) {
  // Figure 3.2(a): T0-T3 little, T4-T7 big.
  const auto plan = plan_thread_placement(ThreadSchedulerKind::kChunk, 8, 4, 4);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(plan[static_cast<std::size_t>(i)]);
  for (int i = 4; i < 8; ++i) EXPECT_TRUE(plan[static_cast<std::size_t>(i)]);
}

TEST(PlanThreadPlacement, InterleavedAlternatesStartingLittle) {
  // Figure 3.2(b): T0(L), T1(B), T2(L), T3(B), ...
  const auto plan =
      plan_thread_placement(ThreadSchedulerKind::kInterleaved, 8, 4, 4);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(plan[static_cast<std::size_t>(i)], i % 2 == 1) << "thread " << i;
  }
}

TEST(PlanThreadPlacement, QuotasRespectedWhenUnequal) {
  for (auto kind : {ThreadSchedulerKind::kChunk, ThreadSchedulerKind::kInterleaved}) {
    for (int tb = 0; tb <= 8; ++tb) {
      const auto plan = plan_thread_placement(kind, 8, tb, 8 - tb);
      EXPECT_EQ(count_big(plan), tb) << thread_scheduler_name(kind);
    }
  }
}

TEST(PlanThreadPlacement, InterleavedSpillsAfterQuotaExhausted) {
  // tb=6, tl=2: L,B,L,B,B,B,B,B.
  const auto plan =
      plan_thread_placement(ThreadSchedulerKind::kInterleaved, 8, 6, 2);
  const std::vector<bool> expected{false, true, false, true, true, true, true, true};
  EXPECT_EQ(plan, expected);
}

TEST(PlanThreadPlacement, AllOneSide) {
  const auto all_big = plan_thread_placement(ThreadSchedulerKind::kChunk, 4, 4, 0);
  EXPECT_EQ(count_big(all_big), 4);
  const auto all_little =
      plan_thread_placement(ThreadSchedulerKind::kInterleaved, 4, 0, 4);
  EXPECT_EQ(count_big(all_little), 0);
}

TEST(PlanThreadPlacement, EmptyPlan) {
  EXPECT_TRUE(plan_thread_placement(ThreadSchedulerKind::kChunk, 0, 0, 0).empty());
}

TEST(ThreadSchedulerName, Names) {
  EXPECT_STREQ(thread_scheduler_name(ThreadSchedulerKind::kChunk), "chunk");
  EXPECT_STREQ(thread_scheduler_name(ThreadSchedulerKind::kInterleaved),
               "interleaved");
}

TEST(ApplyThreadSchedule, SetsAffinityMasks) {
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  DataParallelConfig cfg;
  cfg.threads = 8;
  cfg.workload = {WorkloadShape::kStable, 8.0, 0.0, 0.0, 1};
  DataParallelApp app("t", cfg);
  const AppId id = engine.add_app(&app);

  ThreadAssignment a;
  a.tb = 5;
  a.tl = 3;
  const CpuMask big_set = CpuMask::range(4, 3);     // 3 big cores.
  const CpuMask little_set = CpuMask::range(0, 2);  // 2 little cores.
  apply_thread_schedule(engine, id, ThreadSchedulerKind::kChunk, a, big_set,
                        little_set);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(engine.thread_affinity(id, i), little_set) << i;
  }
  for (int i = 3; i < 8; ++i) {
    EXPECT_EQ(engine.thread_affinity(id, i), big_set) << i;
  }
}

TEST(ApplyThreadSchedule, EmptySideFallsBackToUnion) {
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  DataParallelConfig cfg;
  cfg.threads = 2;
  cfg.workload = {WorkloadShape::kStable, 2.0, 0.0, 0.0, 1};
  DataParallelApp app("t", cfg);
  const AppId id = engine.add_app(&app);

  ThreadAssignment a;
  a.tb = 0;
  a.tl = 2;
  apply_thread_schedule(engine, id, ThreadSchedulerKind::kChunk, a,
                        CpuMask::range(4, 2), CpuMask());
  // Little side empty -> both threads fall back to the union.
  EXPECT_EQ(engine.thread_affinity(id, 0), CpuMask::range(4, 2));
  EXPECT_EQ(engine.thread_affinity(id, 1), CpuMask::range(4, 2));
}

}  // namespace
}  // namespace hars
