#include "core/workload_predictor.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hars {
namespace {

TEST(PredictorFactory, MakesRequestedKind) {
  auto last = make_predictor(PredictorKind::kLastValue);
  auto kalman = make_predictor(PredictorKind::kKalman);
  EXPECT_NE(dynamic_cast<LastValuePredictor*>(last.get()), nullptr);
  EXPECT_NE(dynamic_cast<KalmanRatePredictor*>(kalman.get()), nullptr);
}

TEST(PredictorNames, Names) {
  EXPECT_STREQ(predictor_kind_name(PredictorKind::kLastValue), "last-value");
  EXPECT_STREQ(predictor_kind_name(PredictorKind::kKalman), "kalman");
}

TEST(LastValuePredictor, PassesThrough) {
  LastValuePredictor p;
  EXPECT_DOUBLE_EQ(p.observe(2.5), 2.5);
  p.on_state_change(10.0);  // Ignored.
  EXPECT_DOUBLE_EQ(p.observe(0.1), 0.1);
}

TEST(KalmanRatePredictor, SmoothsJitter) {
  KalmanRatePredictor p;
  Rng rng(7);
  double out = 0.0;
  for (int i = 0; i < 300; ++i) out = p.observe(2.0 + rng.normal(0.0, 0.2));
  EXPECT_NEAR(out, 2.0, 0.1);
}

TEST(KalmanRatePredictor, StateChangeRescalesInsteadOfRelearning) {
  KalmanRatePredictor p;
  for (int i = 0; i < 100; ++i) p.observe(2.0);
  // Manager halves the configuration's speed: expect rate 1.0 immediately.
  p.on_state_change(0.5);
  const double first_after = p.observe(1.0);
  EXPECT_NEAR(first_after, 1.0, 0.1);
}

TEST(KalmanRatePredictor, NonPositiveFactorIgnored) {
  KalmanRatePredictor p;
  p.observe(2.0);
  p.on_state_change(0.0);
  p.on_state_change(-1.0);
  EXPECT_NEAR(p.observe(2.0), 2.0, 0.2);
}

TEST(KalmanRatePredictor, ResetStartsOver) {
  KalmanRatePredictor p;
  p.observe(5.0);
  p.reset();
  EXPECT_DOUBLE_EQ(p.observe(1.0), 1.0);
}

}  // namespace
}  // namespace hars
