// ExperimentBuilder::build() must reject inconsistent configurations with
// a descriptive ExperimentConfigError instead of silently ignoring them
// (the old runner dropped unknown overrides on the floor).
#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace hars {
namespace {

ExperimentBuilder valid_single() {
  ExperimentBuilder builder;
  builder.app(ParsecBenchmark::kSwaptions).variant("HARS-E");
  return builder;
}

TEST(BuilderValidation, AcceptsValidSingleAppConfig) {
  EXPECT_NO_THROW(valid_single().build());
}

TEST(BuilderValidation, RejectsEmptyAppList) {
  ExperimentBuilder builder;
  builder.variant("HARS-E");
  EXPECT_THROW(builder.build(), ExperimentConfigError);
}

TEST(BuilderValidation, RejectsUnknownVariant) {
  ExperimentBuilder builder = valid_single();
  builder.variant("HARS-X");
  try {
    builder.build();
    FAIL() << "expected ExperimentConfigError";
  } catch (const ExperimentConfigError& error) {
    // The error names the known variants so typos are self-diagnosing.
    EXPECT_NE(std::string(error.what()).find("HARS-EI"), std::string::npos);
  }
}

TEST(BuilderValidation, RejectsTabuParamsWithoutTabuPolicy) {
  ExperimentBuilder builder = valid_single();
  builder.tabu(TabuParams{16, 8, 1});  // HARS-E defaults to kExhaustive.
  EXPECT_THROW(builder.build(), ExperimentConfigError);
}

TEST(BuilderValidation, AcceptsTabuParamsWithTabuPolicy) {
  ExperimentBuilder builder = valid_single();
  builder.policy(SearchPolicy::kTabu).tabu(TabuParams{16, 8, 1});
  EXPECT_NO_THROW(builder.build());
}

TEST(BuilderValidation, RejectsTuningTheVariantIgnores) {
  // The old runner silently ignored HARS overrides under Baseline/SO;
  // the builder makes that a configuration error.
  for (const char* variant : {"Baseline", "SO"}) {
    ExperimentBuilder builder;
    builder.app(ParsecBenchmark::kSwaptions).variant(variant);
    builder.scheduler(ThreadSchedulerKind::kInterleaved);
    EXPECT_THROW(builder.build(), ExperimentConfigError) << variant;
  }
  ExperimentBuilder cons;
  cons.apps(multiapp_cases()[0]).variant("CONS-I");
  cons.predictor(PredictorKind::kKalman);  // CONS-I has no predictor.
  EXPECT_THROW(cons.build(), ExperimentConfigError);
}

TEST(BuilderValidation, RejectsMultiAppForSingleAppVariants) {
  for (const char* variant : {"SO", "HARS-I", "HARS-E", "HARS-EI"}) {
    ExperimentBuilder builder;
    builder.apps(multiapp_cases()[0]).variant(variant);
    EXPECT_THROW(builder.build(), ExperimentConfigError) << variant;
  }
}

TEST(BuilderValidation, AcceptsMultiAppForMultiAppVariants) {
  for (const char* variant : {"Baseline", "CONS-I", "MP-HARS-I", "MP-HARS-E"}) {
    ExperimentBuilder builder;
    builder.apps(multiapp_cases()[0]).variant(variant);
    EXPECT_NO_THROW(builder.build()) << variant;
  }
}

TEST(BuilderValidation, RejectsStaticOptimalForCustomApps) {
  ExperimentBuilder builder;
  builder.app("custom", [](int, std::uint64_t) {
    return make_parsec_app(ParsecBenchmark::kSwaptions);
  });
  builder.target(PerfTarget::around(2.0)).variant("SO");
  EXPECT_THROW(builder.build(), ExperimentConfigError);
}

TEST(BuilderValidation, RejectsBadNumericRanges) {
  EXPECT_THROW(valid_single().target_fraction(0.0).build(),
               ExperimentConfigError);
  EXPECT_THROW(valid_single().target_fraction(1.5).build(),
               ExperimentConfigError);
  EXPECT_THROW(valid_single().duration(0).build(), ExperimentConfigError);
  EXPECT_THROW(valid_single().threads(0).build(), ExperimentConfigError);
  EXPECT_THROW(valid_single().adapt_period(0).build(), ExperimentConfigError);
  EXPECT_THROW(valid_single().assumed_ratio(-1.0).build(),
               ExperimentConfigError);
  EXPECT_THROW(valid_single().search_window(-1).build(),
               ExperimentConfigError);
  EXPECT_THROW(valid_single().search_distance(-2).build(),
               ExperimentConfigError);
}

TEST(BuilderValidation, RejectsTargetBeforeApp) {
  ExperimentBuilder builder;
  EXPECT_THROW(builder.target(PerfTarget::around(2.0)),
               ExperimentConfigError);
}

TEST(BuilderValidation, RejectsEmptyTargetWindow) {
  ExperimentBuilder builder;
  builder.app(ParsecBenchmark::kSwaptions)
      .target(PerfTarget{3.0, 2.0})  // min > max.
      .variant("HARS-E");
  EXPECT_THROW(builder.build(), ExperimentConfigError);
}

// Regression: a window like {-2, 1} passed the old max-only check but has
// a non-positive average, which silently zeroed every normalized-perf
// score (normalized_perf returns 0 for avg <= 0) and made the search pick
// arbitrarily among candidates all tied at pp = 0.
TEST(BuilderValidation, RejectsNonPositiveTargetAverage) {
  for (const PerfTarget target :
       {PerfTarget{-2.0, 1.0}, PerfTarget{-1.0, 0.5}, PerfTarget{0.0, 0.0},
        PerfTarget{-3.0, -1.0}}) {
    ExperimentBuilder builder;
    builder.app(ParsecBenchmark::kSwaptions).target(target).variant("HARS-E");
    EXPECT_THROW(builder.build(), ExperimentConfigError)
        << "min=" << target.min << " max=" << target.max;
  }
  // A positive window is still accepted.
  ExperimentBuilder ok;
  ok.app(ParsecBenchmark::kSwaptions)
      .target(PerfTarget{0.5, 1.5})
      .variant("HARS-E");
  EXPECT_NO_THROW(ok.build());
}

TEST(BuilderValidation, RejectsSamplerWithoutPeriod) {
  ExperimentBuilder builder = valid_single();
  builder.sample_every(0, [](const RunView&) {});
  EXPECT_THROW(builder.build(), ExperimentConfigError);
}

TEST(BuilderValidation, AutoProtocolResolvesByAppCount) {
  const Experiment single = valid_single().build();
  EXPECT_EQ(single.spec().protocol, RunProtocol::kSteadyState);
  ExperimentBuilder multi;
  multi.apps(multiapp_cases()[0]).variant("MP-HARS-E");
  EXPECT_EQ(multi.build().spec().protocol, RunProtocol::kColdStart);
}

}  // namespace
}  // namespace hars
