// Churn stress regression: generated spawn-after-kill and hotplug
// cascades run with the debug invariant audits forced on, locking the
// multi-app managers' remove_app bookkeeping (dead-app state must be
// fully reclaimed before the id is reused or the core map is rebuilt).
// Sanitizer CI runs this same binary, so the cascades also sweep for
// use-after-free in the app teardown path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/fuzz_harness.hpp"
#include "scenario/generator.hpp"

namespace hars {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr int kCasesPerVariant = 2;
#else
constexpr int kCasesPerVariant = 8;
#endif

/// Churn profile cranked up: fast arrivals, heavy-tailed short lives,
/// near-certain departures, plus hotplug cascades — the maximum rate of
/// spawn-after-kill transitions the generator can express.
GeneratorSpec churn_spec(std::uint64_t seed) {
  GeneratorSpec spec = ScenarioGenerator::profile("churn");
  spec.seed = seed;
  spec.horizon_s = 12.0;
  spec.arrival_rate_hz = 0.8;
  spec.lifetime_min_s = 0.8;
  spec.lifetime_max_s = 5.0;
  spec.depart_prob = 1.0;
  spec.hotplug_rate_hz = 0.08;
  return spec;
}

void run_churn(const std::string& variant) {
  for (int i = 0; i < kCasesPerVariant; ++i) {
    ReproCase repro;
    repro.scenario =
        ScenarioGenerator(churn_spec(500u + static_cast<std::uint64_t>(i)))
            .generate();
    repro.variant = variant;
    repro.seed = 1;
    repro.duration_sec = 12.0;
    // Audits + AllocGuard + differential: a stale pointer or leaked
    // bookkeeping entry in remove_app shows up either as an audit throw
    // or as a divergence from the reference path.
    const FuzzCaseResult outcome = run_fuzz_case(repro, /*differential=*/true);
    EXPECT_FALSE(outcome.failed)
        << variant << " case " << i << " (" << repro.scenario.name
        << "): " << outcome.message;
    // The cascades actually exercise churn: at least one mid-run spawn
    // and one kill per scenario.
    int spawns = 0, kills = 0;
    for (const ScenarioEvent& e : repro.scenario.events) {
      spawns += e.kind == ScenarioEventKind::kSpawn && e.time > 0;
      kills += e.kind == ScenarioEventKind::kKill;
    }
    EXPECT_GT(spawns, 0) << repro.scenario.name;
    EXPECT_GT(kills, 0) << repro.scenario.name;
  }
}

TEST(ChurnStress, MpHarsESurvivesSpawnAfterKillCascades) {
  run_churn("MP-HARS-E");
}

TEST(ChurnStress, MpHarsISurvivesSpawnAfterKillCascades) {
  run_churn("MP-HARS-I");
}

TEST(ChurnStress, ConsISurvivesSpawnAfterKillCascades) { run_churn("CONS-I"); }

}  // namespace
}  // namespace hars
