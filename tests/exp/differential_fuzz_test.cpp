// Differential determinism suite: 200 generated scenarios spread over
// all 8 variants on exynos5422. For every case the optimized path must
// produce a bit-identical result fingerprint to the retained reference
// implementations (run_fuzz_case's differential oracle), with the debug
// invariant audits and AllocGuard armed throughout. A second capture
// pass locks trace byte-identity for generated scenarios.
//
// One TEST per variant so ctest -j runs the suite in parallel; fixed
// seeds keep every case deterministic. Sanitizer builds run a reduced
// grid (same coverage shape, ~10x fewer cases) to stay inside CI time.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/fuzz_harness.hpp"
#include "exp/variant_registry.hpp"
#include "scenario/generator.hpp"
#include "scenario/trace_sink.hpp"

namespace hars {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr int kScenariosPerVariant = 3;
#else
constexpr int kScenariosPerVariant = 25;  // x8 variants = 200 scenarios.
#endif

/// Fixed per-case generator seed; profile rotates so every variant sees
/// arrivals, rushes, storms, hotplug cascades and retarget bursts.
Scenario generated_case(int variant_index, int case_index) {
  const std::vector<std::string> profiles = ScenarioGenerator::profiles();
  GeneratorSpec spec = ScenarioGenerator::profile(
      profiles[static_cast<std::size_t>(case_index) % profiles.size()]);
  spec.seed = 10'000u + static_cast<std::uint64_t>(variant_index) * 1000u +
              static_cast<std::uint64_t>(case_index);
  spec.horizon_s = 4.0;
  return ScenarioGenerator(spec).generate();
}

void run_variant_suite(const std::string& variant) {
  const std::vector<std::string> variants = VariantRegistry::instance().names();
  const int variant_index = static_cast<int>(
      std::find(variants.begin(), variants.end(), variant) - variants.begin());
  ASSERT_LT(variant_index, static_cast<int>(variants.size()))
      << "unknown variant " << variant;
  for (int i = 0; i < kScenariosPerVariant; ++i) {
    ReproCase repro;
    repro.scenario = generated_case(variant_index, i);
    repro.variant = variant;
    repro.platform = "exynos5422";
    repro.seed = 1;  // One experiment seed: calibration cache stays hot.
    repro.duration_sec = 4.0;
    const FuzzCaseResult outcome = run_fuzz_case(repro, /*differential=*/true);
    EXPECT_FALSE(outcome.failed)
        << variant << " case " << i << " (" << repro.scenario.name
        << "): " << outcome.message;
  }
}

TEST(DifferentialFuzz, Baseline) { run_variant_suite("Baseline"); }
TEST(DifferentialFuzz, StaticOptimal) { run_variant_suite("SO"); }
TEST(DifferentialFuzz, HarsI) { run_variant_suite("HARS-I"); }
TEST(DifferentialFuzz, HarsE) { run_variant_suite("HARS-E"); }
TEST(DifferentialFuzz, HarsEI) { run_variant_suite("HARS-EI"); }
TEST(DifferentialFuzz, ConsI) { run_variant_suite("CONS-I"); }
TEST(DifferentialFuzz, MpHarsI) { run_variant_suite("MP-HARS-I"); }
TEST(DifferentialFuzz, MpHarsE) { run_variant_suite("MP-HARS-E"); }

TEST(DifferentialFuzz, SuiteCoversEveryRegisteredVariant) {
  // If a ninth variant is ever registered, this fails until the suite
  // above grows a case for it.
  EXPECT_EQ(VariantRegistry::instance().names().size(), 8u);
}

/// Replayed traces of generated scenarios are byte-identical: capture
/// twice (bytes equal) and verify through the replay checker.
TEST(DifferentialFuzz, GeneratedScenarioTracesReplayBitIdentically) {
  const std::vector<std::string> variants{"Baseline", "HARS-E", "CONS-I",
                                          "MP-HARS-E"};
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const Scenario scenario = generated_case(static_cast<int>(v), 3);
    const auto capture = [&]() {
      TraceSink sink(/*sample_every_ticks=*/100);
      ExperimentBuilder builder;
      builder.scenario(scenario)
          .variant(variants[v])
          .duration(4 * kUsPerSec)
          .seed(1)
          .audit(true)
          .capture(sink);
      (void)builder.build().run();
      return sink.bytes();
    };
    const std::string first = capture();
    ASSERT_FALSE(first.empty()) << variants[v];
    EXPECT_EQ(first, capture()) << variants[v];
    const ReplayOutcome outcome = replay_trace(first);
    EXPECT_TRUE(outcome.ok) << variants[v] << ": " << outcome.message;
  }
}

}  // namespace
}  // namespace hars
