// Behaviour of the unified Experiment pipeline: custom apps, explicit
// targets, protocols, sampling, and the post-run query surface.
#include <gtest/gtest.h>

#include "apps/data_parallel_app.hpp"
#include "exp/experiment.hpp"

namespace hars {
namespace {

AppFactory stable_app() {
  return [](int threads, std::uint64_t seed) {
    DataParallelConfig cfg;
    cfg.threads = threads;
    cfg.speed = SpeedModel{3.0, 2.0};
    cfg.workload = {WorkloadShape::kStable, 4.0, 0.02, 0.0, 1};
    cfg.seed = seed;
    return std::make_unique<DataParallelApp>("stable", cfg);
  };
}

TEST(Experiment, CustomAppWithExplicitTargetUnderHars) {
  const ExperimentResult r = ExperimentBuilder()
                                 .app("stable", stable_app())
                                 .target(PerfTarget::around(2.0))
                                 .variant("HARS-EI")
                                 .duration(40 * kUsPerSec)
                                 .build()
                                 .run();
  ASSERT_EQ(r.apps.size(), 1u);
  EXPECT_EQ(r.apps.front().label, "stable");
  EXPECT_GT(r.apps.front().metrics.norm_perf, 0.8);
  EXPECT_TRUE(r.final_state.has_value());
  EXPECT_FALSE(r.apps.front().trace.empty());
  EXPECT_GT(r.adaptations, 0);
}

TEST(Experiment, StaticOptimalReportsChosenState) {
  const ExperimentResult r = ExperimentBuilder()
                                 .app(ParsecBenchmark::kSwaptions)
                                 .variant("SO")
                                 .duration(20 * kUsPerSec)
                                 .build()
                                 .run();
  ASSERT_TRUE(r.static_state.has_value());
  EXPECT_GT(r.static_state->big_cores + r.static_state->little_cores, 0);
  EXPECT_TRUE(r.apps.front().trace.empty());
}

TEST(Experiment, BaselineHasNoManagerArtifacts) {
  const ExperimentResult r = ExperimentBuilder()
                                 .app(ParsecBenchmark::kSwaptions)
                                 .variant("Baseline")
                                 .duration(20 * kUsPerSec)
                                 .build()
                                 .run();
  EXPECT_FALSE(r.static_state.has_value());
  EXPECT_FALSE(r.final_state.has_value());
  EXPECT_EQ(r.adaptations, 0);
  EXPECT_DOUBLE_EQ(r.apps.front().metrics.manager_cpu_pct, 0.0);
}

TEST(Experiment, SamplerObservesTheRun) {
  int samples = 0;
  TimeUs last_now = 0;
  const ExperimentResult r =
      ExperimentBuilder()
          .app("stable", stable_app())
          .target(PerfTarget::around(2.0))
          .variant("HARS-E")
          .protocol(RunProtocol::kColdStart)
          .duration(20 * kUsPerSec)
          .sample_every(5 * kUsPerSec,
                        [&](const RunView& view) {
                          ++samples;
                          EXPECT_GT(view.now, last_now);
                          last_now = view.now;
                          EXPECT_EQ(view.apps.size(), 1u);
                        })
          .build()
          .run();
  EXPECT_EQ(samples, 4);
  EXPECT_GT(r.apps.front().metrics.heartbeats, 0);
}

TEST(Experiment, MultiAppExplicitTargetsSkipCalibrationProbe) {
  const ExperimentResult r = ExperimentBuilder()
                                 .app("a", stable_app())
                                 .target(PerfTarget::around(2.0))
                                 .app("b", stable_app())
                                 .target(PerfTarget::around(1.5))
                                 .variant("MP-HARS-E")
                                 .duration(40 * kUsPerSec)
                                 .build()
                                 .run();
  ASSERT_EQ(r.apps.size(), 2u);
  EXPECT_DOUBLE_EQ(r.apps[0].target.avg(), 2.0);
  EXPECT_DOUBLE_EQ(r.apps[1].target.avg(), 1.5);
  EXPECT_FALSE(r.apps[0].trace.empty());
  EXPECT_FALSE(r.apps[1].trace.empty());
  EXPECT_GT(r.avg_power_w, 0.0);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const auto run_once = [] {
    return ExperimentBuilder()
        .app(ParsecBenchmark::kSwaptions)
        .variant("HARS-E")
        .duration(20 * kUsPerSec)
        .build()
        .run();
  };
  const ExperimentResult a = run_once();
  const ExperimentResult b = run_once();
  EXPECT_DOUBLE_EQ(a.app().metrics.norm_perf, b.app().metrics.norm_perf);
  EXPECT_DOUBLE_EQ(a.app().metrics.avg_power_w, b.app().metrics.avg_power_w);
  EXPECT_EQ(a.app().metrics.heartbeats, b.app().metrics.heartbeats);
}

TEST(Experiment, CustomPlatformRuns) {
  MachineSpec spec;
  spec.name = "tiny-1P2E";
  ClusterSpec little;
  little.type = CoreType::kLittle;
  little.core_count = 2;
  little.ipc = 2.0;
  little.freqs_ghz = {0.8, 1.0, 1.2};
  ClusterSpec big;
  big.type = CoreType::kBig;
  big.core_count = 1;
  big.ipc = 4.0;
  big.freqs_ghz = {1.0, 1.5, 2.0};
  spec.clusters = {little, big};

  const ExperimentResult r = ExperimentBuilder()
                                 .platform(Machine(spec))
                                 .app("stable", stable_app())
                                 .target(PerfTarget::around(1.0))
                                 .variant("HARS-E")
                                 .assumed_ratio(2.0)
                                 .threads(3)
                                 .duration(30 * kUsPerSec)
                                 .build()
                                 .run();
  EXPECT_GT(r.apps.front().metrics.heartbeats, 0);
}

}  // namespace
}  // namespace hars
