// Regression: the deprecated run_single / run_multi shims must produce
// metrics identical to direct Experiment::run() calls — porting a call
// site to the builder API is guaranteed not to change any number.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "exp/runner.hpp"

// The whole point of this file is to call the deprecated entry points.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace hars {
namespace {

void expect_same_metrics(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_DOUBLE_EQ(a.norm_perf, b.norm_perf);
  EXPECT_DOUBLE_EQ(a.avg_rate_hps, b.avg_rate_hps);
  EXPECT_DOUBLE_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_DOUBLE_EQ(a.perf_per_watt, b.perf_per_watt);
  EXPECT_DOUBLE_EQ(a.manager_cpu_pct, b.manager_cpu_pct);
  EXPECT_EQ(a.heartbeats, b.heartbeats);
  EXPECT_DOUBLE_EQ(a.in_window_fraction, b.in_window_fraction);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_DOUBLE_EQ(a.energy_per_beat_j, b.energy_per_beat_j);
}

TEST(ShimRegression, RunSingleMatchesExperimentRun) {
  SingleRunOptions options;
  options.duration = 30 * kUsPerSec;
  const SingleRunResult shim =
      run_single(ParsecBenchmark::kSwaptions, SingleVersion::kHarsE, options);

  const ExperimentResult direct = ExperimentBuilder()
                                      .app(ParsecBenchmark::kSwaptions)
                                      .variant("HARS-E")
                                      .target_fraction(0.5)
                                      .duration(30 * kUsPerSec)
                                      .build()
                                      .run();

  expect_same_metrics(shim.metrics, direct.app().metrics);
  EXPECT_DOUBLE_EQ(shim.target.min, direct.app().target.min);
  EXPECT_DOUBLE_EQ(shim.target.max, direct.app().target.max);
  ASSERT_EQ(shim.trace.size(), direct.app().trace.size());
  for (std::size_t i = 0; i < shim.trace.size(); ++i) {
    EXPECT_EQ(shim.trace[i].hb_index, direct.app().trace[i].hb_index);
    EXPECT_DOUBLE_EQ(shim.trace[i].hps, direct.app().trace[i].hps);
    EXPECT_EQ(shim.trace[i].big_cores, direct.app().trace[i].big_cores);
    EXPECT_EQ(shim.trace[i].little_cores, direct.app().trace[i].little_cores);
  }
}

TEST(ShimRegression, RunSingleOverridesMatchTypedTuning) {
  SingleRunOptions options;
  options.duration = 25 * kUsPerSec;
  options.override_scheduler = 1;  // interleaved
  options.override_d = 5;
  options.override_predictor = 1;  // kalman
  const SingleRunResult shim =
      run_single(ParsecBenchmark::kBodytrack, SingleVersion::kHarsE, options);

  const ExperimentResult direct = ExperimentBuilder()
                                      .app(ParsecBenchmark::kBodytrack)
                                      .variant("HARS-E")
                                      .scheduler(ThreadSchedulerKind::kInterleaved)
                                      .search_distance(5)
                                      .predictor(PredictorKind::kKalman)
                                      .duration(25 * kUsPerSec)
                                      .build()
                                      .run();
  expect_same_metrics(shim.metrics, direct.app().metrics);
}

TEST(ShimRegression, RunSingleBaselineMatches) {
  SingleRunOptions options;
  options.duration = 20 * kUsPerSec;
  const SingleRunResult shim = run_single(ParsecBenchmark::kFluidanimate,
                                          SingleVersion::kBaseline, options);
  const ExperimentResult direct = ExperimentBuilder()
                                      .app(ParsecBenchmark::kFluidanimate)
                                      .variant("Baseline")
                                      .duration(20 * kUsPerSec)
                                      .build()
                                      .run();
  expect_same_metrics(shim.metrics, direct.app().metrics);
  EXPECT_TRUE(shim.trace.empty());
}

TEST(ShimRegression, RunMultiSingleBenchDerivesColdStartTargets) {
  // Legacy edge: run_multi with one benchmark derived its target from the
  // cold-start concurrent-baseline probe, not the steady-state standalone
  // calibration run_single uses. The shim must keep that.
  MultiRunOptions options;
  options.duration = 30 * kUsPerSec;
  const MultiRunResult shim = run_multi({ParsecBenchmark::kSwaptions},
                                        MultiVersion::kConsI, options);
  const ExperimentResult direct = ExperimentBuilder()
                                      .app(ParsecBenchmark::kSwaptions)
                                      .variant("CONS-I")
                                      .duration(30 * kUsPerSec)
                                      .protocol(RunProtocol::kColdStart)
                                      .build()
                                      .run();
  ASSERT_EQ(shim.per_app.size(), 1u);
  expect_same_metrics(shim.per_app[0], direct.app().metrics);
  EXPECT_DOUBLE_EQ(shim.targets[0].min, direct.app().target.min);

  // And it genuinely differs from the steady-state calibration target.
  SingleRunOptions single;
  single.duration = 30 * kUsPerSec;
  const SingleRunResult steady = run_single(ParsecBenchmark::kSwaptions,
                                            SingleVersion::kBaseline, single);
  EXPECT_NE(shim.targets[0].min, steady.target.min);
}

TEST(ShimRegression, RunMultiMatchesExperimentRun) {
  const std::vector<ParsecBenchmark> benches = multiapp_cases()[0];
  MultiRunOptions options;
  options.duration = 40 * kUsPerSec;
  const MultiRunResult shim =
      run_multi(benches, MultiVersion::kConsI, options);

  const ExperimentResult direct = ExperimentBuilder()
                                      .apps(benches)
                                      .variant("CONS-I")
                                      .target_fraction(0.5)
                                      .duration(40 * kUsPerSec)
                                      .protocol(RunProtocol::kColdStart)
                                      .build()
                                      .run();

  ASSERT_EQ(shim.per_app.size(), direct.apps.size());
  EXPECT_DOUBLE_EQ(shim.avg_power_w, direct.avg_power_w);
  for (std::size_t i = 0; i < shim.per_app.size(); ++i) {
    expect_same_metrics(shim.per_app[i], direct.apps[i].metrics);
    EXPECT_DOUBLE_EQ(shim.targets[i].min, direct.apps[i].target.min);
    EXPECT_DOUBLE_EQ(shim.targets[i].max, direct.apps[i].target.max);
    EXPECT_EQ(shim.traces[i].size(), direct.apps[i].trace.size());
  }
}

}  // namespace
}  // namespace hars
