// The registry must know every runtime version of the paper, round-trip
// names, and accept user-registered variants.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/hars.hpp"
#include "exp/experiment.hpp"
#include "exp/variant_registry.hpp"

namespace hars {
namespace {

TEST(VariantRegistry, KnowsAllPaperVariants) {
  const std::vector<std::string> expected{"Baseline", "SO",       "HARS-I",
                                          "HARS-E",   "HARS-EI",  "CONS-I",
                                          "MP-HARS-I", "MP-HARS-E"};
  const std::vector<std::string> names = VariantRegistry::instance().names();
  for (const std::string& name : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << "missing variant " << name;
  }
}

TEST(VariantRegistry, LookupRoundTripsEveryName) {
  VariantRegistry& registry = VariantRegistry::instance();
  for (const std::string& name : registry.names()) {
    const VariantEntry* entry = registry.find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_EQ(entry->name, name);
    EXPECT_TRUE(entry->factory != nullptr) << name;
  }
}

TEST(VariantRegistry, FindUnknownReturnsNull) {
  EXPECT_EQ(VariantRegistry::instance().find("NO-SUCH-VARIANT"), nullptr);
}

TEST(VariantRegistry, OldEnumNamesResolve) {
  // Every name the old SingleVersion/MultiVersion enums produced must be a
  // registry key, so string-based lookup covers the whole legacy surface.
  VariantRegistry& registry = VariantRegistry::instance();
  for (const char* name :
       {"Baseline", "SO", "HARS-I", "HARS-E", "HARS-EI"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  for (const char* name : {"CONS-I", "MP-HARS-I", "MP-HARS-E"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

TEST(VariantRegistry, SingleAppVariantsDeclareSingleAppTraits) {
  VariantRegistry& registry = VariantRegistry::instance();
  for (const char* name : {"SO", "HARS-I", "HARS-E", "HARS-EI"}) {
    const VariantEntry* entry = registry.find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_EQ(entry->traits.max_apps, 1) << name;
  }
  for (const char* name : {"Baseline", "CONS-I", "MP-HARS-I", "MP-HARS-E"}) {
    const VariantEntry* entry = registry.find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_GT(entry->traits.max_apps, 1) << name;
  }
}

TEST(VariantRegistry, UserVariantRegistersAndRuns) {
  VariantRegistry& registry = VariantRegistry::instance();
  VariantRegistrar reg("TEST-NOOP", VariantTraits{1, 4, 0, {}, false},
                       [](const VariantSetup&) {
                         return std::make_unique<VariantInstance>();
                       });
  ASSERT_NE(registry.find("TEST-NOOP"), nullptr);

  // A registered variant is immediately runnable through the builder.
  const ExperimentResult r = ExperimentBuilder()
                                 .app(ParsecBenchmark::kSwaptions)
                                 .variant("TEST-NOOP")
                                 .duration(5 * kUsPerSec)
                                 .build()
                                 .run();
  ASSERT_EQ(r.apps.size(), 1u);
  EXPECT_GT(r.apps.front().metrics.heartbeats, 0);
}

TEST(VariantRegistry, ParseHelpersRoundTrip) {
  for (ThreadSchedulerKind kind :
       {ThreadSchedulerKind::kChunk, ThreadSchedulerKind::kInterleaved,
        ThreadSchedulerKind::kHierarchical}) {
    EXPECT_EQ(parse_thread_scheduler(thread_scheduler_name(kind)), kind);
  }
  for (PredictorKind kind :
       {PredictorKind::kLastValue, PredictorKind::kKalman}) {
    EXPECT_EQ(parse_predictor_kind(predictor_kind_name(kind)), kind);
  }
  for (SearchPolicy policy : {SearchPolicy::kIncremental,
                              SearchPolicy::kExhaustive, SearchPolicy::kTabu}) {
    EXPECT_EQ(parse_search_policy(search_policy_name(policy)), policy);
  }
  for (HarsVariant variant :
       {HarsVariant::kHarsI, HarsVariant::kHarsE, HarsVariant::kHarsEI}) {
    EXPECT_EQ(parse_hars_variant(hars_variant_name(variant)), variant);
  }
  EXPECT_EQ(parse_thread_scheduler("bogus"), std::nullopt);
  EXPECT_EQ(parse_predictor_kind(""), std::nullopt);
  EXPECT_EQ(parse_search_policy("Exhaustive"), std::nullopt);
  EXPECT_EQ(parse_hars_variant("hars-e"), std::nullopt);
}

}  // namespace
}  // namespace hars
