// Engine-level enforcement of the allocation-free tick contract (PR 5's
// optimized tick path, hardened here): SimEngine::step() runs under an
// AllocGuard, so any allocation introduced into the hot path — outside
// the declared AllowScope allocators — fails these tests via the
// recording failure handler.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/data_parallel_app.hpp"
#include "core/hars.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"
#include "util/alloc_guard.hpp"

namespace hars {
namespace {

struct RecordedFailure {
  std::string what;
  std::uint64_t violations = 0;
};

std::vector<RecordedFailure>& recorded() {
  static std::vector<RecordedFailure> failures;
  return failures;
}

void recording_handler(const char* what, std::uint64_t violations) {
  recorded().push_back(RecordedFailure{what, violations});
}

class HandlerScope {
 public:
  HandlerScope() : previous_(allocg::set_failure_handler(recording_handler)) {
    recorded().clear();
  }
  ~HandlerScope() { allocg::set_failure_handler(previous_); }

 private:
  allocg::FailureHandler previous_;
};

DataParallelConfig app_config(int threads) {
  DataParallelConfig cfg;
  cfg.threads = threads;
  cfg.speed = SpeedModel{3.0, 2.0};
  cfg.workload = {WorkloadShape::kStable, 2.0, 0.0, 0.0, 1};
  return cfg;
}

TEST(AllocFreeTick, BareEngineStepsWithoutViolations) {
  if (!allocg::counting_compiled_in()) {
    GTEST_SKIP() << "built without HARS_ALLOC_GUARD";
  }
  HandlerScope handler;
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  DataParallelApp app("steady", app_config(8));
  engine.add_app(&app);
  // Includes the cold first ticks: scratch growth is AllowScope'd, so
  // even warm-up must not report.
  engine.run_for(500 * kUsPerMs);
  EXPECT_TRUE(recorded().empty())
      << recorded().size() << " tick(s) reported hot-path allocations, "
      << "first in region \"" << recorded().front().what << "\"";
  EXPECT_GT(app.heartbeats().count(), 0);
}

TEST(AllocFreeTick, ManagedEngineSearchSweepsStayAllocationFree) {
  if (!allocg::counting_compiled_in()) {
    GTEST_SKIP() << "built without HARS_ALLOC_GUARD";
  }
  HandlerScope handler;
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  DataParallelApp app("managed", app_config(8));
  const AppId id = engine.add_app(&app);
  // HARS-E runs the full m = n = 4, d = 7 exhaustive sweep (with the
  // memoized SearchScratch), which itself re-tightens via AllocGuard.
  auto manager =
      attach_hars(engine, id, PerfTarget{4.0, 6.0}, HarsVariant::kHarsE);
  engine.run_for(3 * kUsPerSec);
  EXPECT_TRUE(recorded().empty())
      << recorded().size() << " tick(s) reported hot-path allocations, "
      << "first in region \"" << recorded().front().what << "\"";
  EXPECT_GT(manager->adaptations(), 0);
}

TEST(AllocFreeTick, TabuTrajectoryStaysAllocationFree) {
  if (!allocg::counting_compiled_in()) {
    GTEST_SKIP() << "built without HARS_ALLOC_GUARD";
  }
  HandlerScope handler;
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  DataParallelApp app("tabu", app_config(8));
  const AppId id = engine.add_app(&app);
  RuntimeManagerConfig cfg = config_for_variant(HarsVariant::kHarsE);
  cfg.policy = SearchPolicy::kTabu;
  auto manager =
      attach_hars(engine, id, PerfTarget{4.0, 6.0}, HarsVariant::kHarsE, &cfg);
  engine.run_for(3 * kUsPerSec);
  EXPECT_TRUE(recorded().empty())
      << recorded().size() << " tick(s) reported hot-path allocations, "
      << "first in region \"" << recorded().front().what << "\"";
}

TEST(AllocFreeTick, ReferenceTickPathIsExemptFromTheContract) {
  if (!allocg::counting_compiled_in()) {
    GTEST_SKIP() << "built without HARS_ALLOC_GUARD";
  }
  // The retained reference path allocates per tick by design; it must
  // not be guarded (it exists as the readable baseline, not a hot path).
  HandlerScope handler;
  SimConfig config;
  config.reference_tick = true;
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>(),
                   config);
  DataParallelApp app("reference", app_config(8));
  engine.add_app(&app);
  engine.run_for(200 * kUsPerMs);
  EXPECT_TRUE(recorded().empty());
}

}  // namespace
}  // namespace hars
