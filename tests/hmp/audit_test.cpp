// HARS_AUDIT invariant audits: audited runs are bit-identical to
// unaudited runs, survive spawn/kill/hotplug churn, and the diagnostic
// helpers (SystemState::check_invariants, AuditError) behave as
// documented.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "apps/data_parallel_app.hpp"
#include "core/hars.hpp"
#include "core/system_state.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"
#include "util/audit.hpp"

namespace hars {
namespace {

DataParallelConfig app_config(int threads) {
  DataParallelConfig cfg;
  cfg.threads = threads;
  cfg.speed = SpeedModel{3.0, 2.0};
  cfg.workload = {WorkloadShape::kStable, 2.0, 0.0, 0.0, 1};
  return cfg;
}

TEST(Audit, DefaultEnabledReflectsBuildMacro) {
#if defined(HARS_AUDIT)
  EXPECT_TRUE(audit::default_enabled());
#else
  EXPECT_FALSE(audit::default_enabled());
#endif
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  EXPECT_EQ(engine.audit_enabled(), audit::default_enabled());
  engine.set_audit(true);
  EXPECT_TRUE(engine.audit_enabled());
  engine.set_audit(false);
  EXPECT_FALSE(engine.audit_enabled());
}

TEST(Audit, AuditErrorIsALogicError) {
  static_assert(std::is_base_of_v<std::logic_error, AuditError>);
  try {
    throw AuditError("busy-sum mismatch");
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("busy-sum"), std::string::npos);
  }
}

TEST(Audit, AuditedManagedRunIsBitIdenticalToUnaudited) {
  // The audits are read-only: an audited engine must advance the
  // simulation exactly as an unaudited one does, down to every energy
  // bit and heartbeat.
  const auto run = [](bool audited) {
    SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
    engine.set_audit(audited);
    auto app = std::make_unique<DataParallelApp>("twin", app_config(8));
    const AppId id = engine.add_app(app.get());
    auto manager =
        attach_hars(engine, id, PerfTarget{4.0, 6.0}, HarsVariant::kHarsE);
    engine.run_for(2 * kUsPerSec);
    struct Out {
      double energy;
      std::int64_t beats;
      std::int64_t adaptations;
      std::int64_t migrations;
    };
    return Out{engine.sensor().total_energy_j(), app->heartbeats().count(),
               manager->adaptations(), engine.total_migrations()};
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_EQ(off.energy, on.energy);  // Bit-exact, not NEAR.
  EXPECT_EQ(off.beats, on.beats);
  EXPECT_EQ(off.adaptations, on.adaptations);
  EXPECT_EQ(off.migrations, on.migrations);
}

TEST(Audit, SurvivesSpawnKillAndHotplugChurn) {
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  engine.set_audit(true);
  DataParallelApp first("first", app_config(6));
  const AppId first_id = engine.add_app(&first);
  EXPECT_NO_THROW(engine.run_for(300 * kUsPerMs));

  // Mid-run arrival, departure and hotplug, each followed by audited
  // ticks and an explicit boundary audit.
  DataParallelApp second("second", app_config(4));
  engine.add_app(&second);
  EXPECT_NO_THROW(engine.audit_now());
  EXPECT_NO_THROW(engine.run_for(300 * kUsPerMs));

  engine.remove_app(first_id);
  EXPECT_NO_THROW(engine.audit_now());
  EXPECT_NO_THROW(engine.run_for(300 * kUsPerMs));

  Machine& m = engine.machine();
  // Take the big cluster offline, then bring it back.
  m.set_online_mask(m.online_mask() & ~m.fastest_mask());
  EXPECT_NO_THROW(engine.run_for(300 * kUsPerMs));
  m.set_online_mask(m.all_mask());
  EXPECT_NO_THROW(engine.run_for(300 * kUsPerMs));
  EXPECT_GT(second.heartbeats().count(), 0);
}

TEST(Audit, ReferenceTickPathIsAuditedToo) {
  SimConfig config;
  config.reference_tick = true;
  config.audit = true;
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>(),
                   config);
  DataParallelApp app("reference", app_config(8));
  engine.add_app(&app);
  EXPECT_NO_THROW(engine.run_for(300 * kUsPerMs));
}

TEST(Audit, CheckInvariantsAcceptsEveryValidState) {
  const StateSpace space =
      StateSpace::from_machine(Machine::exynos5422());
  EXPECT_EQ(space.max_state().check_invariants(space), "");
  const SystemState minimal{0, 1, 0, 0};
  EXPECT_TRUE(space.valid(minimal));
  EXPECT_EQ(minimal.check_invariants(space), "");
}

TEST(Audit, CheckInvariantsDiagnosesEachViolatedBound) {
  const StateSpace space =
      StateSpace::from_machine(Machine::exynos5422());
  // Each corrupt state must produce a non-empty diagnosis and agree with
  // StateSpace::valid (check_invariants is its explain-why form).
  const SystemState cases[] = {
      {-1, 2, 0, 0},                            // Negative big cores.
      {space.max_big_cores + 1, 2, 0, 0},       // Too many big cores.
      {2, -1, 0, 0},                            // Negative little cores.
      {2, space.max_little_cores + 1, 0, 0},    // Too many little cores.
      {2, 2, space.num_big_freqs, 0},           // Big freq out of range.
      {2, 2, 0, -1},                            // Little freq negative.
      {0, 0, 0, 0},                             // No cores at all.
  };
  for (const SystemState& s : cases) {
    EXPECT_FALSE(space.valid(s)) << s.to_string();
    const std::string why = s.check_invariants(space);
    EXPECT_FALSE(why.empty()) << s.to_string();
    // The diagnosis carries the offending state for log forensics.
    EXPECT_NE(why.find(s.to_string()), std::string::npos) << why;
  }
}

}  // namespace
}  // namespace hars
