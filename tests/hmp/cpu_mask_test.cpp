#include "hmp/cpu_mask.hpp"

#include <gtest/gtest.h>

namespace hars {
namespace {

TEST(CpuMask, DefaultEmpty) {
  CpuMask m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.count(), 0);
  EXPECT_EQ(m.first(), -1);
}

TEST(CpuMask, SetClearTest) {
  CpuMask m;
  m.set(3);
  m.set(7);
  EXPECT_TRUE(m.test(3));
  EXPECT_TRUE(m.test(7));
  EXPECT_FALSE(m.test(4));
  m.clear(3);
  EXPECT_FALSE(m.test(3));
  EXPECT_EQ(m.count(), 1);
}

TEST(CpuMask, TestOutOfRangeIsFalse) {
  CpuMask m(~0ULL);
  EXPECT_FALSE(m.test(-1));
  EXPECT_FALSE(m.test(64));
}

TEST(CpuMask, RangeFactory) {
  const CpuMask m = CpuMask::range(4, 4);
  EXPECT_EQ(m.count(), 4);
  EXPECT_TRUE(m.test(4));
  EXPECT_TRUE(m.test(7));
  EXPECT_FALSE(m.test(3));
  EXPECT_FALSE(m.test(8));
  EXPECT_TRUE(CpuMask::range(0, 0).empty());
}

TEST(CpuMask, SingleFactory) {
  const CpuMask m = CpuMask::single(5);
  EXPECT_EQ(m.count(), 1);
  EXPECT_EQ(m.first(), 5);
}

TEST(CpuMask, FirstAndNextIterate) {
  CpuMask m;
  m.set(1);
  m.set(4);
  m.set(5);
  EXPECT_EQ(m.first(), 1);
  EXPECT_EQ(m.next(1), 4);
  EXPECT_EQ(m.next(4), 5);
  EXPECT_EQ(m.next(5), -1);
}

TEST(CpuMask, NextAtBoundary) {
  CpuMask m;
  m.set(63);
  EXPECT_EQ(m.next(62), 63);
  EXPECT_EQ(m.next(63), -1);
}

TEST(CpuMask, SetOperators) {
  const CpuMask a = CpuMask::range(0, 4);
  const CpuMask b = CpuMask::range(2, 4);
  EXPECT_EQ((a & b).count(), 2);
  EXPECT_EQ((a | b).count(), 6);
  EXPECT_TRUE(a.contains(CpuMask::range(1, 2)));
  EXPECT_FALSE(a.contains(b));
}

TEST(CpuMask, Equality) {
  EXPECT_EQ(CpuMask::range(0, 3), CpuMask(0b111ULL));
  EXPECT_FALSE(CpuMask::range(0, 3) == CpuMask::range(0, 4));
}

TEST(CpuMask, ToStringRuns) {
  CpuMask m;
  m.set(0);
  m.set(1);
  m.set(2);
  m.set(5);
  m.set(7);
  m.set(8);
  EXPECT_EQ(m.to_string(), "{0-2,5,7-8}");
  EXPECT_EQ(CpuMask().to_string(), "{}");
}

}  // namespace
}  // namespace hars
