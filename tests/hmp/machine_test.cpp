#include "hmp/machine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hars {
namespace {

TEST(Machine, Exynos5422Topology) {
  const Machine m = Machine::exynos5422();
  EXPECT_EQ(m.num_clusters(), 2);
  EXPECT_EQ(m.num_cores(), 8);
  // Little cores are cpu0-3, big cores cpu4-7 as on the XU3.
  EXPECT_EQ(m.core_type(0), CoreType::kLittle);
  EXPECT_EQ(m.core_type(3), CoreType::kLittle);
  EXPECT_EQ(m.core_type(4), CoreType::kBig);
  EXPECT_EQ(m.core_type(7), CoreType::kBig);
  EXPECT_EQ(m.little_mask(), CpuMask::range(0, 4));
  EXPECT_EQ(m.big_mask(), CpuMask::range(4, 4));
}

TEST(Machine, Exynos5422FrequencyTables) {
  const Machine m = Machine::exynos5422();
  EXPECT_EQ(m.num_freq_levels(m.little_cluster()), 6);  // 0.8 - 1.3 GHz
  EXPECT_EQ(m.num_freq_levels(m.big_cluster()), 9);     // 0.8 - 1.6 GHz
  EXPECT_NEAR(m.freq_ghz_at_level(m.little_cluster(), 0), 0.8, 1e-9);
  EXPECT_NEAR(m.freq_ghz_at_level(m.little_cluster(), 5), 1.3, 1e-9);
  EXPECT_NEAR(m.freq_ghz_at_level(m.big_cluster(), 8), 1.6, 1e-9);
}

TEST(Machine, BootsAtMaxFrequency) {
  const Machine m = Machine::exynos5422();
  EXPECT_EQ(m.freq_level(m.big_cluster()), 8);
  EXPECT_EQ(m.freq_level(m.little_cluster()), 5);
}

TEST(Machine, SetFreqLevelClamped) {
  Machine m = Machine::exynos5422();
  m.set_freq_level(m.big_cluster(), 100);
  EXPECT_EQ(m.freq_level(m.big_cluster()), 8);
  m.set_freq_level(m.big_cluster(), -5);
  EXPECT_EQ(m.freq_level(m.big_cluster()), 0);
}

TEST(Machine, SetFreqGhzSnapsToNearest) {
  Machine m = Machine::exynos5422();
  m.set_freq_ghz(m.big_cluster(), 1.234);
  EXPECT_NEAR(m.freq_ghz(m.big_cluster()), 1.2, 1e-9);
  m.set_freq_ghz(m.little_cluster(), 99.0);
  EXPECT_NEAR(m.freq_ghz(m.little_cluster()), 1.3, 1e-9);
}

TEST(Machine, SetFreqGhzExactMidpointPrefersLowerLevel) {
  // Levels chosen so the midpoints (1.5, 2.5) are exactly representable:
  // the tie must break deterministically toward the lower level.
  MachineSpec spec;
  spec.name = "midpoint";
  ClusterSpec c;
  c.type = CoreType::kBig;
  c.core_count = 1;
  c.ipc = 1.0;
  c.freqs_ghz = {1.0, 2.0, 3.0};
  spec.clusters = {c};
  Machine m{spec};
  m.set_freq_ghz(0, 1.5);
  EXPECT_EQ(m.freq_level(0), 0);
  m.set_freq_ghz(0, 2.5);
  EXPECT_EQ(m.freq_level(0), 1);
  // Just past the midpoint snaps up.
  m.set_freq_ghz(0, 1.500000001);
  EXPECT_EQ(m.freq_level(0), 1);
}

TEST(Machine, CapabilityApiOnExynos) {
  const Machine m = Machine::exynos5422();
  // big (cluster 1) has the higher peak speed: 3 * 1.6 > 2 * 1.3.
  EXPECT_EQ(m.fastest_cluster(), 1);
  EXPECT_EQ(m.slowest_cluster(), 0);
  EXPECT_EQ(m.fastest_mask(), m.big_mask());
  EXPECT_EQ(m.slowest_mask(), m.little_mask());
  EXPECT_NEAR(m.cluster_peak_speed(1), 4.8, 1e-9);
  EXPECT_NEAR(m.cluster_peak_speed(0), 2.6, 1e-9);
  const std::vector<ClusterId> order = m.clusters_by_perf();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);
}

TEST(Machine, CoreSpeedScalesWithIpcAndFreq) {
  Machine m = Machine::exynos5422();
  // big: ipc 3 @ 1.6 GHz; little: ipc 2 @ 1.3 GHz.
  EXPECT_NEAR(m.core_speed(4), 4.8, 1e-9);
  EXPECT_NEAR(m.core_speed(0), 2.6, 1e-9);
  m.set_freq_ghz(m.big_cluster(), 0.8);
  EXPECT_NEAR(m.core_speed(4), 2.4, 1e-9);
}

TEST(Machine, R0FromInstructionWidths) {
  Machine m = Machine::exynos5422();
  m.set_freq_ghz(m.big_cluster(), 1.0);
  m.set_freq_ghz(m.little_cluster(), 1.0);
  EXPECT_NEAR(m.core_speed(4) / m.core_speed(0), 1.5, 1e-9);
}

TEST(Machine, OnlineMaskKeepsCpu0) {
  Machine m = Machine::exynos5422();
  m.set_online_mask(CpuMask());
  EXPECT_TRUE(m.is_online(0));
  EXPECT_EQ(m.online_mask().count(), 1);
}

TEST(Machine, OnlineMaskClampedToExistingCores) {
  Machine m = Machine::exynos5422();
  m.set_online_mask(CpuMask(~0ULL));
  EXPECT_EQ(m.online_mask().count(), 8);
}

TEST(Machine, ClusterOfEveryCore) {
  const Machine m = Machine::exynos5422();
  for (CoreId c = 0; c < 4; ++c) EXPECT_EQ(m.cluster_of(c), m.little_cluster());
  for (CoreId c = 4; c < 8; ++c) EXPECT_EQ(m.cluster_of(c), m.big_cluster());
}

TEST(Machine, InvalidSpecsThrow) {
  MachineSpec empty;
  EXPECT_THROW(Machine{empty}, std::invalid_argument);

  MachineSpec bad_freqs;
  ClusterSpec c;
  c.freqs_ghz = {1.2, 0.8};  // Not ascending.
  bad_freqs.clusters = {c};
  EXPECT_THROW(Machine{bad_freqs}, std::invalid_argument);

  MachineSpec zero_cores;
  ClusterSpec z;
  z.core_count = 0;
  z.freqs_ghz = {1.0};
  zero_cores.clusters = {z};
  EXPECT_THROW(Machine{zero_cores}, std::invalid_argument);
}

TEST(Machine, CustomAsymmetricMachine) {
  MachineSpec spec;
  spec.name = "2+6";
  ClusterSpec little;
  little.type = CoreType::kLittle;
  little.core_count = 6;
  little.freqs_ghz = {0.5, 1.0};
  little.ipc = 1.5;
  ClusterSpec big;
  big.type = CoreType::kBig;
  big.core_count = 2;
  big.freqs_ghz = {1.0, 2.0, 3.0};
  big.ipc = 4.0;
  spec.clusters = {little, big};
  const Machine m{spec};
  EXPECT_EQ(m.num_cores(), 8);
  EXPECT_EQ(m.cluster_core_count(m.big_cluster()), 2);
  EXPECT_EQ(m.big_mask(), CpuMask::range(6, 2));
}

}  // namespace
}  // namespace hars
