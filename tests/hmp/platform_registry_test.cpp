// PlatformRegistry: preset catalogue, registration round-trips,
// duplicate-name and unknown-name errors.
#include "hmp/platform_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hars {
namespace {

PlatformSpec toy(const std::string& name) {
  return PlatformBuilder()
      .name(name)
      .cluster(CoreType::kLittle, 2, 2.0)
      .freqs_ghz({0.5, 1.0})
      .cluster(CoreType::kBig, 2, 3.0)
      .freqs_ghz({1.0, 2.0})
      .build();
}

TEST(PlatformRegistry, PresetsRegistered) {
  const std::vector<std::string> names = PlatformRegistry::instance().names();
  for (const char* preset :
       {"exynos5422", "sd855", "server2x8", "manycore4x4"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), preset), names.end())
        << preset;
  }
}

TEST(PlatformRegistry, ExynosPresetMatchesMachinePreset) {
  const PlatformSpec spec = PlatformRegistry::instance().get("exynos5422");
  const Machine preset = Machine::exynos5422();
  const Machine materialized = spec.make_machine();
  ASSERT_EQ(materialized.num_clusters(), preset.num_clusters());
  for (int c = 0; c < preset.num_clusters(); ++c) {
    const ClusterSpec& a = materialized.spec().clusters[static_cast<std::size_t>(c)];
    const ClusterSpec& b = preset.spec().clusters[static_cast<std::size_t>(c)];
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.core_count, b.core_count);
    EXPECT_EQ(a.ipc, b.ipc);
    ASSERT_EQ(a.freqs_ghz.size(), b.freqs_ghz.size());
    for (std::size_t i = 0; i < a.freqs_ghz.size(); ++i) {
      EXPECT_EQ(a.freqs_ghz[i], b.freqs_ghz[i]);  // Bit-identical ladders.
    }
  }
  EXPECT_EQ(spec.base_watts, 0.7);
  EXPECT_DOUBLE_EQ(spec.assumed_ratio(), 1.5);
}

TEST(PlatformRegistry, PresetTopologies) {
  const PlatformSpec sd855 = PlatformRegistry::instance().get("sd855");
  ASSERT_EQ(sd855.clusters.size(), 3u);  // little + big + prime.
  const Machine m = sd855.make_machine();
  EXPECT_EQ(m.num_cores(), 8);
  EXPECT_EQ(m.cluster_core_count(m.fastest_cluster()), 1);  // Prime core.
  EXPECT_EQ(m.cluster_core_count(m.slowest_cluster()), 4);

  const PlatformSpec server = PlatformRegistry::instance().get("server2x8");
  ASSERT_EQ(server.clusters.size(), 2u);
  EXPECT_EQ(server.make_machine().num_cores(), 16);
  EXPECT_DOUBLE_EQ(server.assumed_ratio(), 1.0);  // Symmetric.

  const PlatformSpec manycore =
      PlatformRegistry::instance().get("manycore4x4");
  ASSERT_EQ(manycore.clusters.size(), 4u);
  EXPECT_EQ(manycore.make_machine().num_cores(), 16);
}

TEST(PlatformRegistry, AssumedRatioPairMatchesMachineRankingForPresets) {
  // assumed_ratio() derives from the spec-side fastest/slowest scan; it
  // must name the same cluster pair the materialized Machine ranks, for
  // every preset (pins the two implementations together).
  for (const std::string& name : PlatformRegistry::instance().names()) {
    const PlatformSpec spec = PlatformRegistry::instance().get(name);
    if (spec.default_r0 > 0.0) continue;  // Explicit override, not derived.
    const Machine m = spec.make_machine();
    const double fast_ipc =
        spec.clusters[static_cast<std::size_t>(m.fastest_cluster())]
            .topology.ipc;
    const double slow_ipc =
        spec.clusters[static_cast<std::size_t>(m.slowest_cluster())]
            .topology.ipc;
    EXPECT_DOUBLE_EQ(spec.assumed_ratio(), fast_ipc / slow_ipc) << name;
  }
}

TEST(PlatformRegistry, RegisterRoundTrip) {
  PlatformRegistry::instance().register_platform(toy("toy-round-trip"));
  const PlatformSpec* found =
      PlatformRegistry::instance().find("toy-round-trip");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->signature(), toy("toy-round-trip").signature());
  const PlatformSpec got = PlatformRegistry::instance().get("toy-round-trip");
  EXPECT_EQ(got.signature(), toy("toy-round-trip").signature());
}

TEST(PlatformRegistry, DuplicateNameThrowsUnlessReplace) {
  PlatformRegistry::instance().register_platform(toy("toy-duplicate"));
  EXPECT_THROW(
      PlatformRegistry::instance().register_platform(toy("toy-duplicate")),
      PlatformConfigError);

  PlatformSpec updated = toy("toy-duplicate");
  updated.base_watts = 1.5;
  PlatformRegistry::instance().register_platform(updated, /*replace=*/true);
  EXPECT_EQ(PlatformRegistry::instance().get("toy-duplicate").base_watts, 1.5);
}

TEST(PlatformRegistry, UnknownNameErrors) {
  EXPECT_EQ(PlatformRegistry::instance().find("no-such-platform"), nullptr);
  try {
    PlatformRegistry::instance().get("no-such-platform");
    FAIL() << "expected PlatformConfigError";
  } catch (const PlatformConfigError& error) {
    // The error lists the known names to aid discovery.
    EXPECT_NE(std::string(error.what()).find("exynos5422"), std::string::npos);
  }
}

TEST(PlatformRegistry, RejectsInvalidSpec) {
  PlatformSpec invalid = toy("toy-invalid");
  invalid.clusters.clear();
  EXPECT_THROW(PlatformRegistry::instance().register_platform(invalid),
               PlatformConfigError);
}

}  // namespace
}  // namespace hars
