// PlatformSpec: builder round-trips, validation errors, the CSV loader
// and the Machine perf-ranked capability API the spec materializes into.
#include "hmp/platform_spec.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hars {
namespace {

PlatformSpec tri_cluster() {
  return PlatformBuilder()
      .name("tri")
      .cluster(CoreType::kLittle, 4, 2.0)
      .freqs_ghz({0.6, 0.9, 1.2})
      .cluster(CoreType::kBig, 3, 3.0)
      .freqs_ghz({0.8, 1.6, 2.4})
      .cluster(CoreType::kBig, 1, 3.5)
      .freqs_ghz({1.0, 2.0, 2.8})
      .base_watts(0.9)
      .build();
}

TEST(PlatformSpec, BuilderRoundTrip) {
  const PlatformSpec spec = tri_cluster();
  EXPECT_EQ(spec.name, "tri");
  ASSERT_EQ(spec.clusters.size(), 3u);
  EXPECT_EQ(spec.clusters[0].topology.core_count, 4);
  EXPECT_EQ(spec.clusters[2].topology.ipc, 3.5);
  EXPECT_EQ(spec.base_watts, 0.9);
  // Builder attaches the legacy per-type power defaults.
  EXPECT_EQ(spec.clusters[0].power.c_dyn, PowerParams::cortex_a7().c_dyn);
  EXPECT_EQ(spec.clusters[1].power.c_dyn, PowerParams::cortex_a15().c_dyn);
}

TEST(PlatformSpec, ValidationErrors) {
  EXPECT_THROW(PlatformBuilder().name("x").build(), PlatformConfigError);

  // Single-cluster platforms cannot form distinct fast/slow pools.
  PlatformBuilder one_cluster;
  one_cluster.name("mono").cluster(CoreType::kBig, 4, 3.0).freqs_ghz({1.0});
  EXPECT_THROW(one_cluster.build(), PlatformConfigError);

  PlatformSpec no_name = tri_cluster();
  no_name.name.clear();
  EXPECT_THROW(no_name.validate(), PlatformConfigError);

  PlatformSpec empty_ladder = tri_cluster();
  empty_ladder.clusters[1].topology.freqs_ghz.clear();
  EXPECT_THROW(empty_ladder.validate(), PlatformConfigError);

  PlatformSpec non_ascending = tri_cluster();
  non_ascending.clusters[0].topology.freqs_ghz = {1.2, 0.9, 0.6};
  EXPECT_THROW(non_ascending.validate(), PlatformConfigError);

  PlatformSpec duplicate_level = tri_cluster();
  duplicate_level.clusters[0].topology.freqs_ghz = {0.6, 0.6, 1.2};
  EXPECT_THROW(duplicate_level.validate(), PlatformConfigError);

  PlatformSpec bad_ipc = tri_cluster();
  bad_ipc.clusters[2].topology.ipc = 0.0;
  EXPECT_THROW(bad_ipc.validate(), PlatformConfigError);

  PlatformSpec bad_cores = tri_cluster();
  bad_cores.clusters[0].topology.core_count = 0;
  EXPECT_THROW(bad_cores.validate(), PlatformConfigError);

  PlatformSpec bad_power = tri_cluster();
  bad_power.clusters[0].power.c_dyn = -0.1;
  EXPECT_THROW(bad_power.validate(), PlatformConfigError);

  PlatformSpec too_many = tri_cluster();
  too_many.clusters[0].topology.core_count = 1000;
  EXPECT_THROW(too_many.validate(), PlatformConfigError);
}

TEST(PlatformSpec, AssumedRatioDerivesFromExtremeClusters) {
  // fastest = prime (ipc 3.5), slowest = little (ipc 2.0).
  EXPECT_DOUBLE_EQ(tri_cluster().assumed_ratio(), 3.5 / 2.0);

  PlatformSpec pinned = tri_cluster();
  pinned.default_r0 = 1.25;
  EXPECT_DOUBLE_EQ(pinned.assumed_ratio(), 1.25);
}

TEST(PlatformSpec, MakeMachinePerfRanking) {
  const Machine m = tri_cluster().make_machine();
  EXPECT_EQ(m.num_clusters(), 3);
  EXPECT_EQ(m.num_cores(), 8);
  // Peak speeds: little 2*1.2=2.4, big 3*2.4=7.2, prime 3.5*2.8=9.8.
  EXPECT_EQ(m.fastest_cluster(), 2);
  EXPECT_EQ(m.slowest_cluster(), 0);
  const std::vector<ClusterId> order = m.clusters_by_perf();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 0);
  // Legacy names are shims over the capability API.
  EXPECT_EQ(m.big_cluster(), m.fastest_cluster());
  EXPECT_EQ(m.little_cluster(), m.slowest_cluster());
  EXPECT_EQ(m.fastest_mask(), CpuMask::range(7, 1));
  EXPECT_EQ(m.slowest_mask(), CpuMask::range(0, 4));
}

TEST(PlatformSpec, SymmetricMachineTiesTowardLowerCluster) {
  const PlatformSpec spec = PlatformBuilder()
                                .name("sym")
                                .cluster(CoreType::kBig, 2, 4.0)
                                .freqs_ghz({1.0, 2.0})
                                .cluster(CoreType::kBig, 2, 4.0)
                                .freqs_ghz({1.0, 2.0})
                                .build();
  const Machine m = spec.make_machine();
  EXPECT_EQ(m.fastest_cluster(), 0);
  EXPECT_EQ(m.slowest_cluster(), 1);
  EXPECT_DOUBLE_EQ(spec.assumed_ratio(), 1.0);
}

TEST(PlatformSpec, RejectsLittleOutPeakingBig) {
  // The execution model keys per-core speed on CoreType, so a little
  // cluster faster than a big one would invert the perf-ranked pools.
  PlatformBuilder inverted;
  inverted.name("inverted")
      .cluster(CoreType::kBig, 2, 2.0)
      .freqs_ghz({1.0, 1.5})  // peak 3.0
      .cluster(CoreType::kLittle, 4, 3.0)
      .freqs_ghz({1.0, 2.0});  // peak 6.0 > 3.0
  EXPECT_THROW(inverted.build(), PlatformConfigError);

  // An exact cross-type tie is rejected too: the index tie-break could
  // rank the little cluster as the fastest pool.
  PlatformBuilder equal;
  equal.name("equal")
      .cluster(CoreType::kLittle, 4, 3.0)
      .freqs_ghz({1.0, 2.0})  // peak 6.0
      .cluster(CoreType::kBig, 2, 3.0)
      .freqs_ghz({1.0, 2.0});  // peak 6.0
  EXPECT_THROW(equal.build(), PlatformConfigError);

  // Strictly faster big clusters are fine.
  PlatformBuilder ordered;
  ordered.name("ordered")
      .cluster(CoreType::kLittle, 4, 2.0)
      .freqs_ghz({1.0, 2.0})  // peak 4.0
      .cluster(CoreType::kBig, 2, 3.0)
      .freqs_ghz({1.0, 2.0});  // peak 6.0
  EXPECT_NO_THROW(ordered.build());
}

TEST(PlatformSpec, AssumedRatioMatchesMaterializedPoolsOnTies) {
  // Equal peak speeds, different ipc: the ratio must be computed from the
  // same (fastest, slowest) pair the materialized Machine assigns.
  const PlatformSpec spec = PlatformBuilder()
                                .name("tie")
                                .cluster(CoreType::kBig, 2, 2.0)
                                .freqs_ghz({1.5})  // peak 3.0
                                .cluster(CoreType::kBig, 2, 3.0)
                                .freqs_ghz({1.0})  // peak 3.0
                                .build();
  const Machine m = spec.make_machine();
  EXPECT_EQ(m.fastest_cluster(), 0);
  EXPECT_EQ(m.slowest_cluster(), 1);
  const double fast_ipc =
      spec.clusters[static_cast<std::size_t>(m.fastest_cluster())].topology.ipc;
  const double slow_ipc =
      spec.clusters[static_cast<std::size_t>(m.slowest_cluster())].topology.ipc;
  EXPECT_DOUBLE_EQ(spec.assumed_ratio(), fast_ipc / slow_ipc);
}

TEST(PlatformSpec, FromMachineWrapsLegacyDefaults) {
  const PlatformSpec spec = PlatformSpec::from_machine(Machine::exynos5422());
  EXPECT_EQ(spec.name, "exynos5422");
  ASSERT_EQ(spec.clusters.size(), 2u);
  EXPECT_EQ(spec.clusters[0].power.c_dyn, PowerParams::cortex_a7().c_dyn);
  EXPECT_EQ(spec.clusters[1].power.c_dyn, PowerParams::cortex_a15().c_dyn);
  EXPECT_EQ(spec.base_watts, 0.7);
  EXPECT_DOUBLE_EQ(spec.assumed_ratio(), 1.5);  // The paper's r0.
}

TEST(PlatformSpec, FromCsvRoundTrip) {
  std::istringstream in(
      "# custom laptop part\n"
      "platform,laptop,0.5,2.0\n"
      "cluster,little,6,2.0,0.1,0.05,0.03,0.01,0.8;1.2;1.6;2.0\n"
      "cluster,big,2,4.0,0.3,0.15,0.06,0.02,1.0;2.0;3.0;3.6\n");
  const PlatformSpec spec = PlatformSpec::from_csv(in);
  EXPECT_EQ(spec.name, "laptop");
  EXPECT_DOUBLE_EQ(spec.base_watts, 0.5);
  EXPECT_DOUBLE_EQ(spec.default_r0, 2.0);
  ASSERT_EQ(spec.clusters.size(), 2u);
  EXPECT_EQ(spec.clusters[0].topology.type, CoreType::kLittle);
  EXPECT_EQ(spec.clusters[0].topology.core_count, 6);
  ASSERT_EQ(spec.clusters[1].topology.freqs_ghz.size(), 4u);
  EXPECT_DOUBLE_EQ(spec.clusters[1].topology.freqs_ghz[3], 3.6);
  EXPECT_DOUBLE_EQ(spec.clusters[1].power.k_therm, 0.02);
}

TEST(PlatformSpec, FromCsvErrors) {
  std::istringstream no_platform("cluster,big,2,4.0,0.3,0.15,0.06,0.02,1.0\n");
  EXPECT_THROW(PlatformSpec::from_csv(no_platform), PlatformConfigError);

  std::istringstream bad_type(
      "platform,x,0.5\n"
      "cluster,medium,2,4.0,0.3,0.15,0.06,0.02,1.0\n");
  EXPECT_THROW(PlatformSpec::from_csv(bad_type), PlatformConfigError);

  std::istringstream bad_number(
      "platform,x,0.5\n"
      "cluster,big,2,fast,0.3,0.15,0.06,0.02,1.0\n");
  EXPECT_THROW(PlatformSpec::from_csv(bad_number), PlatformConfigError);

  std::istringstream bad_record(
      "platform,x,0.5\n"
      "socket,big,2,4.0,0.3,0.15,0.06,0.02,1.0\n");
  EXPECT_THROW(PlatformSpec::from_csv(bad_record), PlatformConfigError);

  // Parsed but invalid: descending ladder fails validate().
  std::istringstream bad_ladder(
      "platform,x,0.5\n"
      "cluster,little,2,2.0,0.1,0.05,0.03,0.01,0.5;1.0\n"
      "cluster,big,2,4.0,0.3,0.15,0.06,0.02,2.0;1.0\n");
  EXPECT_THROW(PlatformSpec::from_csv(bad_ladder), PlatformConfigError);

  // Core counts must be whole numbers, not silently truncated doubles.
  std::istringstream fractional_cores(
      "platform,x,0.5\n"
      "cluster,little,2,2.0,0.1,0.05,0.03,0.01,0.5;1.0\n"
      "cluster,big,3.9,4.0,0.3,0.15,0.06,0.02,1.0;2.0\n");
  EXPECT_THROW(PlatformSpec::from_csv(fractional_cores), PlatformConfigError);
}

TEST(PlatformSpec, SignatureDistinguishesContent) {
  const PlatformSpec a = tri_cluster();
  PlatformSpec b = tri_cluster();
  EXPECT_EQ(a.signature(), b.signature());
  b.clusters[0].power.c_mem += 0.01;
  EXPECT_NE(a.signature(), b.signature());
  PlatformSpec c = tri_cluster();
  c.base_watts += 0.1;
  EXPECT_NE(a.signature(), c.signature());
}

}  // namespace
}  // namespace hars
