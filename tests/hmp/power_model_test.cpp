#include "hmp/power_model.hpp"

#include <gtest/gtest.h>

namespace hars {
namespace {

class PowerModelTest : public testing::Test {
 protected:
  Machine machine_ = Machine::exynos5422();
  PowerModel model_{machine_};
};

TEST_F(PowerModelTest, IdleClusterDrawsLeakageOnly) {
  const double idle_big = model_.cluster_power(machine_.big_cluster(), 0.0);
  EXPECT_GT(idle_big, 0.0);
  EXPECT_LT(idle_big, 0.5);  // Leakage-only.
}

TEST_F(PowerModelTest, PowerIncreasesWithBusySum) {
  double prev = -1.0;
  for (double busy = 0.0; busy <= 4.0; busy += 0.5) {
    const double p = model_.cluster_power(machine_.big_cluster(), busy);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST_F(PowerModelTest, PowerIncreasesWithFrequency) {
  double prev = -1.0;
  for (int level = 0; level < machine_.num_freq_levels(machine_.big_cluster());
       ++level) {
    machine_.set_freq_level(machine_.big_cluster(), level);
    const double p = model_.cluster_power(machine_.big_cluster(), 4.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST_F(PowerModelTest, BigClusterFullLoadNearPublishedEnvelope) {
  // XU3 A15 cluster flat out is ~5-6 W.
  const double p = model_.cluster_power(machine_.big_cluster(), 4.0);
  EXPECT_GT(p, 4.0);
  EXPECT_LT(p, 7.0);
}

TEST_F(PowerModelTest, LittleClusterFullLoadNearPublishedEnvelope) {
  // A7 cluster flat out is ~1 W.
  const double p = model_.cluster_power(machine_.little_cluster(), 4.0);
  EXPECT_GT(p, 0.5);
  EXPECT_LT(p, 2.0);
}

TEST_F(PowerModelTest, BigCoreCostsMoreThanLittleCore) {
  const double big1 = model_.cluster_power(machine_.big_cluster(), 1.0) -
                      model_.cluster_power(machine_.big_cluster(), 0.0);
  const double little1 = model_.cluster_power(machine_.little_cluster(), 1.0) -
                         model_.cluster_power(machine_.little_cluster(), 0.0);
  EXPECT_GT(big1, 3.0 * little1);
}

TEST_F(PowerModelTest, OfflineClusterDrawsNothing) {
  machine_.set_online_mask(CpuMask::range(0, 4));  // Little only.
  EXPECT_EQ(model_.cluster_power(machine_.big_cluster(), 0.0), 0.0);
  EXPECT_GT(model_.cluster_power(machine_.little_cluster(), 0.0), 0.0);
}

TEST_F(PowerModelTest, TotalPowerIncludesBaseFloor) {
  const std::vector<double> idle(8, 0.0);
  const double total = model_.total_power(idle);
  EXPECT_GE(total, model_.base_watts());
}

TEST_F(PowerModelTest, TotalPowerSumsClusters) {
  std::vector<double> busy(8, 0.0);
  busy[0] = 1.0;  // Little core.
  busy[4] = 1.0;  // Big core.
  const double total = model_.total_power(busy);
  const double expected = model_.base_watts() +
                          model_.cluster_power(machine_.little_cluster(), 1.0) +
                          model_.cluster_power(machine_.big_cluster(), 1.0);
  EXPECT_NEAR(total, expected, 1e-12);
}

TEST_F(PowerModelTest, ThermalTermMakesTruthNonlinear) {
  // P(2u) != 2*P(u) - P(0): the regression must see residuals.
  const double p0 = model_.cluster_power(machine_.big_cluster(), 0.0);
  const double p2 = model_.cluster_power(machine_.big_cluster(), 2.0);
  const double p4 = model_.cluster_power(machine_.big_cluster(), 4.0);
  EXPECT_NE(p4 - p2, p2 - p0);
}

TEST(PowerParams, ForTypeSelectsCorrectParams) {
  EXPECT_EQ(PowerParams::for_type(CoreType::kBig).c_dyn,
            PowerParams::cortex_a15().c_dyn);
  EXPECT_EQ(PowerParams::for_type(CoreType::kLittle).c_dyn,
            PowerParams::cortex_a7().c_dyn);
}

}  // namespace
}  // namespace hars
