#include "hmp/power_sensor.hpp"

#include <gtest/gtest.h>

namespace hars {
namespace {

class PowerSensorTest : public testing::Test {
 protected:
  Machine machine_ = Machine::exynos5422();
  PowerModel model_{machine_};
};

TEST_F(PowerSensorTest, EnergyIntegratesExactly) {
  PowerSensor sensor(machine_, model_);
  const std::vector<double> busy(8, 1.0);
  const double watts = model_.cluster_power(machine_.big_cluster(), 4.0) +
                       model_.cluster_power(machine_.little_cluster(), 4.0);
  TimeUs now = 0;
  for (int i = 0; i < 1000; ++i) {
    now += kUsPerMs;
    sensor.tick(now, kUsPerMs, busy);
  }
  // 1 second at `watts` (+1s of base power in the total).
  const double cluster_energy = sensor.cluster_energy_j(0) + sensor.cluster_energy_j(1);
  EXPECT_NEAR(cluster_energy, watts, 1e-6);
  EXPECT_NEAR(sensor.total_energy_j(), watts + model_.base_watts(), 1e-6);
}

TEST_F(PowerSensorTest, SamplesAtConfiguredPeriod) {
  PowerSensor sensor(machine_, model_, 10 * kUsPerMs, 0.0);
  const std::vector<double> busy(8, 0.5);
  TimeUs now = 0;
  for (int i = 0; i < 100; ++i) {  // 100 ms.
    now += kUsPerMs;
    sensor.tick(now, kUsPerMs, busy);
  }
  EXPECT_EQ(sensor.samples().size(), 10u);
  EXPECT_EQ(sensor.samples().front().time, 10 * kUsPerMs);
}

TEST_F(PowerSensorTest, DefaultPeriodMatchesPaper) {
  EXPECT_EQ(PowerSensor::kDefaultSamplePeriodUs, 263'808);
}

TEST_F(PowerSensorTest, NoiselessSamplesMatchTruth) {
  PowerSensor sensor(machine_, model_, 5 * kUsPerMs, 0.0);
  std::vector<double> busy(8, 0.0);
  busy[4] = 1.0;
  TimeUs now = 0;
  for (int i = 0; i < 10; ++i) {
    now += kUsPerMs;
    sensor.tick(now, kUsPerMs, busy);
  }
  ASSERT_FALSE(sensor.samples().empty());
  const PowerSample& s = sensor.samples().front();
  EXPECT_NEAR(s.cluster_watts[static_cast<std::size_t>(machine_.big_cluster())],
              model_.cluster_power(machine_.big_cluster(), 1.0), 1e-9);
}

TEST_F(PowerSensorTest, NoisySamplesAreUnbiasedButJittered) {
  PowerSensor sensor(machine_, model_, kUsPerMs, 0.05, /*seed=*/7);
  const std::vector<double> busy(8, 1.0);
  TimeUs now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += kUsPerMs;
    sensor.tick(now, kUsPerMs, busy);
  }
  const double truth = model_.cluster_power(machine_.big_cluster(), 4.0);
  double sum = 0.0;
  bool any_jitter = false;
  for (const auto& s : sensor.samples()) {
    const double v = s.cluster_watts[static_cast<std::size_t>(machine_.big_cluster())];
    sum += v;
    if (std::abs(v - truth) > 1e-9) any_jitter = true;
  }
  EXPECT_TRUE(any_jitter);
  EXPECT_NEAR(sum / static_cast<double>(sensor.samples().size()), truth,
              truth * 0.01);
}

TEST_F(PowerSensorTest, AveragePower) {
  PowerSensor sensor(machine_, model_);
  const std::vector<double> idle(8, 0.0);
  TimeUs now = 0;
  for (int i = 0; i < 500; ++i) {
    now += kUsPerMs;
    sensor.tick(now, kUsPerMs, idle);
  }
  const double avg = sensor.average_power_w(now);
  EXPECT_NEAR(avg, model_.total_power(idle), 1e-9);
  EXPECT_EQ(sensor.average_power_w(0), 0.0);
}

TEST_F(PowerSensorTest, ResetClearsState) {
  PowerSensor sensor(machine_, model_);
  const std::vector<double> busy(8, 1.0);
  sensor.tick(kUsPerMs, kUsPerMs, busy);
  EXPECT_GT(sensor.total_energy_j(), 0.0);
  sensor.reset();
  EXPECT_EQ(sensor.total_energy_j(), 0.0);
  EXPECT_TRUE(sensor.samples().empty());
}

}  // namespace
}  // namespace hars
