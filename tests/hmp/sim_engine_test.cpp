#include "hmp/sim_engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "apps/data_parallel_app.hpp"
#include "sched/gts.hpp"

namespace hars {
namespace {

DataParallelConfig simple_config(int threads = 4, double work = 2.0) {
  DataParallelConfig cfg;
  cfg.threads = threads;
  cfg.speed = SpeedModel{3.0, 2.0};
  cfg.workload = {WorkloadShape::kStable, work, 0.0, 0.0, 1};
  return cfg;
}

std::unique_ptr<SimEngine> make_engine() {
  return std::make_unique<SimEngine>(Machine::exynos5422(),
                                     std::make_unique<GtsScheduler>());
}

TEST(SimEngine, TimeAdvancesByTicks) {
  auto engine = make_engine();
  engine->run_for(10 * kUsPerMs);
  EXPECT_EQ(engine->now(), 10 * kUsPerMs);
}

TEST(SimEngine, AppMakesProgressAndEmitsHeartbeats) {
  auto engine = make_engine();
  DataParallelApp app("test", simple_config());
  engine->add_app(&app);
  engine->run_for(5 * kUsPerSec);
  EXPECT_GT(app.heartbeats().count(), 0);
  EXPECT_GT(app.iterations_completed(), 0);
}

TEST(SimEngine, HeartbeatRateMatchesAnalyticThroughput) {
  auto engine = make_engine();
  // 4 threads, each 0.5 work-units per iteration. GTS puts CPU-bound
  // threads on big cores (4.8 wu/s at 1.6 GHz): iteration ~ 104 ms.
  DataParallelApp app("test", simple_config(4, 2.0));
  engine->add_app(&app);
  engine->run_for(30 * kUsPerSec);
  const double rate = app.heartbeats().global_rate(engine->now());
  EXPECT_NEAR(rate, 4.8 / 0.5, 0.8);
}

TEST(SimEngine, AffinityRestrictsExecution) {
  auto engine = make_engine();
  DataParallelApp app("test", simple_config(4, 2.0));
  const AppId id = engine->add_app(&app);
  engine->set_app_affinity(id, CpuMask::range(0, 4));  // Little cores only.
  engine->run_for(30 * kUsPerSec);
  for (int i = 0; i < 4; ++i) {
    const CoreId core = engine->thread_core(id, i);
    EXPECT_GE(core, 0);
    EXPECT_LT(core, 4);
  }
  // Little @1.3GHz: 2.6 wu/s per thread -> ~5.2 hb/s.
  const double rate = app.heartbeats().global_rate(engine->now());
  EXPECT_NEAR(rate, 2.6 / 0.5, 0.8);
}

TEST(SimEngine, BusyFractionsAreSane) {
  auto engine = make_engine();
  DataParallelApp app("test", simple_config(8, 4.0));
  engine->add_app(&app);
  engine->run_for(10 * kUsPerSec);
  double total_busy = 0.0;
  for (CoreId c = 0; c < engine->machine().num_cores(); ++c) {
    const double b = engine->core_busy_fraction(c);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    total_busy += b;
  }
  EXPECT_GT(total_busy, 1.0);  // 8 CPU-bound threads keep cores busy.
}

TEST(SimEngine, FrequencyChangeSlowsApp) {
  auto engine = make_engine();
  DataParallelApp app("test", simple_config(4, 2.0));
  const AppId id = engine->add_app(&app);
  engine->set_app_affinity(id, CpuMask::range(4, 4));
  Machine& m = engine->machine();
  m.set_freq_ghz(m.big_cluster(), 0.8);
  engine->run_for(30 * kUsPerSec);
  const double rate = app.heartbeats().global_rate(engine->now());
  // big @0.8: 2.4 wu/s per thread -> ~4.8 hb/s.
  EXPECT_NEAR(rate, 2.4 / 0.5, 0.8);
}

class FixedCostManager : public ManagerHook {
 public:
  explicit FixedCostManager(TimeUs cost) : cost_(cost) {}
  TimeUs on_tick(TimeUs) override { return cost_; }

 private:
  TimeUs cost_;
};

TEST(SimEngine, ManagerOverheadIsChargedAndReported) {
  auto engine = make_engine();
  FixedCostManager manager(100);  // 100 us per 1 ms tick = 10% of one CPU.
  engine->set_manager(&manager);
  engine->run_for(10 * kUsPerSec);
  EXPECT_NEAR(engine->manager_cpu_utilization_pct(), 10.0, 0.5);
  // Charged to the manager core (cpu0).
  EXPECT_NEAR(engine->core_busy_fraction(0), 0.10, 0.02);
}

TEST(SimEngine, ManagerOverheadConsumesAppCapacityOnManagerCore) {
  auto engine = make_engine();
  DataParallelApp app("test", simple_config(1, 1.0));
  const AppId id = engine->add_app(&app);
  engine->set_thread_affinity(id, 0, CpuMask::single(0));
  FixedCostManager manager(500);  // Half of cpu0.
  engine->set_manager(&manager);
  engine->run_for(20 * kUsPerSec);
  const double rate = app.heartbeats().global_rate(engine->now());
  // Thread alone would run at 2.6 wu/s (1 wu/iter); with half the core, ~1.3.
  EXPECT_NEAR(rate, 1.3, 0.3);
}

TEST(SimEngine, OwnedManagerLifetimeAndClear) {
  auto engine = make_engine();
  // Owned install: the engine keeps the manager alive and ticking.
  engine->set_manager(std::make_unique<FixedCostManager>(100));
  ASSERT_NE(engine->manager(), nullptr);
  engine->run_for(5 * kUsPerSec);
  EXPECT_GT(engine->manager_overhead_us(), 0);

  // Replacing an owned manager with a non-owning one destroys the old one.
  FixedCostManager external(50);
  engine->set_manager(&external);
  EXPECT_EQ(engine->manager(), &external);

  // Re-installing the same raw pointer is a no-op for ownership.
  engine->set_manager(&external);
  EXPECT_EQ(engine->manager(), &external);

  // clear_manager detaches; overhead accounting is kept.
  const TimeUs charged = engine->manager_overhead_us();
  engine->clear_manager();
  EXPECT_EQ(engine->manager(), nullptr);
  engine->run_for(5 * kUsPerSec);
  EXPECT_EQ(engine->manager_overhead_us(), charged);
}

TEST(SimEngine, PowerAccumulates) {
  auto engine = make_engine();
  DataParallelApp app("test", simple_config());
  engine->add_app(&app);
  engine->run_for(5 * kUsPerSec);
  EXPECT_GT(engine->sensor().total_energy_j(), 0.0);
  EXPECT_GT(engine->sensor().average_power_w(engine->now()),
            engine->power_model().base_watts());
}

TEST(SimEngine, RequiresScheduler) {
  EXPECT_THROW(SimEngine(Machine::exynos5422(), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace hars
