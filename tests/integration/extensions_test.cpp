// Integration tests for the §3.1.4 / §5.1.2 extensions wired into the
// runtime manager: Kalman prediction, tabu search, hierarchical
// scheduling and online ratio learning.
#include <gtest/gtest.h>

#include <memory>

#include "apps/data_parallel_app.hpp"
#include "apps/parsec.hpp"
#include "core/hars.hpp"
#include "exp/experiment.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"

namespace hars {
namespace {

ExperimentBuilder quick(ParsecBenchmark bench) {
  ExperimentBuilder builder;
  builder.app(bench).variant("HARS-E").duration(80 * kUsPerSec);
  return builder;
}

TEST(Extensions, KalmanPredictorKeepsTargetOnNoisyWorkload) {
  const ExperimentResult r = quick(ParsecBenchmark::kBodytrack)
                                 .predictor(PredictorKind::kKalman)
                                 .build()
                                 .run();
  EXPECT_GT(r.app().metrics.norm_perf, 0.85);
  EXPECT_GT(r.app().metrics.perf_per_watt, 0.0);
}

TEST(Extensions, KalmanComparableToLastValueOnStableWorkload) {
  const ExperimentResult last = quick(ParsecBenchmark::kSwaptions)
                                    .predictor(PredictorKind::kLastValue)
                                    .build()
                                    .run();
  const ExperimentResult kalman = quick(ParsecBenchmark::kSwaptions)
                                      .predictor(PredictorKind::kKalman)
                                      .build()
                                      .run();
  EXPECT_GT(kalman.app().metrics.perf_per_watt,
            0.75 * last.app().metrics.perf_per_watt);
}

TEST(Extensions, TabuPolicyConvergesToTarget) {
  const ExperimentResult r = quick(ParsecBenchmark::kSwaptions)
                                 .policy(SearchPolicy::kTabu)
                                 .build()
                                 .run();
  EXPECT_GT(r.app().metrics.norm_perf, 0.85);
  ExperimentBuilder baseline;
  baseline.app(ParsecBenchmark::kSwaptions)
      .variant("Baseline")
      .duration(80 * kUsPerSec);
  const ExperimentResult base = baseline.build().run();
  EXPECT_GT(r.app().metrics.perf_per_watt,
            1.5 * base.app().metrics.perf_per_watt);
}

TEST(Extensions, TabuParamsFlowThroughBuilder) {
  const ExperimentResult r = quick(ParsecBenchmark::kSwaptions)
                                 .policy(SearchPolicy::kTabu)
                                 .tabu(TabuParams{8, 6, 1})
                                 .duration(40 * kUsPerSec)
                                 .build()
                                 .run();
  EXPECT_GT(r.app().metrics.norm_perf, 0.8);
}

TEST(Extensions, HierarchicalSchedulerWorksOnPipeline) {
  const ExperimentResult r = quick(ParsecBenchmark::kFerret)
                                 .scheduler(ThreadSchedulerKind::kHierarchical)
                                 .build()
                                 .run();
  EXPECT_GT(r.app().metrics.norm_perf, 0.8);
  // At least as good as the chunk mapping the paper criticizes.
  const ExperimentResult chunk = quick(ParsecBenchmark::kFerret)
                                     .scheduler(ThreadSchedulerKind::kChunk)
                                     .build()
                                     .run();
  EXPECT_GE(r.app().metrics.perf_per_watt,
            0.9 * chunk.app().metrics.perf_per_watt);
}

TEST(Extensions, RatioLearningImprovesBlackscholes) {
  const ExperimentResult fixed = quick(ParsecBenchmark::kBlackscholes)
                                     .duration(100 * kUsPerSec)
                                     .build()
                                     .run();
  const ExperimentResult learned = quick(ParsecBenchmark::kBlackscholes)
                                       .duration(100 * kUsPerSec)
                                       .learn_ratio()
                                       .build()
                                       .run();
  // The learner must never be materially worse, and BL's wrong prior gives
  // it room to help.
  EXPECT_GE(learned.app().metrics.perf_per_watt,
            0.9 * fixed.app().metrics.perf_per_watt);
  EXPECT_GT(learned.app().metrics.norm_perf, 0.85);
}

TEST(Extensions, RatioLearnerConvergesInsideManager) {
  // Exercises the legacy attach_hars facade (kept for direct engine
  // embedding) together with the engine's non-owning manager slot.
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  auto app = make_parsec_app(ParsecBenchmark::kBlackscholes);  // True r = 1.0.
  const AppId id = engine.add_app(app.get());
  RuntimeManagerConfig config = config_for_variant(HarsVariant::kHarsE);
  config.learn_ratio = true;
  auto manager = attach_hars(engine, id, PerfTarget::around(2.0),
                             HarsVariant::kHarsE, &config);
  engine.run_for(120 * kUsPerSec);
  // Started from the 1.5 prior; should have moved toward 1.0.
  EXPECT_LT(manager->current_r0(), 1.4);
}

TEST(Extensions, EnergyMetricsPopulated) {
  const ExperimentResult r = quick(ParsecBenchmark::kSwaptions).build().run();
  EXPECT_GT(r.app().metrics.energy_j, 0.0);
  EXPECT_GT(r.app().metrics.energy_per_beat_j, 0.0);
  // Energy per beat consistency: energy / (rate * span).
  EXPECT_NEAR(r.app().metrics.energy_per_beat_j,
              r.app().metrics.avg_power_w / r.app().metrics.avg_rate_hps,
              0.2 * r.app().metrics.energy_per_beat_j);
}

}  // namespace
}  // namespace hars
