// Integration tests for the §3.1.4 / §5.1.2 extensions wired into the
// runtime manager: Kalman prediction, tabu search, hierarchical
// scheduling and online ratio learning.
#include <gtest/gtest.h>

#include <memory>

#include "apps/data_parallel_app.hpp"
#include "apps/parsec.hpp"
#include "core/hars.hpp"
#include "exp/runner.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"

namespace hars {
namespace {

SingleRunOptions quick_options() {
  SingleRunOptions o;
  o.duration = 80 * kUsPerSec;
  return o;
}

TEST(Extensions, KalmanPredictorKeepsTargetOnNoisyWorkload) {
  SingleRunOptions options = quick_options();
  options.override_predictor = 1;
  const SingleRunResult r =
      run_single(ParsecBenchmark::kBodytrack, SingleVersion::kHarsE, options);
  EXPECT_GT(r.metrics.norm_perf, 0.85);
  EXPECT_GT(r.metrics.perf_per_watt, 0.0);
}

TEST(Extensions, KalmanComparableToLastValueOnStableWorkload) {
  SingleRunOptions options = quick_options();
  options.override_predictor = 0;
  const SingleRunResult last =
      run_single(ParsecBenchmark::kSwaptions, SingleVersion::kHarsE, options);
  options.override_predictor = 1;
  const SingleRunResult kalman =
      run_single(ParsecBenchmark::kSwaptions, SingleVersion::kHarsE, options);
  EXPECT_GT(kalman.metrics.perf_per_watt, 0.75 * last.metrics.perf_per_watt);
}

TEST(Extensions, TabuPolicyConvergesToTarget) {
  SingleRunOptions options = quick_options();
  options.override_policy = 2;
  const SingleRunResult r =
      run_single(ParsecBenchmark::kSwaptions, SingleVersion::kHarsE, options);
  EXPECT_GT(r.metrics.norm_perf, 0.85);
  const SingleRunResult base = run_single(ParsecBenchmark::kSwaptions,
                                          SingleVersion::kBaseline, options);
  EXPECT_GT(r.metrics.perf_per_watt, 1.5 * base.metrics.perf_per_watt);
}

TEST(Extensions, HierarchicalSchedulerWorksOnPipeline) {
  SingleRunOptions options = quick_options();
  options.override_scheduler = 2;  // Hierarchical.
  const SingleRunResult r =
      run_single(ParsecBenchmark::kFerret, SingleVersion::kHarsE, options);
  EXPECT_GT(r.metrics.norm_perf, 0.8);
  // At least as good as the chunk mapping the paper criticizes.
  options.override_scheduler = 0;
  const SingleRunResult chunk =
      run_single(ParsecBenchmark::kFerret, SingleVersion::kHarsE, options);
  EXPECT_GE(r.metrics.perf_per_watt, 0.9 * chunk.metrics.perf_per_watt);
}

TEST(Extensions, RatioLearningImprovesBlackscholes) {
  SingleRunOptions options = quick_options();
  options.duration = 100 * kUsPerSec;
  const SingleRunResult fixed =
      run_single(ParsecBenchmark::kBlackscholes, SingleVersion::kHarsE, options);
  options.learn_ratio = true;
  const SingleRunResult learned =
      run_single(ParsecBenchmark::kBlackscholes, SingleVersion::kHarsE, options);
  // The learner must never be materially worse, and BL's wrong prior gives
  // it room to help.
  EXPECT_GE(learned.metrics.perf_per_watt, 0.9 * fixed.metrics.perf_per_watt);
  EXPECT_GT(learned.metrics.norm_perf, 0.85);
}

TEST(Extensions, RatioLearnerConvergesInsideManager) {
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  auto app = make_parsec_app(ParsecBenchmark::kBlackscholes);  // True r = 1.0.
  const AppId id = engine.add_app(app.get());
  RuntimeManagerConfig config = config_for_variant(HarsVariant::kHarsE);
  config.learn_ratio = true;
  auto manager = attach_hars(engine, id, PerfTarget::around(2.0),
                             HarsVariant::kHarsE, &config);
  engine.run_for(120 * kUsPerSec);
  // Started from the 1.5 prior; should have moved toward 1.0.
  EXPECT_LT(manager->current_r0(), 1.4);
}

TEST(Extensions, EnergyMetricsPopulated) {
  const SingleRunResult r = run_single(ParsecBenchmark::kSwaptions,
                                       SingleVersion::kHarsE, quick_options());
  EXPECT_GT(r.metrics.energy_j, 0.0);
  EXPECT_GT(r.metrics.energy_per_beat_j, 0.0);
  // Energy per beat consistency: energy / (rate * span).
  EXPECT_NEAR(r.metrics.energy_per_beat_j,
              r.metrics.avg_power_w / r.metrics.avg_rate_hps,
              0.2 * r.metrics.energy_per_beat_j);
}

}  // namespace
}  // namespace hars
