#include "exp/metrics.hpp"

#include <gtest/gtest.h>

namespace hars {
namespace {

std::vector<HeartbeatRecord> regular_beats(double rate_hps, TimeUs start,
                                           TimeUs end) {
  std::vector<HeartbeatRecord> out;
  const TimeUs period = static_cast<TimeUs>(kUsPerSec / rate_hps);
  std::int64_t idx = 0;
  for (TimeUs t = start; t <= end; t += period) {
    out.push_back(HeartbeatRecord{idx++, t});
  }
  return out;
}

TEST(Metrics, NormPerfOneWhenOnTarget) {
  const auto beats = regular_beats(2.0, 0, 100 * kUsPerSec);
  const PerfTarget target = PerfTarget::around(2.0);
  const double np = time_weighted_norm_perf(beats, target, 0, 100 * kUsPerSec);
  EXPECT_NEAR(np, 1.0, 0.02);
}

TEST(Metrics, NormPerfCappedWhenOverperforming) {
  const auto beats = regular_beats(8.0, 0, 100 * kUsPerSec);
  const PerfTarget target = PerfTarget::around(2.0);
  EXPECT_NEAR(time_weighted_norm_perf(beats, target, 0, 100 * kUsPerSec), 1.0,
              0.02);
}

TEST(Metrics, NormPerfHalfWhenAtHalfTarget) {
  const auto beats = regular_beats(1.0, 0, 100 * kUsPerSec);
  const PerfTarget target = PerfTarget::around(2.0);
  EXPECT_NEAR(time_weighted_norm_perf(beats, target, 0, 100 * kUsPerSec), 0.5,
              0.03);
}

TEST(Metrics, EmptyHistoryIsZero) {
  const PerfTarget target = PerfTarget::around(2.0);
  EXPECT_EQ(time_weighted_norm_perf({}, target, 0, kUsPerSec), 0.0);
  EXPECT_EQ(average_rate({}, 0, kUsPerSec), 0.0);
}

TEST(Metrics, HeadBeforeFirstBeatCountsAsZeroRate) {
  // Beats only in the second half of the span.
  const auto beats = regular_beats(2.0, 50 * kUsPerSec, 100 * kUsPerSec);
  const PerfTarget target = PerfTarget::around(2.0);
  const double np = time_weighted_norm_perf(beats, target, 0, 100 * kUsPerSec);
  EXPECT_NEAR(np, 0.5, 0.05);  // Half the span at zero, half at 1.0.
}

TEST(Metrics, InWindowFraction) {
  const auto beats = regular_beats(2.0, 0, 100 * kUsPerSec);
  EXPECT_NEAR(time_in_window_fraction(beats, PerfTarget::around(2.0), 0,
                                      100 * kUsPerSec),
              1.0, 0.05);
  EXPECT_NEAR(time_in_window_fraction(beats, PerfTarget::around(4.0), 0,
                                      100 * kUsPerSec),
              0.0, 0.05);
}

TEST(Metrics, AverageRateCountsBeatsInSpan) {
  const auto beats = regular_beats(4.0, 0, 100 * kUsPerSec);
  EXPECT_NEAR(average_rate(beats, 0, 100 * kUsPerSec), 4.0, 0.1);
  // Half span -> same rate.
  EXPECT_NEAR(average_rate(beats, 50 * kUsPerSec, 100 * kUsPerSec), 4.0, 0.2);
}

TEST(Metrics, DegenerateSpan) {
  const auto beats = regular_beats(4.0, 0, kUsPerSec);
  EXPECT_EQ(average_rate(beats, kUsPerSec, kUsPerSec), 0.0);
  EXPECT_EQ(time_weighted_norm_perf(beats, PerfTarget::around(1.0), kUsPerSec,
                                    kUsPerSec),
            0.0);
}

}  // namespace
}  // namespace hars
