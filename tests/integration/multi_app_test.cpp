// End-to-end multi-application runs backing Figure 5.4's orderings.
#include <gtest/gtest.h>

#include <cmath>

#include "exp/runner.hpp"

namespace hars {
namespace {

MultiRunOptions quick_options() {
  MultiRunOptions o;
  o.duration = 100 * kUsPerSec;
  return o;
}

TEST(MultiApp, CaseListMatchesPaper) {
  const auto cases = multiapp_cases();
  ASSERT_EQ(cases.size(), 6u);
  EXPECT_EQ(cases[3][0], ParsecBenchmark::kBodytrack);      // Case 4 = BO+FL.
  EXPECT_EQ(cases[3][1], ParsecBenchmark::kFluidanimate);
  EXPECT_EQ(cases[5][0], ParsecBenchmark::kBodytrack);      // Case 6 = BO+BL.
  EXPECT_EQ(cases[5][1], ParsecBenchmark::kBlackscholes);
}

TEST(MultiApp, BaselineRunsBothAppsFlatOut) {
  const auto benches = multiapp_cases()[0];  // BO+SW.
  const MultiRunResult r = run_multi(benches, MultiVersion::kBaseline,
                                     quick_options());
  ASSERT_EQ(r.per_app.size(), 2u);
  EXPECT_GT(r.avg_power_w, 4.0);
  for (const RunMetrics& m : r.per_app) EXPECT_GT(m.heartbeats, 10);
}

TEST(MultiApp, MpHarsEBeatsBaselineOnGeomean) {
  const auto benches = multiapp_cases()[0];
  const MultiRunResult base = run_multi(benches, MultiVersion::kBaseline,
                                        quick_options());
  const MultiRunResult mp = run_multi(benches, MultiVersion::kMpHarsE,
                                      quick_options());
  const double base_gm = std::sqrt(base.per_app[0].perf_per_watt *
                                   base.per_app[1].perf_per_watt);
  const double mp_gm =
      std::sqrt(mp.per_app[0].perf_per_watt * mp.per_app[1].perf_per_watt);
  EXPECT_GT(mp_gm, 1.3 * base_gm);
}

TEST(MultiApp, MpHarsESavesPowerVersusBaseline) {
  const auto benches = multiapp_cases()[3];  // BO+FL.
  const MultiRunResult base = run_multi(benches, MultiVersion::kBaseline,
                                        quick_options());
  const MultiRunResult mp = run_multi(benches, MultiVersion::kMpHarsE,
                                      quick_options());
  EXPECT_LT(mp.avg_power_w, base.avg_power_w);
}

TEST(MultiApp, ConsIBeatsBaselineWhenAsymmetric) {
  // Case 2 (BL+SW): blackscholes' silent input phase leaves swaptions
  // running solo, far above its target; CONS-I can decrease the shared
  // state and save power where the baseline cannot.
  const auto benches = multiapp_cases()[1];
  const MultiRunResult base = run_multi(benches, MultiVersion::kBaseline,
                                        quick_options());
  const MultiRunResult cons = run_multi(benches, MultiVersion::kConsI,
                                        quick_options());
  const double base_gm = std::sqrt(base.per_app[0].perf_per_watt *
                                   base.per_app[1].perf_per_watt);
  const double cons_gm = std::sqrt(cons.per_app[0].perf_per_watt *
                                   cons.per_app[1].perf_per_watt);
  EXPECT_GT(cons_gm, base_gm);
}

TEST(MultiApp, ConsIDescendsWhenBothOverperform) {
  // Case 1 (BO+SW): both apps start at 2x their (concurrent-baseline-
  // derived) targets, so the conservative model may decrease the shared
  // state and save real power while keeping both close to target.
  const auto benches = multiapp_cases()[0];
  const MultiRunResult base = run_multi(benches, MultiVersion::kBaseline,
                                        quick_options());
  const MultiRunResult cons = run_multi(benches, MultiVersion::kConsI,
                                        quick_options());
  EXPECT_LT(cons.avg_power_w, 0.8 * base.avg_power_w);
  for (const RunMetrics& m : cons.per_app) EXPECT_GT(m.norm_perf, 0.8);
}

TEST(MultiApp, TracesProducedForManagedVersions) {
  const auto benches = multiapp_cases()[3];
  for (MultiVersion v : {MultiVersion::kConsI, MultiVersion::kMpHarsI,
                         MultiVersion::kMpHarsE}) {
    MultiRunOptions o;
    o.duration = 40 * kUsPerSec;
    const MultiRunResult r = run_multi(benches, v, o);
    ASSERT_EQ(r.traces.size(), 2u) << multi_version_name(v);
    EXPECT_FALSE(r.traces[0].empty()) << multi_version_name(v);
    EXPECT_FALSE(r.traces[1].empty()) << multi_version_name(v);
  }
}

TEST(MultiApp, TargetsDerivedFromStandaloneCalibration) {
  const auto benches = multiapp_cases()[0];
  const MultiRunResult r = run_multi(benches, MultiVersion::kBaseline,
                                     quick_options());
  ASSERT_EQ(r.targets.size(), 2u);
  for (const PerfTarget& t : r.targets) EXPECT_GT(t.avg(), 0.0);
}

TEST(MultiApp, VersionNames) {
  EXPECT_STREQ(multi_version_name(MultiVersion::kBaseline), "Baseline");
  EXPECT_STREQ(multi_version_name(MultiVersion::kConsI), "CONS-I");
  EXPECT_STREQ(multi_version_name(MultiVersion::kMpHarsI), "MP-HARS-I");
  EXPECT_STREQ(multi_version_name(MultiVersion::kMpHarsE), "MP-HARS-E");
  EXPECT_EQ(all_multi_versions().size(), 4u);
  EXPECT_EQ(all_single_versions().size(), 5u);
}

}  // namespace
}  // namespace hars
