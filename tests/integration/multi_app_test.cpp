// End-to-end multi-application runs backing Figure 5.4's orderings.
#include <gtest/gtest.h>

#include <cmath>

#include "exp/experiment.hpp"
#include "exp/runner.hpp"  // Legacy version-name surface (VersionNames test).

namespace hars {
namespace {

ExperimentResult quick_multi(const std::vector<ParsecBenchmark>& benches,
                             const char* variant) {
  return ExperimentBuilder()
      .apps(benches)
      .variant(variant)
      .duration(100 * kUsPerSec)
      .build()
      .run();
}

double gm_pp(const ExperimentResult& r) {
  return std::sqrt(r.apps[0].metrics.perf_per_watt *
                   r.apps[1].metrics.perf_per_watt);
}

TEST(MultiApp, CaseListMatchesPaper) {
  const auto cases = multiapp_cases();
  ASSERT_EQ(cases.size(), 6u);
  EXPECT_EQ(cases[3][0], ParsecBenchmark::kBodytrack);      // Case 4 = BO+FL.
  EXPECT_EQ(cases[3][1], ParsecBenchmark::kFluidanimate);
  EXPECT_EQ(cases[5][0], ParsecBenchmark::kBodytrack);      // Case 6 = BO+BL.
  EXPECT_EQ(cases[5][1], ParsecBenchmark::kBlackscholes);
}

TEST(MultiApp, BaselineRunsBothAppsFlatOut) {
  const auto benches = multiapp_cases()[0];  // BO+SW.
  const ExperimentResult r = quick_multi(benches, "Baseline");
  ASSERT_EQ(r.apps.size(), 2u);
  EXPECT_GT(r.avg_power_w, 4.0);
  for (const AppRunResult& app : r.apps) EXPECT_GT(app.metrics.heartbeats, 10);
}

TEST(MultiApp, MpHarsEBeatsBaselineOnGeomean) {
  const auto benches = multiapp_cases()[0];
  const ExperimentResult base = quick_multi(benches, "Baseline");
  const ExperimentResult mp = quick_multi(benches, "MP-HARS-E");
  EXPECT_GT(gm_pp(mp), 1.3 * gm_pp(base));
}

TEST(MultiApp, MpHarsESavesPowerVersusBaseline) {
  const auto benches = multiapp_cases()[3];  // BO+FL.
  const ExperimentResult base = quick_multi(benches, "Baseline");
  const ExperimentResult mp = quick_multi(benches, "MP-HARS-E");
  EXPECT_LT(mp.avg_power_w, base.avg_power_w);
}

TEST(MultiApp, ConsIBeatsBaselineWhenAsymmetric) {
  // Case 2 (BL+SW): blackscholes' silent input phase leaves swaptions
  // running solo, far above its target; CONS-I can decrease the shared
  // state and save power where the baseline cannot.
  const auto benches = multiapp_cases()[1];
  const ExperimentResult base = quick_multi(benches, "Baseline");
  const ExperimentResult cons = quick_multi(benches, "CONS-I");
  EXPECT_GT(gm_pp(cons), gm_pp(base));
}

TEST(MultiApp, ConsIDescendsWhenBothOverperform) {
  // Case 1 (BO+SW): both apps start at 2x their (concurrent-baseline-
  // derived) targets, so the conservative model may decrease the shared
  // state and save real power while keeping both close to target.
  const auto benches = multiapp_cases()[0];
  const ExperimentResult base = quick_multi(benches, "Baseline");
  const ExperimentResult cons = quick_multi(benches, "CONS-I");
  EXPECT_LT(cons.avg_power_w, 0.8 * base.avg_power_w);
  for (const AppRunResult& app : cons.apps) {
    EXPECT_GT(app.metrics.norm_perf, 0.8);
  }
}

TEST(MultiApp, TracesProducedForManagedVersions) {
  const auto benches = multiapp_cases()[3];
  for (const char* variant : {"CONS-I", "MP-HARS-I", "MP-HARS-E"}) {
    const ExperimentResult r = ExperimentBuilder()
                                   .apps(benches)
                                   .variant(variant)
                                   .duration(40 * kUsPerSec)
                                   .build()
                                   .run();
    ASSERT_EQ(r.apps.size(), 2u) << variant;
    EXPECT_FALSE(r.apps[0].trace.empty()) << variant;
    EXPECT_FALSE(r.apps[1].trace.empty()) << variant;
  }
}

TEST(MultiApp, TargetsDerivedFromConcurrentBaseline) {
  const auto benches = multiapp_cases()[0];
  const ExperimentResult r = quick_multi(benches, "Baseline");
  ASSERT_EQ(r.apps.size(), 2u);
  for (const AppRunResult& app : r.apps) EXPECT_GT(app.target.avg(), 0.0);
}

TEST(MultiApp, VersionNames) {
  // The legacy enum surface still round-trips (the shims depend on it).
  EXPECT_STREQ(multi_version_name(MultiVersion::kBaseline), "Baseline");
  EXPECT_STREQ(multi_version_name(MultiVersion::kConsI), "CONS-I");
  EXPECT_STREQ(multi_version_name(MultiVersion::kMpHarsI), "MP-HARS-I");
  EXPECT_STREQ(multi_version_name(MultiVersion::kMpHarsE), "MP-HARS-E");
  EXPECT_EQ(all_multi_versions().size(), 4u);
  EXPECT_EQ(all_single_versions().size(), 5u);
  EXPECT_EQ(parse_multi_version("MP-HARS-E"), MultiVersion::kMpHarsE);
  EXPECT_EQ(parse_single_version("HARS-EI"), SingleVersion::kHarsEI);
  EXPECT_EQ(parse_single_version("nope"), std::nullopt);
}

}  // namespace
}  // namespace hars
