// Platform API integration: the golden exynos5422 regression (the
// registry preset must reproduce the historical hard-wired
// Machine::exynos5422() preset bit-for-bit) and N-cluster scenario
// diversity (every registered runtime version completes on a >=3-cluster
// platform, serially and through the sweep engine).
#include <gtest/gtest.h>

#include <cmath>

#include "exp/experiment.hpp"
#include "exp/variant_registry.hpp"
#include "hmp/platform_registry.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep_engine.hpp"

namespace hars {
namespace {

/// One figure-5.1 case: swaptions, default 50% target, HARS-E.
ExperimentBuilder fig51_case() {
  ExperimentBuilder builder;
  builder.app(ParsecBenchmark::kSwaptions)
      .variant("HARS-E")
      .target_fraction(0.5)
      .duration(40 * kUsPerSec);
  return builder;
}

void expect_bitwise_equal(const ExperimentResult& a,
                          const ExperimentResult& b) {
  ASSERT_EQ(a.apps.size(), b.apps.size());
  EXPECT_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_EQ(a.adaptations, b.adaptations);
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    const RunMetrics& ma = a.apps[i].metrics;
    const RunMetrics& mb = b.apps[i].metrics;
    EXPECT_EQ(ma.norm_perf, mb.norm_perf);
    EXPECT_EQ(ma.avg_rate_hps, mb.avg_rate_hps);
    EXPECT_EQ(ma.avg_power_w, mb.avg_power_w);
    EXPECT_EQ(ma.perf_per_watt, mb.perf_per_watt);
    EXPECT_EQ(ma.energy_j, mb.energy_j);
    EXPECT_EQ(ma.heartbeats, mb.heartbeats);
    EXPECT_EQ(ma.in_window_fraction, mb.in_window_fraction);
    EXPECT_EQ(a.apps[i].target.min, b.apps[i].target.min);
    EXPECT_EQ(a.apps[i].target.max, b.apps[i].target.max);
  }
}

TEST(PlatformGolden, RegistryPresetReproducesMachinePresetBitForBit) {
  // The historical hard-wired path: a bare Machine wrapped with the
  // legacy per-core-type power defaults.
  const ExperimentResult machine_path =
      fig51_case().platform(Machine::exynos5422()).build().run();
  // The redesigned path: the registry preset by name.
  const ExperimentResult named_path =
      fig51_case().platform("exynos5422").build().run();
  // And the builder default (no platform() call at all).
  const ExperimentResult default_path = fig51_case().build().run();

  EXPECT_GT(machine_path.app().metrics.heartbeats, 0);
  expect_bitwise_equal(machine_path, named_path);
  expect_bitwise_equal(machine_path, default_path);
}

TEST(PlatformGolden, UnknownPlatformNameThrows) {
  ExperimentBuilder builder;
  EXPECT_THROW(builder.platform("no-such-platform"), ExperimentConfigError);
}

TEST(PlatformDiversity, AllVariantsCompleteOnTriClusterPlatform) {
  // Acceptance: every registered runtime version finishes a sweep on a
  // >=3-cluster platform and produces sane metrics.
  const std::vector<std::string> variants = VariantRegistry::instance().names();
  ASSERT_GE(variants.size(), 8u);

  SweepSpec spec;
  spec.name("sd855_all_variants")
      .base([](ExperimentBuilder& b) { b.duration(20 * kUsPerSec); })
      .platforms({"sd855"})
      .benchmarks({ParsecBenchmark::kSwaptions})
      .variants(variants);

  TableSink table;
  SweepEngine engine(SweepOptions{.jobs = 2});
  engine.add_sink(table);
  const SweepReport report = engine.run(spec);

  ASSERT_EQ(report.outcomes.size(), variants.size());
  for (const CaseOutcome& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.ok()) << outcome.error;
  }
  for (const Record& row : table.rows()) {
    const RecordCell* power = row.find("avg_power_w");
    ASSERT_NE(power, nullptr);
    EXPECT_TRUE(std::isfinite(power->number));
    EXPECT_GT(power->number, 0.0);
    const RecordCell* beats = row.find("heartbeats");
    ASSERT_NE(beats, nullptr);
    EXPECT_GT(beats->number, 0.0);
  }
}

TEST(PlatformDiversity, HarsAdaptsOnManycoreAndServer) {
  for (const char* platform : {"manycore4x4", "server2x8"}) {
    const ExperimentResult r = ExperimentBuilder()
                                   .platform(platform)
                                   .app(ParsecBenchmark::kBodytrack)
                                   .variant("HARS-EI")
                                   .target_fraction(0.5)
                                   .duration(30 * kUsPerSec)
                                   .build()
                                   .run();
    EXPECT_GT(r.app().metrics.heartbeats, 0) << platform;
    EXPECT_GT(r.app().metrics.avg_power_w, 0.0) << platform;
    EXPECT_TRUE(std::isfinite(r.app().metrics.perf_per_watt)) << platform;
  }
}

TEST(PlatformDiversity, ConsIKeepsMiddleClustersOnline) {
  // CONS-I's hotplug model controls the fast and slow pools; on an
  // N-cluster machine the middle clusters are outside the model and must
  // stay online under OS-scheduler control.
  bool sampled = false;
  const ExperimentResult r =
      ExperimentBuilder()
          .platform("sd855")
          .app(ParsecBenchmark::kSwaptions)
          .variant("CONS-I")
          .target_fraction(0.5)
          .duration(20 * kUsPerSec)
          .protocol(RunProtocol::kColdStart)
          .sample_every(5 * kUsPerSec,
                        [&sampled](const RunView& view) {
                          const Machine& m = view.engine.machine();
                          CpuMask middle;
                          for (ClusterId c = 0; c < m.num_clusters(); ++c) {
                            if (c != m.fastest_cluster() &&
                                c != m.slowest_cluster()) {
                              middle = middle | m.cluster_mask(c);
                            }
                          }
                          EXPECT_EQ(m.online_mask() & middle, middle);
                          sampled = true;
                        })
          .build()
          .run();
  EXPECT_TRUE(sampled);
  EXPECT_GT(r.app().metrics.heartbeats, 0);
}

TEST(PlatformDiversity, SweepPlatformsAxisExpands) {
  SweepSpec spec;
  spec.platforms({"exynos5422", "sd855"})
      .variants({"Baseline", "HARS-E"});
  const std::vector<SweepCase> cases = spec.expand();
  ASSERT_EQ(cases.size(), 4u);
  EXPECT_EQ(cases[0].label("platform"), "exynos5422");
  EXPECT_EQ(cases[3].label("platform"), "sd855");
  EXPECT_EQ(cases[3].label("variant"), "HARS-E");
}

}  // namespace
}  // namespace hars
