// Cross-module property sweeps and fuzz-style robustness tests.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "apps/data_parallel_app.hpp"
#include "apps/parsec.hpp"
#include "core/hars.hpp"
#include "core/power_profiler.hpp"
#include "core/search.hpp"
#include "exp/experiment.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"
#include "util/rng.hpp"

namespace hars {
namespace {

// ---------------------------------------------------------------------------
// Property: every HARS version on every benchmark delivers most of its
// target and beats the baseline's perf/watt (the paper's core claim).
// ---------------------------------------------------------------------------

using ConvergenceCase = std::tuple<int /*bench*/, int /*version*/>;

class HarsConvergence : public testing::TestWithParam<ConvergenceCase> {};

TEST_P(HarsConvergence, AchievesTargetAndBeatsBaseline) {
  const auto [bench_i, version_i] = GetParam();
  const ParsecBenchmark bench = all_parsec_benchmarks()[static_cast<std::size_t>(bench_i)];
  const char* variant = std::vector<const char*>{
      "HARS-I", "HARS-E", "HARS-EI"}[static_cast<std::size_t>(version_i)];
  const auto run_variant = [bench](const char* name) {
    return ExperimentBuilder()
        .app(bench)
        .variant(name)
        .duration(70 * kUsPerSec)
        .build()
        .run();
  };
  const ExperimentResult hars = run_variant(variant);
  const ExperimentResult base = run_variant("Baseline");
  EXPECT_GT(hars.app().metrics.norm_perf, 0.80)
      << parsec_code(bench) << " " << variant;
  EXPECT_GT(hars.app().metrics.perf_per_watt,
            1.3 * base.app().metrics.perf_per_watt)
      << parsec_code(bench) << " " << variant;
}

INSTANTIATE_TEST_SUITE_P(AllBenchVersions, HarsConvergence,
                         testing::Combine(testing::Range(0, 6),
                                          testing::Range(0, 3)));

// ---------------------------------------------------------------------------
// Property: Algorithm 2's result matches an independent brute-force
// replication of its selection rules over the same candidate set.
// ---------------------------------------------------------------------------

struct BruteForceFixture {
  Machine machine = Machine::exynos5422();
  StateSpace space = StateSpace::from_machine(machine);
  PerfEstimator perf{machine, 1.5};
  PowerEstimator power{profile_power(machine, PowerModel{machine})};
};

SystemState brute_force_next(BruteForceFixture& f, double rate,
                             const SystemState& cur, const PerfTarget& target,
                             const SearchParams& p, int threads) {
  SystemState best = cur;
  double best_perf = -1.0;
  double best_pp = -1.0;
  bool best_sat = false;
  bool set = false;
  auto consider = [&](const SystemState& s) {
    const double perf = f.perf.estimate_rate(s, cur, rate, threads);
    const double power = f.power.estimate(s, threads, f.perf);
    const double pp = power > 0.0 ? normalized_perf(perf, target) / power : 0.0;
    const bool sat = perf >= target.min;
    bool better = false;
    if (!set) {
      better = true;
    } else if (sat != best_sat) {
      better = sat;
    } else if (sat) {
      better = pp > best_pp;
    } else {
      better = perf > best_perf;
    }
    if (better) {
      best = s;
      best_perf = perf;
      best_pp = pp;
      best_sat = sat;
      set = true;
    }
  };
  for (int i = cur.big_cores - p.m; i <= cur.big_cores + p.n; ++i) {
    for (int j = cur.little_cores - p.m; j <= cur.little_cores + p.n; ++j) {
      for (int k = cur.big_freq - p.m; k <= cur.big_freq + p.n; ++k) {
        for (int l = cur.little_freq - p.m; l <= cur.little_freq + p.n; ++l) {
          const SystemState cand{i, j, k, l};
          if (!f.space.valid(cand)) continue;
          if (manhattan_distance(cand, cur) > p.d) continue;
          if (cand == cur) continue;
          consider(cand);
        }
      }
    }
  }
  consider(cur);
  return best;
}

TEST(SearchEquivalence, MatchesBruteForceReplication) {
  BruteForceFixture f;
  Rng rng(2024);
  const PerfTarget target = PerfTarget::around(2.0);
  const SearchParams params{4, 4, 7};
  for (int trial = 0; trial < 50; ++trial) {
    SystemState cur{rng.uniform_int(0, 4), rng.uniform_int(0, 4),
                    rng.uniform_int(0, 8), rng.uniform_int(0, 5)};
    if (!f.space.valid(cur)) continue;
    const double rate = rng.uniform(0.2, 8.0);
    const SearchResult got = get_next_sys_state(rate, cur, target, params,
                                                f.space, f.perf, f.power, 8);
    const SystemState want = brute_force_next(f, rate, cur, target, params, 8);
    EXPECT_EQ(got.state, want)
        << "cur=" << cur.to_string() << " rate=" << rate;
  }
}

// ---------------------------------------------------------------------------
// Fuzz: a hostile manager that applies random (valid) states every tick
// must never violate engine invariants.
// ---------------------------------------------------------------------------

class ChaosManager : public ManagerHook {
 public:
  ChaosManager(SimEngine& engine, AppId app, std::uint64_t seed)
      : engine_(engine), app_(app), rng_(seed) {}

  TimeUs on_tick(TimeUs) override {
    if (rng_.next_double() > 0.10) return rng_.uniform_int(0, 50);
    Machine& m = engine_.machine();
    m.set_freq_level(m.big_cluster(), rng_.uniform_int(-2, 10));
    m.set_freq_level(m.little_cluster(), rng_.uniform_int(-2, 8));
    // Random affinity for every thread, sometimes empty (kernel fallback).
    for (int i = 0; i < engine_.app(app_).thread_count(); ++i) {
      CpuMask mask(rng_.next_u64() & 0xFFULL);
      engine_.set_thread_affinity(app_, i, mask);
    }
    if (rng_.next_double() < 0.3) {
      m.set_online_mask(CpuMask(rng_.next_u64() & 0xFFULL));
    }
    return rng_.uniform_int(0, 2000);
  }

 private:
  SimEngine& engine_;
  AppId app_;
  Rng rng_;
};

TEST(ChaosFuzz, EngineInvariantsHoldUnderRandomControl) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
    auto app = make_parsec_app(ParsecBenchmark::kBodytrack, 8, seed);
    const AppId id = engine.add_app(app.get());
    ChaosManager chaos(engine, id, seed);
    engine.set_manager(&chaos);
    for (int step = 0; step < 40; ++step) {
      engine.run_for(500 * kUsPerMs);
      for (CoreId c = 0; c < engine.machine().num_cores(); ++c) {
        const double busy = engine.core_busy_fraction(c);
        EXPECT_GE(busy, 0.0);
        EXPECT_LE(busy, 1.0 + 1e-9);
      }
      // The chaos manager may have offlined cores *after* this tick's
      // scheduling pass; one quiet tick lets the scheduler migrate (as
      // hotplug does at the next schedule point), after which every
      // runnable thread must sit on an online core.
      engine.clear_manager();
      engine.run_for(engine.tick_us());
      for (const SimThread& t : engine.threads()) {
        if (t.runnable && t.core >= 0) {
          EXPECT_TRUE(engine.machine().is_online(t.core));
        }
      }
      engine.set_manager(&chaos);
      EXPECT_GE(engine.sensor().total_energy_j(), 0.0);
    }
    // The app still makes progress whenever cores are available.
    EXPECT_GT(app->heartbeats().count(), 0);
  }
}

// ---------------------------------------------------------------------------
// Failure injection: an application that stalls (stops emitting
// heartbeats) must not be adapted on stale windows; when it resumes the
// runtime re-engages.
// ---------------------------------------------------------------------------

TEST(HeartbeatStall, ManagerHoldsStateAcrossStall) {
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  DataParallelConfig cfg;
  cfg.threads = 8;
  cfg.speed = SpeedModel{3.0, 2.0};
  // Phased workload with a huge swing: during heavy phases heartbeats
  // nearly stall.
  cfg.workload = {WorkloadShape::kPhased, 4.0, 0.02, 0.9, 30};
  DataParallelApp app("stall", cfg);
  const AppId id = engine.add_app(&app);
  auto manager = attach_hars(engine, id, PerfTarget::around(2.0),
                             HarsVariant::kHarsE);
  engine.run_for(120 * kUsPerSec);
  // No crash, state valid, and the app is still being serviced.
  const StateSpace space = StateSpace::from_machine(engine.machine());
  EXPECT_TRUE(space.valid(manager->current_state()));
  EXPECT_GT(app.heartbeats().count(), 50);
}

}  // namespace
}  // namespace hars
