// End-to-end single-application runs: the orderings the paper's Figures
// 5.1-5.3 depend on must hold on the simulated platform.
#include <gtest/gtest.h>

#include "exp/calibration.hpp"
#include "exp/runner.hpp"
#include "exp/static_optimal.hpp"

namespace hars {
namespace {

SingleRunOptions quick_options(double fraction = 0.5) {
  SingleRunOptions o;
  o.target_fraction = fraction;
  o.duration = 80 * kUsPerSec;
  return o;
}

TEST(Calibration, MaxRatesAreReasonable) {
  for (ParsecBenchmark b : all_parsec_benchmarks()) {
    const Calibration cal = calibrate_benchmark(b);
    EXPECT_GT(cal.max_rate_hps, 0.5) << parsec_name(b);
    EXPECT_LT(cal.max_rate_hps, 50.0) << parsec_name(b);
    EXPECT_NEAR(cal.default_target.avg(), 0.5 * cal.max_rate_hps, 1e-9);
    EXPECT_NEAR(cal.high_target.avg(), 0.75 * cal.max_rate_hps, 1e-9);
  }
}

TEST(Calibration, Memoized) {
  const Calibration a = calibrate_benchmark(ParsecBenchmark::kSwaptions);
  const Calibration b = calibrate_benchmark(ParsecBenchmark::kSwaptions);
  EXPECT_EQ(a.max_rate_hps, b.max_rate_hps);
}

TEST(SingleApp, BaselineOverperformsAndBurnsPower) {
  const SingleRunResult r =
      run_single(ParsecBenchmark::kSwaptions, SingleVersion::kBaseline,
                 quick_options());
  EXPECT_GT(r.metrics.avg_rate_hps, r.target.max);  // Overperforms.
  EXPECT_NEAR(r.metrics.norm_perf, 1.0, 0.05);
  EXPECT_GT(r.metrics.avg_power_w, 4.0);  // Near-max machine power.
}

TEST(SingleApp, HarsEBeatsBaselinePerfPerWatt) {
  const SingleRunResult base =
      run_single(ParsecBenchmark::kSwaptions, SingleVersion::kBaseline,
                 quick_options());
  const SingleRunResult hars =
      run_single(ParsecBenchmark::kSwaptions, SingleVersion::kHarsE,
                 quick_options());
  EXPECT_GT(hars.metrics.perf_per_watt, 1.5 * base.metrics.perf_per_watt);
  // And it still (mostly) delivers the target.
  EXPECT_GT(hars.metrics.norm_perf, 0.85);
}

TEST(SingleApp, HarsEAtLeastAsGoodAsHarsI) {
  const SingleRunResult hi = run_single(
      ParsecBenchmark::kBodytrack, SingleVersion::kHarsI, quick_options());
  const SingleRunResult he = run_single(
      ParsecBenchmark::kBodytrack, SingleVersion::kHarsE, quick_options());
  EXPECT_GT(he.metrics.perf_per_watt, 0.9 * hi.metrics.perf_per_watt);
}

TEST(SingleApp, StaticOptimalBeatsBaseline) {
  const SingleRunResult base =
      run_single(ParsecBenchmark::kBlackscholes, SingleVersion::kBaseline,
                 quick_options());
  const SingleRunResult so =
      run_single(ParsecBenchmark::kBlackscholes, SingleVersion::kStaticOptimal,
                 quick_options());
  EXPECT_GT(so.metrics.perf_per_watt, 1.5 * base.metrics.perf_per_watt);
}

TEST(SingleApp, FerretInterleavedBeatsChunk) {
  // The ferret story (§5.1.2): the chunk scheduler maps pipeline stages
  // onto one cluster and bottlenecks; interleaving fixes it.
  const SingleRunResult chunk = run_single(
      ParsecBenchmark::kFerret, SingleVersion::kHarsE, quick_options());
  const SingleRunResult inter = run_single(
      ParsecBenchmark::kFerret, SingleVersion::kHarsEI, quick_options());
  EXPECT_GE(inter.metrics.perf_per_watt, 0.95 * chunk.metrics.perf_per_watt);
  EXPECT_GE(inter.metrics.norm_perf + 0.05, chunk.metrics.norm_perf);
}

TEST(SingleApp, HarsTracksHighTargetToo) {
  const SingleRunResult r = run_single(
      ParsecBenchmark::kSwaptions, SingleVersion::kHarsE, quick_options(0.75));
  EXPECT_GT(r.metrics.norm_perf, 0.85);
}

TEST(SingleApp, ManagerOverheadGrowsWithDistance) {
  SingleRunOptions small = quick_options();
  small.duration = 40 * kUsPerSec;
  small.override_d = 1;
  const SingleRunResult d1 = run_single(ParsecBenchmark::kSwaptions,
                                        SingleVersion::kHarsEI, small);
  small.override_d = 9;
  const SingleRunResult d9 = run_single(ParsecBenchmark::kSwaptions,
                                        SingleVersion::kHarsEI, small);
  EXPECT_GE(d9.metrics.manager_cpu_pct, d1.metrics.manager_cpu_pct);
  EXPECT_LT(d9.metrics.manager_cpu_pct, 8.0);  // Paper: under ~6%.
}

TEST(StaticOptimal, ChoosesTargetSatisfyingState) {
  const Calibration cal = calibrate_benchmark(ParsecBenchmark::kSwaptions);
  const StaticOptimalResult so =
      find_static_optimal(ParsecBenchmark::kSwaptions, cal.default_target);
  EXPECT_TRUE(so.satisfies_target);
  EXPECT_GT(so.measured_pp, 0.0);
  // Memoization returns the identical state.
  const StaticOptimalResult again =
      find_static_optimal(ParsecBenchmark::kSwaptions, cal.default_target);
  EXPECT_EQ(so.state, again.state);
}

TEST(StaticOptimal, UsesFewerResourcesThanMax) {
  const Calibration cal = calibrate_benchmark(ParsecBenchmark::kSwaptions);
  const StaticOptimalResult so =
      find_static_optimal(ParsecBenchmark::kSwaptions, cal.default_target);
  const SystemState max_state =
      StateSpace::from_machine(Machine::exynos5422()).max_state();
  EXPECT_GT(manhattan_distance(so.state, max_state), 0);
}

}  // namespace
}  // namespace hars
