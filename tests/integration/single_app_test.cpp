// End-to-end single-application runs: the orderings the paper's Figures
// 5.1-5.3 depend on must hold on the simulated platform.
#include <gtest/gtest.h>

#include "exp/calibration.hpp"
#include "exp/experiment.hpp"
#include "exp/static_optimal.hpp"

namespace hars {
namespace {

ExperimentBuilder quick(ParsecBenchmark bench, const char* variant,
                        double fraction = 0.5) {
  ExperimentBuilder builder;
  builder.app(bench)
      .variant(variant)
      .target_fraction(fraction)
      .duration(80 * kUsPerSec);
  return builder;
}

TEST(Calibration, MaxRatesAreReasonable) {
  for (ParsecBenchmark b : all_parsec_benchmarks()) {
    const Calibration cal = calibrate_benchmark(b);
    EXPECT_GT(cal.max_rate_hps, 0.5) << parsec_name(b);
    EXPECT_LT(cal.max_rate_hps, 50.0) << parsec_name(b);
    EXPECT_NEAR(cal.default_target.avg(), 0.5 * cal.max_rate_hps, 1e-9);
    EXPECT_NEAR(cal.high_target.avg(), 0.75 * cal.max_rate_hps, 1e-9);
  }
}

TEST(Calibration, Memoized) {
  const Calibration a = calibrate_benchmark(ParsecBenchmark::kSwaptions);
  const Calibration b = calibrate_benchmark(ParsecBenchmark::kSwaptions);
  EXPECT_EQ(a.max_rate_hps, b.max_rate_hps);
}

TEST(SingleApp, BaselineOverperformsAndBurnsPower) {
  const ExperimentResult r =
      quick(ParsecBenchmark::kSwaptions, "Baseline").build().run();
  EXPECT_GT(r.app().metrics.avg_rate_hps, r.app().target.max);  // Overperforms.
  EXPECT_NEAR(r.app().metrics.norm_perf, 1.0, 0.05);
  EXPECT_GT(r.app().metrics.avg_power_w, 4.0);  // Near-max machine power.
}

TEST(SingleApp, HarsEBeatsBaselinePerfPerWatt) {
  const ExperimentResult base =
      quick(ParsecBenchmark::kSwaptions, "Baseline").build().run();
  const ExperimentResult hars =
      quick(ParsecBenchmark::kSwaptions, "HARS-E").build().run();
  EXPECT_GT(hars.app().metrics.perf_per_watt,
            1.5 * base.app().metrics.perf_per_watt);
  // And it still (mostly) delivers the target.
  EXPECT_GT(hars.app().metrics.norm_perf, 0.85);
}

TEST(SingleApp, HarsEAtLeastAsGoodAsHarsI) {
  const ExperimentResult hi =
      quick(ParsecBenchmark::kBodytrack, "HARS-I").build().run();
  const ExperimentResult he =
      quick(ParsecBenchmark::kBodytrack, "HARS-E").build().run();
  EXPECT_GT(he.app().metrics.perf_per_watt,
            0.9 * hi.app().metrics.perf_per_watt);
}

TEST(SingleApp, StaticOptimalBeatsBaseline) {
  const ExperimentResult base =
      quick(ParsecBenchmark::kBlackscholes, "Baseline").build().run();
  const ExperimentResult so =
      quick(ParsecBenchmark::kBlackscholes, "SO").build().run();
  EXPECT_GT(so.app().metrics.perf_per_watt,
            1.5 * base.app().metrics.perf_per_watt);
  EXPECT_TRUE(so.static_state.has_value());
}

TEST(SingleApp, FerretInterleavedBeatsChunk) {
  // The ferret story (§5.1.2): the chunk scheduler maps pipeline stages
  // onto one cluster and bottlenecks; interleaving fixes it.
  const ExperimentResult chunk =
      quick(ParsecBenchmark::kFerret, "HARS-E").build().run();
  const ExperimentResult inter =
      quick(ParsecBenchmark::kFerret, "HARS-EI").build().run();
  EXPECT_GE(inter.app().metrics.perf_per_watt,
            0.95 * chunk.app().metrics.perf_per_watt);
  EXPECT_GE(inter.app().metrics.norm_perf + 0.05, chunk.app().metrics.norm_perf);
}

TEST(SingleApp, HarsTracksHighTargetToo) {
  const ExperimentResult r =
      quick(ParsecBenchmark::kSwaptions, "HARS-E", 0.75).build().run();
  EXPECT_GT(r.app().metrics.norm_perf, 0.85);
}

TEST(SingleApp, ManagerOverheadGrowsWithDistance) {
  const auto run_d = [](int d) {
    return quick(ParsecBenchmark::kSwaptions, "HARS-EI")
        .duration(40 * kUsPerSec)
        .search_distance(d)
        .build()
        .run();
  };
  const ExperimentResult d1 = run_d(1);
  const ExperimentResult d9 = run_d(9);
  EXPECT_GE(d9.app().metrics.manager_cpu_pct, d1.app().metrics.manager_cpu_pct);
  EXPECT_LT(d9.app().metrics.manager_cpu_pct, 8.0);  // Paper: under ~6%.
}

TEST(StaticOptimal, ChoosesTargetSatisfyingState) {
  const Calibration cal = calibrate_benchmark(ParsecBenchmark::kSwaptions);
  const StaticOptimalResult so =
      find_static_optimal(ParsecBenchmark::kSwaptions, cal.default_target);
  EXPECT_TRUE(so.satisfies_target);
  EXPECT_GT(so.measured_pp, 0.0);
  // Memoization returns the identical state.
  const StaticOptimalResult again =
      find_static_optimal(ParsecBenchmark::kSwaptions, cal.default_target);
  EXPECT_EQ(so.state, again.state);
}

TEST(StaticOptimal, UsesFewerResourcesThanMax) {
  const Calibration cal = calibrate_benchmark(ParsecBenchmark::kSwaptions);
  const StaticOptimalResult so =
      find_static_optimal(ParsecBenchmark::kSwaptions, cal.default_target);
  const SystemState max_state =
      StateSpace::from_machine(Machine::exynos5422()).max_state();
  EXPECT_GT(manhattan_distance(so.state, max_state), 0);
}

}  // namespace
}  // namespace hars
