#include "exp/trace_analysis.hpp"

#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace hars {
namespace {

TracePoint point(std::int64_t idx, double hps, int bc = 2, int lc = 2,
                 double bf = 1.0, double lf = 1.0) {
  return TracePoint{idx, hps, bc, lc, bf, lf};
}

TEST(TraceAnalysis, EmptyTrace) {
  const TraceStats s = analyze_trace({}, PerfTarget::around(2.0));
  EXPECT_EQ(s.settle_index, -1);
  EXPECT_EQ(s.in_window_fraction, 0.0);
}

TEST(TraceAnalysis, ImmediateSettle) {
  std::vector<TracePoint> trace;
  for (int i = 0; i < 30; ++i) trace.push_back(point(i, 2.0));
  const TraceStats s = analyze_trace(trace, PerfTarget::around(2.0), 10);
  EXPECT_EQ(s.settle_index, 0);
  EXPECT_DOUBLE_EQ(s.in_window_fraction, 1.0);
  EXPECT_DOUBLE_EQ(s.oscillations_per_100, 0.0);
}

TEST(TraceAnalysis, SettleAfterTransient) {
  std::vector<TracePoint> trace;
  for (int i = 0; i < 20; ++i) trace.push_back(point(i, 5.0));  // Overshoot.
  for (int i = 20; i < 60; ++i) trace.push_back(point(i, 2.0));
  const TraceStats s = analyze_trace(trace, PerfTarget::around(2.0), 10);
  EXPECT_EQ(s.settle_index, 20);
  EXPECT_DOUBLE_EQ(s.in_window_fraction, 1.0);  // After settling.
}

TEST(TraceAnalysis, NeverSettles) {
  std::vector<TracePoint> trace;
  for (int i = 0; i < 40; ++i) {
    trace.push_back(point(i, i % 2 == 0 ? 1.0 : 3.0));  // Always outside.
  }
  const TraceStats s = analyze_trace(trace, PerfTarget::around(2.0), 5);
  EXPECT_EQ(s.settle_index, -1);
  EXPECT_DOUBLE_EQ(s.in_window_fraction, 0.0);
}

TEST(TraceAnalysis, OscillationCounting) {
  std::vector<TracePoint> trace;
  // Core count flips up and down every point: direction changes each step
  // after the first.
  for (int i = 0; i < 20; ++i) {
    trace.push_back(point(i, 2.0, i % 2 == 0 ? 2 : 3));
  }
  const TraceStats s = analyze_trace(trace, PerfTarget::around(2.0));
  EXPECT_GT(s.oscillations_per_100, 80.0);

  // Monotone descent: no direction change.
  std::vector<TracePoint> mono;
  for (int i = 0; i < 20; ++i) mono.push_back(point(i, 2.0, 4 - i / 6));
  EXPECT_DOUBLE_EQ(analyze_trace(mono, PerfTarget::around(2.0)).oscillations_per_100,
                   0.0);
}

TEST(TraceAnalysis, MeansComputed) {
  std::vector<TracePoint> trace{point(0, 2.0, 4, 0, 1.6, 0.8),
                                point(1, 2.0, 0, 4, 0.8, 1.2)};
  const TraceStats s = analyze_trace(trace, PerfTarget::around(2.0));
  EXPECT_DOUBLE_EQ(s.mean_big_cores, 2.0);
  EXPECT_DOUBLE_EQ(s.mean_little_cores, 2.0);
  EXPECT_DOUBLE_EQ(s.mean_big_freq, 1.2);
  EXPECT_DOUBLE_EQ(s.mean_little_freq, 1.0);
}

ExperimentResult run_variant(ParsecBenchmark bench, const char* variant) {
  return ExperimentBuilder()
      .app(bench)
      .variant(variant)
      .duration(90 * kUsPerSec)
      .build()
      .run();
}

TEST(TraceAnalysis, RealHarsTraceSettles) {
  const ExperimentResult r = run_variant(ParsecBenchmark::kSwaptions, "HARS-E");
  const TraceStats s = analyze_trace(r.app().trace, r.app().target, 5);
  EXPECT_GE(s.settle_index, 0);        // It does settle...
  EXPECT_GT(s.in_window_fraction, 0.6);  // ...and mostly stays there.
}

TEST(TraceAnalysis, HarsIOscillatesLessThanHarsEPerPoint) {
  // §3.1.3: d = 1 "may reduce the system oscillation".
  const ExperimentResult hi =
      run_variant(ParsecBenchmark::kFluidanimate, "HARS-I");
  const ExperimentResult he =
      run_variant(ParsecBenchmark::kFluidanimate, "HARS-E");
  const TraceStats si = analyze_trace(hi.app().trace, hi.app().target);
  const TraceStats se = analyze_trace(he.app().trace, he.app().target);
  EXPECT_LE(si.oscillations_per_100, se.oscillations_per_100 + 10.0);
}

}  // namespace
}  // namespace hars
