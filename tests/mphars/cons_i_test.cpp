#include "mphars/cons_i.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "apps/data_parallel_app.hpp"
#include "sched/gts.hpp"

namespace hars {
namespace {

TEST(ConsPerfScore, Formula) {
  const Machine m = Machine::exynos5422();
  // perfScore = CB * r0 * fB/f0 + CL * fL/f0.
  const SystemState s{4, 4, 8, 5};  // 1.6 / 1.3 GHz.
  EXPECT_NEAR(cons_perf_score(m, s, 1.5, 1.0), 4 * 1.5 * 1.6 + 4 * 1.3, 1e-9);
  const SystemState small{1, 1, 0, 0};  // 0.8 / 0.8.
  EXPECT_NEAR(cons_perf_score(m, small, 1.5, 1.0), 1.2 + 0.8, 1e-9);
}

struct ConsFixture {
  SimEngine engine{Machine::exynos5422(), std::make_unique<GtsScheduler>()};
  std::vector<std::unique_ptr<DataParallelApp>> apps;
  std::vector<AppId> ids;

  void add_app(double work) {
    DataParallelConfig cfg;
    cfg.threads = 8;
    cfg.speed = SpeedModel{3.0, 2.0};
    cfg.workload = {WorkloadShape::kStable, work, 0.0, 0.0, 1};
    cfg.seed = apps.size() + 1;
    apps.push_back(std::make_unique<DataParallelApp>("a", cfg));
    ids.push_back(engine.add_app(apps.back().get()));
  }
};

TEST(ConsIManager, StartsAtMaxState) {
  ConsFixture f;
  ConsIManager cons(f.engine);
  EXPECT_EQ(cons.global_state(),
            StateSpace::from_machine(f.engine.machine()).max_state());
  EXPECT_EQ(f.engine.machine().online_mask().count(), 8);
}

TEST(ConsIManager, IncreasesWhenUnderperforming) {
  ConsFixture f;
  f.add_app(4.0);
  ConsIManager cons(f.engine);
  cons.register_app(f.ids[0], ConsIAppConfig{PerfTarget::around(100.0), 5});
  f.engine.set_manager(&cons);
  f.engine.run_for(30 * kUsPerSec);
  // Cannot reach 100 hb/s: stays at (or returns to) the max state.
  EXPECT_EQ(cons.global_state(),
            StateSpace::from_machine(f.engine.machine()).max_state());
}

TEST(ConsIManager, DecreasesWhenAllOverperform) {
  ConsFixture f;
  f.add_app(4.0);
  ConsIManager cons(f.engine);
  cons.register_app(f.ids[0], ConsIAppConfig{PerfTarget::around(2.0), 5});
  f.engine.set_manager(&cons);
  f.engine.run_for(90 * kUsPerSec);
  const SystemState s = cons.global_state();
  const SystemState max_state =
      StateSpace::from_machine(f.engine.machine()).max_state();
  EXPECT_NE(s, max_state);
  EXPECT_LT(cons_perf_score(f.engine.machine(), s, 1.5, 1.0),
            cons_perf_score(f.engine.machine(), max_state, 1.5, 1.0));
  // And it should be roughly within the target window by then.
  EXPECT_NEAR(f.apps[0]->heartbeats().rate(), 2.0, 1.0);
}

TEST(ConsIManager, NoDecreaseWhileAnotherAppMerelyAchieves) {
  // The paper's case-4 failure mode: one app overperforms, but the other
  // only achieves -> conservative model refuses to decrease.
  ConsFixture f;
  f.add_app(4.0);   // Will overperform its easy target.
  f.add_app(4.0);   // Target set exactly at its achieved rate.
  ConsIManager cons(f.engine);
  f.engine.set_manager(&cons);
  // First, find the shared-state rate with a dry run.
  f.engine.run_for(10 * kUsPerSec);
  const double shared_rate = f.apps[1]->heartbeats().rate();
  cons.register_app(f.ids[0], ConsIAppConfig{PerfTarget::around(shared_rate / 4.0), 5});
  cons.register_app(f.ids[1], ConsIAppConfig{PerfTarget::around(shared_rate, 0.30), 5});
  const SystemState before = cons.global_state();
  f.engine.run_for(40 * kUsPerSec);
  EXPECT_EQ(cons.global_state(), before);  // KEEP throughout.
}

TEST(ConsIManager, TraceRecorded) {
  ConsFixture f;
  f.add_app(4.0);
  ConsIManager cons(f.engine);
  cons.register_app(f.ids[0], ConsIAppConfig{PerfTarget::around(2.0), 5});
  f.engine.set_manager(&cons);
  f.engine.run_for(20 * kUsPerSec);
  EXPECT_FALSE(cons.trace(f.ids[0]).empty());
  EXPECT_TRUE(cons.trace(999).empty());
}

TEST(ConsIManager, HotplugReflectsGlobalState) {
  ConsFixture f;
  f.add_app(4.0);
  ConsIManager cons(f.engine);
  cons.register_app(f.ids[0], ConsIAppConfig{PerfTarget::around(1.0), 5});
  f.engine.set_manager(&cons);
  f.engine.run_for(120 * kUsPerSec);
  const SystemState s = cons.global_state();
  EXPECT_EQ(f.engine.machine().online_mask().count(),
            s.big_cores + s.little_cores);
}

}  // namespace
}  // namespace hars
