#include "mphars/core_allocator.hpp"

#include <gtest/gtest.h>

#include "mphars/registry.hpp"

namespace hars {
namespace {

constexpr int kBigStart = 4;

class CoreAllocatorTest : public testing::Test {
 protected:
  AppRegistry registry_{4, 4};
};

TEST_F(CoreAllocatorTest, FirstAllocationTakesLowestFreeSlots) {
  AppNode& a = registry_.add(0);
  a.nprocs_b = 2;
  a.nprocs_l = 1;
  const CpuMask mask = allocate_core_set(a, registry_.big_cluster(),
                                         registry_.little_cluster(), kBigStart);
  EXPECT_EQ(mask, CpuMask::single(0) | CpuMask::range(4, 2));
  EXPECT_EQ(a.used_big_count(), 2);
  EXPECT_EQ(a.used_little_count(), 1);
  EXPECT_EQ(registry_.big_cluster().free_count(), 2);
  EXPECT_EQ(registry_.little_cluster().free_count(), 3);
}

TEST_F(CoreAllocatorTest, SecondAppCannotTakeOwnedCores) {
  AppNode& a = registry_.add(0);
  a.nprocs_b = 2;
  allocate_core_set(a, registry_.big_cluster(), registry_.little_cluster(),
                    kBigStart);
  AppNode& b = registry_.add(1);
  b.nprocs_b = 2;
  const CpuMask mask_b = allocate_core_set(b, registry_.big_cluster(),
                                           registry_.little_cluster(), kBigStart);
  // A owns big slots 0-1 (cpus 4-5); B must get slots 2-3 (cpus 6-7).
  EXPECT_EQ(mask_b, CpuMask::range(6, 2));
  EXPECT_EQ((owned_big_mask(a, kBigStart) & owned_big_mask(b, kBigStart)).count(), 0);
}

TEST_F(CoreAllocatorTest, GrowKeepsExistingCores) {
  AppNode& a = registry_.add(0);
  a.nprocs_b = 1;
  allocate_core_set(a, registry_.big_cluster(), registry_.little_cluster(),
                    kBigStart);
  EXPECT_TRUE(owned_big_mask(a, kBigStart).test(4));
  a.nprocs_b = 3;
  const CpuMask mask = allocate_core_set(a, registry_.big_cluster(),
                                         registry_.little_cluster(), kBigStart);
  EXPECT_TRUE(mask.test(4));  // The old core is retained (no migration).
  EXPECT_EQ(mask.count(), 3);
}

TEST_F(CoreAllocatorTest, ShrinkReleasesToFreePool) {
  AppNode& a = registry_.add(0);
  a.nprocs_b = 4;
  allocate_core_set(a, registry_.big_cluster(), registry_.little_cluster(),
                    kBigStart);
  EXPECT_EQ(registry_.big_cluster().free_count(), 0);
  a.dec_big_core_cnt = 3;
  a.nprocs_b = 1;
  const CpuMask mask = allocate_core_set(a, registry_.big_cluster(),
                                         registry_.little_cluster(), kBigStart);
  EXPECT_EQ(mask.count(), 1);
  EXPECT_EQ(a.used_big_count(), 1);
  EXPECT_EQ(registry_.big_cluster().free_count(), 3);
}

TEST_F(CoreAllocatorTest, PaperExampleFreeCoresOnly) {
  // §4.1.3: A owns bigcore0-1; B (on littlecore0-1) asks for big cores and
  // must receive bigcore2-3 — the free ones.
  AppNode& a = registry_.add(0);
  a.nprocs_b = 2;
  allocate_core_set(a, registry_.big_cluster(), registry_.little_cluster(),
                    kBigStart);
  AppNode& b = registry_.add(1);
  b.nprocs_l = 2;
  allocate_core_set(b, registry_.big_cluster(), registry_.little_cluster(),
                    kBigStart);
  b.nprocs_b = 2;
  const CpuMask mask = allocate_core_set(b, registry_.big_cluster(),
                                         registry_.little_cluster(), kBigStart);
  EXPECT_TRUE(mask.test(6));
  EXPECT_TRUE(mask.test(7));
  EXPECT_FALSE(mask.test(4));
  EXPECT_FALSE(mask.test(5));
}

TEST_F(CoreAllocatorTest, ComesUpShortWhenPoolExhausted) {
  AppNode& a = registry_.add(0);
  a.nprocs_b = 3;
  allocate_core_set(a, registry_.big_cluster(), registry_.little_cluster(),
                    kBigStart);
  AppNode& b = registry_.add(1);
  b.nprocs_b = 3;  // Only 1 free remains.
  const CpuMask mask = allocate_core_set(b, registry_.big_cluster(),
                                         registry_.little_cluster(), kBigStart);
  EXPECT_EQ(mask.count(), 1);
  EXPECT_EQ(b.used_big_count(), 1);
}

TEST_F(CoreAllocatorTest, BookkeepingInvariantNoSlotBothFreeAndUsed) {
  AppNode& a = registry_.add(0);
  AppNode& b = registry_.add(1);
  // A sequence of grows and shrinks.
  const int seq_a[] = {2, 4, 1, 3, 0, 2};
  const int seq_b[] = {1, 0, 3, 1, 4, 2};
  for (int step = 0; step < 6; ++step) {
    for (auto [node, want] : {std::pair{&a, seq_a[step]}, {&b, seq_b[step]}}) {
      node->dec_big_core_cnt = std::max(0, node->used_big_count() - want);
      node->nprocs_b = want;
      allocate_core_set(*node, registry_.big_cluster(),
                        registry_.little_cluster(), kBigStart);
    }
    // Every slot: free XOR owned-by-exactly-one.
    for (int slot = 0; slot < 4; ++slot) {
      const int owners = (a.use_b_core[static_cast<std::size_t>(slot)] == kUse) +
                         (b.use_b_core[static_cast<std::size_t>(slot)] == kUse);
      const bool free_slot =
          registry_.big_cluster().free_core[static_cast<std::size_t>(slot)] == kFree;
      EXPECT_EQ(owners + (free_slot ? 1 : 0), 1)
          << "step " << step << " slot " << slot;
    }
  }
}

TEST_F(CoreAllocatorTest, ZeroRequestReturnsEmptyMask) {
  AppNode& a = registry_.add(0);
  a.nprocs_b = 0;
  a.nprocs_l = 0;
  EXPECT_TRUE(allocate_core_set(a, registry_.big_cluster(),
                                registry_.little_cluster(), kBigStart)
                  .empty());
}

TEST(OwnedMasks, ReflectUseArrays) {
  AppRegistry registry(4, 4);
  AppNode& a = registry.add(0);
  a.use_b_core[1] = kUse;
  a.use_b_core[3] = kUse;
  a.use_l_core[0] = kUse;
  EXPECT_EQ(owned_big_mask(a, 4), CpuMask::single(5) | CpuMask::single(7));
  EXPECT_EQ(owned_little_mask(a), CpuMask::single(0));
}

}  // namespace
}  // namespace hars
