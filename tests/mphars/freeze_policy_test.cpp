#include "mphars/freeze_policy.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace hars {
namespace {

TEST(Classify, Windows) {
  EXPECT_EQ(classify(0.5, 1.0, 2.0), PerfStatus::kUnderperf);
  EXPECT_EQ(classify(1.0, 1.0, 2.0), PerfStatus::kAchieve);
  EXPECT_EQ(classify(1.5, 1.0, 2.0), PerfStatus::kAchieve);
  EXPECT_EQ(classify(2.0, 1.0, 2.0), PerfStatus::kAchieve);
  EXPECT_EQ(classify(2.5, 1.0, 2.0), PerfStatus::kOverperf);
}

TEST(Names, AllEnumeratorsNamed) {
  EXPECT_STREQ(perf_status_name(PerfStatus::kUnderperf), "Underperf");
  EXPECT_STREQ(perf_status_name(PerfStatus::kAchieve), "Achieve");
  EXPECT_STREQ(perf_status_name(PerfStatus::kOverperf), "Overperf");
  EXPECT_STREQ(state_decision_name(StateDecision::kInc), "INC");
  EXPECT_STREQ(state_decision_name(StateDecision::kKeep), "KEEP");
  EXPECT_STREQ(state_decision_name(StateDecision::kDec), "DEC");
  EXPECT_STREQ(freeze_decision_name(FreezeDecision::kFreeze), "FREEZE");
  EXPECT_STREQ(freeze_decision_name(FreezeDecision::kUnfreeze), "UNFREEZE");
  EXPECT_STREQ(freeze_decision_name(FreezeDecision::kKeep), "KEEP");
}

// Table 4.3, all 18 rows, verbatim from the thesis.
struct Row {
  PerfStatus app;
  PerfStatus others;
  bool frozen;
  StateDecision state;
  FreezeDecision freeze;
};

const Row kTable43[] = {
    // AppInPeriod = Underperf.
    {PerfStatus::kUnderperf, PerfStatus::kUnderperf, true, StateDecision::kInc, FreezeDecision::kUnfreeze},
    {PerfStatus::kUnderperf, PerfStatus::kUnderperf, false, StateDecision::kInc, FreezeDecision::kKeep},
    {PerfStatus::kUnderperf, PerfStatus::kAchieve, true, StateDecision::kInc, FreezeDecision::kUnfreeze},
    {PerfStatus::kUnderperf, PerfStatus::kAchieve, false, StateDecision::kInc, FreezeDecision::kKeep},
    {PerfStatus::kUnderperf, PerfStatus::kOverperf, true, StateDecision::kInc, FreezeDecision::kUnfreeze},
    {PerfStatus::kUnderperf, PerfStatus::kOverperf, false, StateDecision::kInc, FreezeDecision::kKeep},
    // AppInPeriod = Achieve.
    {PerfStatus::kAchieve, PerfStatus::kUnderperf, true, StateDecision::kKeep, FreezeDecision::kKeep},
    {PerfStatus::kAchieve, PerfStatus::kUnderperf, false, StateDecision::kKeep, FreezeDecision::kKeep},
    {PerfStatus::kAchieve, PerfStatus::kAchieve, true, StateDecision::kKeep, FreezeDecision::kKeep},
    {PerfStatus::kAchieve, PerfStatus::kAchieve, false, StateDecision::kKeep, FreezeDecision::kKeep},
    {PerfStatus::kAchieve, PerfStatus::kOverperf, true, StateDecision::kKeep, FreezeDecision::kKeep},
    {PerfStatus::kAchieve, PerfStatus::kOverperf, false, StateDecision::kKeep, FreezeDecision::kKeep},
    // AppInPeriod = Overperf. NOTE: the printed thesis rows
    // (Overperf, Achieve, FREEZE) and (Overperf, Overperf, FREEZE) say INC;
    // we implement KEEP (documented deviation, see freeze_policy.cpp and
    // DESIGN.md §6) because INC immediately undoes the freeze-arming
    // decrease and the model oscillates forever.
    {PerfStatus::kOverperf, PerfStatus::kUnderperf, true, StateDecision::kInc, FreezeDecision::kKeep},
    {PerfStatus::kOverperf, PerfStatus::kUnderperf, false, StateDecision::kKeep, FreezeDecision::kKeep},
    {PerfStatus::kOverperf, PerfStatus::kAchieve, true, StateDecision::kKeep, FreezeDecision::kKeep},
    {PerfStatus::kOverperf, PerfStatus::kAchieve, false, StateDecision::kKeep, FreezeDecision::kKeep},
    {PerfStatus::kOverperf, PerfStatus::kOverperf, true, StateDecision::kKeep, FreezeDecision::kKeep},
    {PerfStatus::kOverperf, PerfStatus::kOverperf, false, StateDecision::kDec, FreezeDecision::kFreeze},
};

class Table43 : public testing::TestWithParam<int> {};

TEST_P(Table43, RowMatchesThesis) {
  const Row& row = kTable43[GetParam()];
  const InterferenceDecision d =
      decide_interference(row.app, row.others, row.frozen);
  EXPECT_EQ(d.state, row.state)
      << perf_status_name(row.app) << " / " << perf_status_name(row.others)
      << " / " << (row.frozen ? "FREEZE" : "UNFREEZE");
  EXPECT_EQ(d.freeze, row.freeze);
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table43, testing::Range(0, 18));

TEST(Table43Invariants, OnlyOverperfAllOverperfUnfrozenDecreases) {
  for (PerfStatus app : {PerfStatus::kUnderperf, PerfStatus::kAchieve,
                         PerfStatus::kOverperf}) {
    for (PerfStatus others : {PerfStatus::kUnderperf, PerfStatus::kAchieve,
                              PerfStatus::kOverperf}) {
      for (bool frozen : {false, true}) {
        const InterferenceDecision d = decide_interference(app, others, frozen);
        if (d.state == StateDecision::kDec) {
          EXPECT_EQ(app, PerfStatus::kOverperf);
          EXPECT_EQ(others, PerfStatus::kOverperf);
          EXPECT_FALSE(frozen);
        }
        if (d.freeze == FreezeDecision::kFreeze) {
          EXPECT_EQ(d.state, StateDecision::kDec);  // Freeze only on decrease.
        }
        if (d.freeze == FreezeDecision::kUnfreeze) {
          EXPECT_EQ(app, PerfStatus::kUnderperf);  // Only INC-for-need unfreezes.
          EXPECT_TRUE(frozen);
        }
      }
    }
  }
}

TEST(Table43Invariants, UnderperformerAlwaysGetsInc) {
  for (PerfStatus others : {PerfStatus::kUnderperf, PerfStatus::kAchieve,
                            PerfStatus::kOverperf}) {
    for (bool frozen : {false, true}) {
      EXPECT_EQ(decide_interference(PerfStatus::kUnderperf, others, frozen).state,
                StateDecision::kInc);
    }
  }
}

}  // namespace
}  // namespace hars
