#include "mphars/mphars_manager.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "apps/data_parallel_app.hpp"
#include "core/power_profiler.hpp"
#include "sched/gts.hpp"

namespace hars {
namespace {

struct MpFixture {
  SimEngine engine{Machine::exynos5422(), std::make_unique<GtsScheduler>()};
  std::vector<std::unique_ptr<DataParallelApp>> apps;
  std::vector<AppId> ids;
  std::unique_ptr<MpHarsManager> manager;

  void add_app(double work) {
    DataParallelConfig cfg;
    cfg.threads = 8;
    cfg.speed = SpeedModel{3.0, 2.0};
    cfg.workload = {WorkloadShape::kStable, work, 0.0, 0.0, 1};
    cfg.seed = apps.size() + 1;
    apps.push_back(std::make_unique<DataParallelApp>("a", cfg));
    ids.push_back(engine.add_app(apps.back().get()));
  }

  void make_manager(SearchPolicy policy = SearchPolicy::kExhaustive) {
    MpHarsConfig config;
    config.policy = policy;
    manager = std::make_unique<MpHarsManager>(
        engine, profile_power(engine.machine(), engine.power_model()), config);
    engine.set_manager(manager.get());
  }
};

// Regression: non-positive target windows are rejected at registration
// and retargeting (they would zero every normalized-perf score).
TEST(MpHarsManager, RejectsNonPositiveTargets) {
  MpFixture f;
  f.add_app(4.0);
  f.make_manager();
  EXPECT_THROW(f.manager->register_app(
                   f.ids[0], MpHarsAppConfig{PerfTarget{-2.0, 1.0}, 5}),
               std::invalid_argument);
  f.manager->register_app(f.ids[0], MpHarsAppConfig{PerfTarget::around(2.0), 5});
  EXPECT_THROW(f.manager->set_app_target(f.ids[0], PerfTarget{0.0, 0.0}),
               std::invalid_argument);
}

TEST(MpHarsManager, InitialAllocationIsEvenAndDisjoint) {
  MpFixture f;
  f.add_app(4.0);
  f.add_app(4.0);
  f.make_manager();
  f.manager->register_app(f.ids[0], MpHarsAppConfig{PerfTarget::around(2.0), 5});
  f.manager->register_app(f.ids[1], MpHarsAppConfig{PerfTarget::around(2.0), 5});

  const AppNode* a = f.manager->registry().find(f.ids[0]);
  const AppNode* b = f.manager->registry().find(f.ids[1]);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->nprocs_b, 2);
  EXPECT_EQ(a->nprocs_l, 2);
  EXPECT_EQ(b->nprocs_b, 2);
  EXPECT_EQ(b->nprocs_l, 2);
  EXPECT_EQ((owned_big_mask(*a, 4) & owned_big_mask(*b, 4)).count(), 0);
  EXPECT_EQ((owned_little_mask(*a) & owned_little_mask(*b)).count(), 0);
}

TEST(MpHarsManager, CoresStayDisjointThroughoutAdaptation) {
  MpFixture f;
  f.add_app(4.0);
  f.add_app(6.0);
  f.make_manager();
  f.manager->register_app(f.ids[0], MpHarsAppConfig{PerfTarget::around(1.5), 5});
  f.manager->register_app(f.ids[1], MpHarsAppConfig{PerfTarget::around(1.0), 5});
  for (int i = 0; i < 12; ++i) {
    f.engine.run_for(5 * kUsPerSec);
    const AppNode* a = f.manager->registry().find(f.ids[0]);
    const AppNode* b = f.manager->registry().find(f.ids[1]);
    EXPECT_EQ((owned_big_mask(*a, 4) & owned_big_mask(*b, 4)).count(), 0);
    EXPECT_EQ((owned_little_mask(*a) & owned_little_mask(*b)).count(), 0);
    // Free-count bookkeeping stays consistent.
    EXPECT_EQ(a->used_big_count() + b->used_big_count() +
                  f.manager->registry().big_cluster().free_count(),
              4);
  }
}

TEST(MpHarsManager, BothAppsReachTargets) {
  MpFixture f;
  f.add_app(4.0);
  f.add_app(4.0);
  f.make_manager();
  // Moderate targets both apps can reach with a half machine each.
  f.manager->register_app(f.ids[0], MpHarsAppConfig{PerfTarget::around(1.5), 5});
  f.manager->register_app(f.ids[1], MpHarsAppConfig{PerfTarget::around(1.5), 5});
  f.engine.run_for(120 * kUsPerSec);
  EXPECT_NEAR(f.apps[0]->heartbeats().rate(), 1.5, 0.6);
  EXPECT_NEAR(f.apps[1]->heartbeats().rate(), 1.5, 0.6);
}

TEST(MpHarsManager, SingleAppCanUseWholeMachine) {
  MpFixture f;
  f.add_app(4.0);
  f.make_manager();
  f.manager->register_app(f.ids[0],
                          MpHarsAppConfig{PerfTarget::around(100.0), 5});
  f.engine.run_for(60 * kUsPerSec);
  const AppNode* a = f.manager->registry().find(f.ids[0]);
  // Underperforming with everything free: should grab most of the machine.
  EXPECT_GE(a->nprocs_b + a->nprocs_l, 6);
}

TEST(MpHarsManager, FreezingCountsDecrementOnHeartbeats) {
  MpFixture f;
  f.add_app(4.0);
  f.make_manager();
  // Huge target window: the app always "achieves", so no adaptation ever
  // decreases a frequency and re-arms the counts we plant below.
  f.manager->register_app(f.ids[0], MpHarsAppConfig{PerfTarget{0.1, 100.0}, 5});
  AppNode* a = const_cast<AppRegistry&>(f.manager->registry()).find(f.ids[0]);
  a->freezing_cnt_b = 3;
  a->freezing_cnt_l = 3;
  f.engine.run_for(10 * kUsPerSec);  // Many heartbeats elapse.
  EXPECT_EQ(a->freezing_cnt_b, 0);
  EXPECT_EQ(a->freezing_cnt_l, 0);
}

TEST(MpHarsManager, TraceAndStateAccessors) {
  MpFixture f;
  f.add_app(4.0);
  f.make_manager();
  f.manager->register_app(f.ids[0], MpHarsAppConfig{PerfTarget::around(2.0), 5});
  f.engine.run_for(15 * kUsPerSec);
  EXPECT_FALSE(f.manager->trace(f.ids[0]).empty());
  EXPECT_TRUE(f.manager->trace(12345).empty());
  const SystemState s = f.manager->app_state(f.ids[0]);
  EXPECT_GE(s.big_cores + s.little_cores, 1);
}

TEST(MpHarsManager, IncrementalPolicyMovesOneStep) {
  MpFixture f;
  f.add_app(4.0);
  f.make_manager(SearchPolicy::kIncremental);
  f.manager->register_app(f.ids[0], MpHarsAppConfig{PerfTarget::around(2.0), 5});
  SystemState prev = f.manager->app_state(f.ids[0]);
  for (int i = 0; i < 80; ++i) {
    f.engine.run_for(kUsPerSec / 2);
    const SystemState cur = f.manager->app_state(f.ids[0]);
    // At most one adaptation (distance 1) fits in half a second here.
    EXPECT_LE(manhattan_distance(cur, prev), 2);
    prev = cur;
  }
}

TEST(MpHarsManager, ThreeAppsPartitionWithoutOverlap) {
  MpFixture f;
  f.add_app(4.0);
  f.add_app(5.0);
  f.add_app(6.0);
  f.make_manager();
  for (AppId id : f.ids) {
    f.manager->register_app(id, MpHarsAppConfig{PerfTarget::around(0.8), 5});
  }
  f.engine.run_for(60 * kUsPerSec);
  // Pairwise disjoint core sets; free-count bookkeeping consistent.
  int used_big = 0;
  int used_little = 0;
  for (std::size_t i = 0; i < f.ids.size(); ++i) {
    const AppNode* a = f.manager->registry().find(f.ids[i]);
    used_big += a->used_big_count();
    used_little += a->used_little_count();
    for (std::size_t j = i + 1; j < f.ids.size(); ++j) {
      const AppNode* b = f.manager->registry().find(f.ids[j]);
      EXPECT_EQ((owned_big_mask(*a, 4) & owned_big_mask(*b, 4)).count(), 0);
      EXPECT_EQ((owned_little_mask(*a) & owned_little_mask(*b)).count(), 0);
    }
  }
  EXPECT_EQ(used_big + f.manager->registry().big_cluster().free_count(), 4);
  EXPECT_EQ(used_little + f.manager->registry().little_cluster().free_count(), 4);
}

TEST(MpHarsManager, LateRegistrationRebalancesShares) {
  MpFixture f;
  f.add_app(4.0);
  f.add_app(4.0);
  f.make_manager();
  f.manager->register_app(f.ids[0], MpHarsAppConfig{PerfTarget::around(1.5), 5});
  const AppNode* a = f.manager->registry().find(f.ids[0]);
  EXPECT_EQ(a->nprocs_b + a->nprocs_l, 8);  // Alone: whole machine.
  f.manager->register_app(f.ids[1], MpHarsAppConfig{PerfTarget::around(1.5), 5});
  a = f.manager->registry().find(f.ids[0]);
  const AppNode* b = f.manager->registry().find(f.ids[1]);
  EXPECT_EQ(a->nprocs_b, 2);
  EXPECT_EQ(b->nprocs_b, 2);
  EXPECT_EQ(a->nprocs_l, 2);
  EXPECT_EQ(b->nprocs_l, 2);
}

TEST(MpHarsManager, UnregisterFreesCoresForSurvivors) {
  MpFixture f;
  f.add_app(4.0);
  f.add_app(4.0);
  f.make_manager();
  // Demanding targets: both apps want more than half the machine.
  f.manager->register_app(f.ids[0], MpHarsAppConfig{PerfTarget::around(3.0), 5});
  f.manager->register_app(f.ids[1], MpHarsAppConfig{PerfTarget::around(3.0), 5});
  f.engine.run_for(30 * kUsPerSec);

  // App 1 "exits": its cores go back to the pool...
  ASSERT_TRUE(f.manager->unregister_app(f.ids[1]));
  EXPECT_FALSE(f.manager->unregister_app(f.ids[1]));  // Idempotent failure.
  f.engine.set_app_affinity(f.ids[1], CpuMask());     // Park its threads.
  const int free_after =
      f.manager->registry().big_cluster().free_count() +
      f.manager->registry().little_cluster().free_count();
  const AppNode* a = f.manager->registry().find(f.ids[0]);
  EXPECT_EQ(free_after + a->used_big_count() + a->used_little_count(), 8);

  // ...and the survivor can grow into them.
  f.engine.run_for(60 * kUsPerSec);
  a = f.manager->registry().find(f.ids[0]);
  EXPECT_GT(a->nprocs_b + a->nprocs_l, 4);
}

TEST(AppRegistryRemove, ReturnsSlotsToFreePool) {
  AppRegistry registry(4, 4);
  AppNode& a = registry.add(0);
  a.nprocs_b = 3;
  a.nprocs_l = 2;
  allocate_core_set(a, registry.big_cluster(), registry.little_cluster(), 4);
  EXPECT_EQ(registry.big_cluster().free_count(), 1);
  EXPECT_EQ(registry.little_cluster().free_count(), 2);
  ASSERT_TRUE(registry.remove(0));
  EXPECT_EQ(registry.big_cluster().free_count(), 4);
  EXPECT_EQ(registry.little_cluster().free_count(), 4);
  EXPECT_EQ(registry.find(0), nullptr);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(registry.remove(0));
}

TEST(MpHarsManager, OverheadReported) {
  MpFixture f;
  f.add_app(4.0);
  f.make_manager();
  f.manager->register_app(f.ids[0], MpHarsAppConfig{PerfTarget::around(2.0), 5});
  f.engine.run_for(20 * kUsPerSec);
  EXPECT_GT(f.engine.manager_overhead_us(), 0);
}

}  // namespace
}  // namespace hars
