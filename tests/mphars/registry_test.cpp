#include "mphars/registry.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hars {
namespace {

TEST(AppRegistry, StartsEmptyWithAllCoresFree) {
  AppRegistry r(4, 4);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.big_cluster().free_count(), 4);
  EXPECT_EQ(r.little_cluster().free_count(), 4);
  EXPECT_EQ(r.big_cluster().frozen_flag, 0);
}

TEST(AppRegistry, AddInitializesNode) {
  AppRegistry r(4, 4);
  AppNode& n = r.add(7);
  EXPECT_EQ(n.app_id, 7);
  EXPECT_EQ(n.nprocs_b, 0);
  EXPECT_EQ(n.use_b_core.size(), 4u);
  EXPECT_EQ(n.use_l_core.size(), 4u);
  EXPECT_EQ(n.used_big_count(), 0);
  EXPECT_EQ(n.freezing_cnt_b, 0);
}

TEST(AppRegistry, FindById) {
  AppRegistry r(4, 4);
  r.add(1);
  r.add(2);
  EXPECT_NE(r.find(1), nullptr);
  EXPECT_NE(r.find(2), nullptr);
  EXPECT_EQ(r.find(3), nullptr);
  EXPECT_EQ(r.find(2)->app_id, 2);
}

TEST(AppRegistry, IterationInRegistrationOrder) {
  AppRegistry r(4, 4);
  r.add(5);
  r.add(3);
  r.add(9);
  std::vector<AppId> order;
  r.for_each([&](AppNode& n) { order.push_back(n.app_id); });
  EXPECT_EQ(order, (std::vector<AppId>{5, 3, 9}));
}

TEST(AppRegistry, ConstIteration) {
  AppRegistry r(4, 4);
  r.add(1);
  const AppRegistry& cr = r;
  int count = 0;
  cr.for_each([&](const AppNode&) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ClusterData, FreeCountHelpers) {
  ClusterData c;
  c.free_core = {kFree, kNotFree, kFree, kFree};
  EXPECT_EQ(c.free_count(), 3);
}

TEST(AppNode, UsedCountHelpers) {
  AppNode n;
  n.use_b_core = {kUse, kUnuse, kUse, kUnuse};
  n.use_l_core = {kUnuse, kUnuse, kUnuse, kUse};
  EXPECT_EQ(n.used_big_count(), 2);
  EXPECT_EQ(n.used_little_count(), 1);
}

}  // namespace
}  // namespace hars
