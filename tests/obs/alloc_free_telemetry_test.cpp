// The hot-path write functions must be allocation-free: once a thread
// is attached and the catalog is registered, counter_add / hist_observe
// / PhaseTimer / span push run under a strict AllocGuard with zero
// allocations (not even declared ones) and zero violations.
#include <gtest/gtest.h>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "obs/span_collector.hpp"
#include "util/alloc_guard.hpp"

namespace hars {
namespace obs {
namespace {

TEST(AllocFreeTelemetry, HotWritesAllocateNothing) {
  MetricsRegistry::instance().set_enabled(true);
  const Catalog& cat = catalog();  // Registered at static init.
  ensure_thread_registered();      // Shard allocation happens here, cold.
  SpanCollector spans(1024);       // Ring pre-allocated here.
  install_span_collector(&spans);

  {
    hars::AllocGuard guard("telemetry hot writes");
    for (int i = 0; i < 10000; ++i) {
      counter_add(cat.ticks);
      counter_add(cat.search_moves, 3);
      hist_observe(cat.tabu_ring_occupancy, static_cast<double>(i % 40));
      hist_observe(cat.sweep_case_run_ms, 0.25 * i);
      { PhaseTimer timer(TickPhase::kExecute, /*active=*/true); }
    }
    EXPECT_EQ(guard.allocations(), 0u) << "hot write path allocated";
    EXPECT_EQ(guard.violations(), 0u);
  }

  install_span_collector(nullptr);
  MetricsRegistry::instance().set_enabled(false);
  MetricsRegistry::instance().detach_current_thread();
}

TEST(AllocFreeTelemetry, DetachedWritesAllocateNothing) {
  // Telemetry off: the same writes must be pure no-ops.
  MetricsRegistry::instance().set_enabled(false);
  ensure_thread_registered();  // Detaches under a disabled registry.
  const Catalog& cat = catalog();
  {
    hars::AllocGuard guard("telemetry disabled writes");
    for (int i = 0; i < 10000; ++i) {
      counter_add(cat.ticks);
      hist_observe(cat.sweep_case_run_ms, 1.0);
      PhaseTimer timer(TickPhase::kAssign, /*active=*/false);
    }
    EXPECT_EQ(guard.allocations(), 0u);
    EXPECT_EQ(guard.violations(), 0u);
  }
}

}  // namespace
}  // namespace obs
}  // namespace hars
