// Thread-local histogram shards must merge exactly: N workers each
// observing a known value sequence yields precise totals in the
// snapshot, whether the workers are still alive (live-shard merge) or
// have exited (retired-accumulator merge via the ShardOwner destructor).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "sweep/work_stealing_pool.hpp"

namespace hars {
namespace obs {
namespace {

class HistogramMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::instance().set_enabled(true);
    MetricsRegistry::instance().reset();
    ensure_thread_registered();
  }
  void TearDown() override {
    MetricsRegistry::instance().set_enabled(false);
    MetricsRegistry::instance().detach_current_thread();
  }
};

TEST_F(HistogramMergeTest, PoolWorkersMergeExactly) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  const HistId hist = reg.register_histogram("test.merge.pool_hist",
                                             {1.0, 2.0, 4.0}, "merge test");
  const CounterId hits = reg.register_counter("test.merge.pool_hits", "");

  constexpr int kTasks = 64;
  constexpr int kObsPerTask = 100;
  {
    WorkStealingPool pool(4);
    for (int t = 0; t < kTasks; ++t) {
      pool.submit([&] {
        ensure_thread_registered();
        for (int i = 0; i < kObsPerTask; ++i) {
          // Cycle 0.5, 1.5, 3.0, 8.0 — one value per bucket incl. +Inf.
          static constexpr double kValues[] = {0.5, 1.5, 3.0, 8.0};
          hist_observe(hist, kValues[i % 4]);
          counter_add(hits);
        }
      });
    }
    pool.wait_idle();

    // Workers still alive: live shards merge into the snapshot.
    const MetricsSnapshot live = reg.take_snapshot();
    const MetricValue* v = live.find("test.merge.pool_hist");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->count, static_cast<std::uint64_t>(kTasks) * kObsPerTask);
  }

  // Pool destroyed: every worker's ShardOwner retired its shard; totals
  // must survive unchanged.
  const MetricsSnapshot snap = reg.take_snapshot();
  const MetricValue* v = snap.find("test.merge.pool_hist");
  ASSERT_NE(v, nullptr);
  const std::uint64_t total = static_cast<std::uint64_t>(kTasks) * kObsPerTask;
  EXPECT_EQ(v->count, total);
  // 0.5+1.5+3.0+8.0 = 13.0 per cycle of 4; sums of binary fractions are
  // exact in double.
  EXPECT_EQ(v->sum, 13.0 * (total / 4));
  ASSERT_EQ(v->buckets.size(), 4u);  // 3 bounds + Inf.
  EXPECT_EQ(v->buckets[0], total / 4);  // 0.5 <= 1
  EXPECT_EQ(v->buckets[1], total / 4);  // 1.5 <= 2
  EXPECT_EQ(v->buckets[2], total / 4);  // 3.0 <= 4
  EXPECT_EQ(v->buckets[3], total / 4);  // 8.0 -> +Inf

  const MetricValue* c = snap.find("test.merge.pool_hits");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->counter, total);
}

TEST_F(HistogramMergeTest, ConcurrentObserversDoNotLoseWrites) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  const HistId hist = reg.register_histogram("test.merge.hammer",
                                             {10.0, 100.0, 1000.0}, "");
  constexpr int kTasks = 200;
  constexpr int kObsPerTask = 500;
  {
    WorkStealingPool pool(8);
    for (int t = 0; t < kTasks; ++t) {
      pool.submit([&, t] {
        ensure_thread_registered();
        for (int i = 0; i < kObsPerTask; ++i) {
          hist_observe(hist, static_cast<double>((t + i) % 2000));
        }
      });
    }
    pool.wait_idle();
  }
  const MetricsSnapshot snap = reg.take_snapshot();
  const MetricValue* v = snap.find("test.merge.hammer");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, static_cast<std::uint64_t>(kTasks) * kObsPerTask);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t n : v->buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, v->count);
}

}  // namespace
}  // namespace obs
}  // namespace hars
