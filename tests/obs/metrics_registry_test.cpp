// MetricsRegistry unit tests: registration semantics, enable gating,
// shard attach/detach, snapshot merge and quantile math.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

namespace hars {
namespace obs {
namespace {

class MetricsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::instance().set_enabled(true);
    ensure_thread_registered();
    MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    MetricsRegistry::instance().set_enabled(false);
    ensure_thread_registered();  // Detach this thread.
  }
};

TEST_F(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  const CounterId a = reg.register_counter("test.registry.counter", "help");
  const CounterId b = reg.register_counter("test.registry.counter", "other");
  EXPECT_EQ(a.v, b.v);
  EXPECT_GE(a.v, 0);
}

TEST_F(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.register_counter("test.registry.kind_clash", "");
  EXPECT_THROW(reg.register_gauge("test.registry.kind_clash", ""),
               std::logic_error);
  EXPECT_THROW(reg.register_histogram("test.registry.kind_clash", {1.0}, ""),
               std::logic_error);
}

TEST_F(MetricsRegistryTest, BadHistogramBoundsThrow) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  EXPECT_THROW(reg.register_histogram("test.registry.empty_bounds", {}, ""),
               std::logic_error);
  EXPECT_THROW(
      reg.register_histogram("test.registry.bad_order", {2.0, 1.0}, ""),
      std::logic_error);
  reg.register_histogram("test.registry.rebound", {1.0, 2.0}, "");
  EXPECT_THROW(reg.register_histogram("test.registry.rebound", {1.0, 3.0}, ""),
               std::logic_error);
}

TEST_F(MetricsRegistryTest, CounterAddReachesSnapshot) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  const CounterId id = reg.register_counter("test.registry.adds", "");
  ensure_thread_registered();  // Layout changed: re-attach.
  counter_add(id);
  counter_add(id, 41);
  const MetricsSnapshot snap = reg.take_snapshot();
  const MetricValue* m = snap.find("test.registry.adds");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kCounter);
  EXPECT_EQ(m->counter, 42u);
}

TEST_F(MetricsRegistryTest, WritesDropWhenDetached) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  const CounterId id = reg.register_counter("test.registry.detached", "");
  ensure_thread_registered();
  counter_add(id, 5);
  reg.set_enabled(false);
  ensure_thread_registered();  // Detaches: folds 5 into retired.
  counter_add(id, 1000);       // Dropped.
  reg.set_enabled(true);
  ensure_thread_registered();
  const MetricsSnapshot snap = reg.take_snapshot();
  EXPECT_EQ(snap.find("test.registry.detached")->counter, 5u);
}

TEST_F(MetricsRegistryTest, ExitedThreadCountsAreRetained) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  const CounterId id = reg.register_counter("test.registry.retired", "");
  std::thread worker([&] {
    ensure_thread_registered();
    counter_add(id, 7);
  });
  worker.join();
  const MetricsSnapshot snap = reg.take_snapshot();
  EXPECT_EQ(snap.find("test.registry.retired")->counter, 7u);
}

TEST_F(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  const GaugeId id = reg.register_gauge("test.registry.gauge", "");
  gauge_set(id, 1.5);
  gauge_set(id, 2.5);
  const MetricsSnapshot snap = reg.take_snapshot();
  const MetricValue* m = snap.find("test.registry.gauge");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->gauge, 2.5);
}

TEST_F(MetricsRegistryTest, HistogramBucketsAndQuantiles) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  const HistId id = reg.register_histogram("test.registry.hist",
                                           {1.0, 2.0, 4.0}, "");
  ensure_thread_registered();
  hist_observe(id, 0.5);   // (0, 1]
  hist_observe(id, 1.0);   // le semantics: still (0, 1]
  hist_observe(id, 3.0);   // (2, 4]
  hist_observe(id, 100.0); // +Inf
  const MetricsSnapshot snap = reg.take_snapshot();
  const MetricValue* m = snap.find("test.registry.hist");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->buckets.size(), 4u);
  EXPECT_EQ(m->buckets[0], 2u);
  EXPECT_EQ(m->buckets[1], 0u);
  EXPECT_EQ(m->buckets[2], 1u);
  EXPECT_EQ(m->buckets[3], 1u);
  EXPECT_EQ(m->count, 4u);
  EXPECT_DOUBLE_EQ(m->sum, 104.5);
  EXPECT_GT(histogram_quantile(*m, 0.5), 0.0);
  EXPECT_LE(histogram_quantile(*m, 0.5), 1.0);
  // p99 lands in the +Inf bucket: reported as its lower bound.
  EXPECT_DOUBLE_EQ(histogram_quantile(*m, 0.99), 4.0);
}

TEST_F(MetricsRegistryTest, ResetZeroesEverything) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  const CounterId c = reg.register_counter("test.registry.reset_c", "");
  const HistId h = reg.register_histogram("test.registry.reset_h", {1.0}, "");
  ensure_thread_registered();
  counter_add(c, 3);
  hist_observe(h, 0.5);
  reg.reset();
  const MetricsSnapshot snap = reg.take_snapshot();
  EXPECT_EQ(snap.find("test.registry.reset_c")->counter, 0u);
  EXPECT_EQ(snap.find("test.registry.reset_h")->count, 0u);
}

TEST_F(MetricsRegistryTest, InertIdsAreDropped) {
  ensure_thread_registered();
  counter_add(CounterId{}, 5);          // Default id: no-op.
  hist_observe(HistId{}, 1.0);          // Default id: no-op.
  gauge_set(GaugeId{}, 1.0);            // Default id: no-op.
  counter_add(CounterId{1 << 20}, 5);   // Out of range: no-op.
  SUCCEED();
}

}  // namespace
}  // namespace obs
}  // namespace hars
