// One instrumented run must produce all four sink formats, and each
// must be well-formed: JSONL (one valid object per line), CSV (header +
// one row per metric), Prometheus text format, and a Chrome trace-event
// file that chrome://tracing / Perfetto would accept. JSON outputs are
// validated with the real parser, not by substring probing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "exp/experiment.hpp"
#include "obs/telemetry.hpp"
#include "util/json.hpp"

namespace hars {
namespace {

class SinksTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hars_sinks_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST_F(SinksTest, OneRunProducesAllFourFormats) {
  obs::TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.phase_sample_shift = 3;
  cfg.metrics_jsonl = path("metrics.jsonl");
  cfg.metrics_csv = path("metrics.csv");
  cfg.prometheus = path("metrics.prom");
  cfg.trace_json = path("spans.json");

  ExperimentBuilder()
      .app(ParsecBenchmark::kSwaptions)
      .variant("HARS-E")
      .protocol(RunProtocol::kColdStart)
      .duration(4 * kUsPerSec)
      .telemetry(cfg)
      .build()
      .run();

  // --- JSONL: every line parses; engine.ticks is present and counted.
  {
    std::ifstream in(cfg.metrics_jsonl);
    ASSERT_TRUE(in.good());
    std::string line;
    std::set<std::string> names;
    int lines = 0;
    while (std::getline(in, line)) {
      ++lines;
      const json::Value v = json::parse(line);
      ASSERT_EQ(v.type(), json::Value::Type::kObject) << line;
      const std::string name = v.at("name").as_string();
      EXPECT_TRUE(names.insert(name).second) << "duplicate " << name;
      const std::string kind = v.at("kind").as_string();
      if (kind == "histogram") {
        const json::Value& buckets = v.at("buckets");
        ASSERT_EQ(buckets.type(), json::Value::Type::kArray);
        ASSERT_FALSE(buckets.as_array().empty());
        // Last bucket is the +Inf catch-all, encoded as a string.
        EXPECT_EQ(buckets.as_array().back().at("le").as_string(), "+Inf");
      } else {
        EXPECT_TRUE(kind == "counter" || kind == "gauge") << kind;
      }
    }
    EXPECT_GT(lines, 10);
    EXPECT_TRUE(names.count("engine.ticks"));
    EXPECT_TRUE(names.count("engine.phase.assign_ns"));
    EXPECT_TRUE(names.count("search.calls"));
    EXPECT_TRUE(names.count("alloc.thread_total"));
  }

  // --- CSV: header + same metric set, one row each.
  {
    const std::string csv = slurp(cfg.metrics_csv);
    ASSERT_FALSE(csv.empty());
    std::istringstream in(csv);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "name,kind,value,count,sum,p50,p90,p99");
    std::string row;
    bool saw_ticks = false;
    while (std::getline(in, row)) {
      if (row.rfind("engine.ticks,counter,", 0) == 0) saw_ticks = true;
    }
    EXPECT_TRUE(saw_ticks);
  }

  // --- Prometheus: HELP/TYPE preamble per metric, sanitized names,
  //     cumulative histogram series with _sum/_count.
  {
    const std::string prom = slurp(cfg.prometheus);
    EXPECT_NE(prom.find("# TYPE hars_engine_ticks counter"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE hars_engine_phase_assign_ns histogram"),
              std::string::npos);
    EXPECT_NE(prom.find("hars_engine_phase_assign_ns_bucket{le=\"+Inf\"}"),
              std::string::npos);
    EXPECT_NE(prom.find("hars_engine_phase_assign_ns_count"),
              std::string::npos);
    EXPECT_NE(prom.find("hars_engine_phase_assign_ns_sum"),
              std::string::npos);
  }

  // --- Chrome trace: top-level object with a traceEvents array of
  //     complete ("ph":"X") events carrying name/cat/ts/dur/pid/tid.
  {
    const json::Value trace = json::parse_file(cfg.trace_json);
    ASSERT_EQ(trace.type(), json::Value::Type::kObject);
    const json::Value& events = trace.at("traceEvents");
    ASSERT_EQ(events.type(), json::Value::Type::kArray);
    ASSERT_FALSE(events.as_array().empty());
    for (const json::Value& e : events.as_array()) {
      EXPECT_EQ(e.at("ph").as_string(), "X");
      EXPECT_FALSE(e.at("name").as_string().empty());
      EXPECT_EQ(e.at("cat").as_string(), "tick");
      EXPECT_GE(e.at("dur").as_number(), 0.0);
      (void)e.at("ts").as_number();
      (void)e.at("pid").as_number();
      (void)e.at("tid").as_number();
    }
  }
}

TEST_F(SinksTest, UnwritablePathIsReportedNotFatal) {
  obs::TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.metrics_jsonl = "/nonexistent-dir/metrics.jsonl";
  // Must not throw: telemetry I/O failures never change a run's outcome.
  const ExperimentResult r = ExperimentBuilder()
                                 .app(ParsecBenchmark::kSwaptions)
                                 .variant("Baseline")
                                 .protocol(RunProtocol::kColdStart)
                                 .duration(2 * kUsPerSec)
                                 .telemetry(cfg)
                                 .build()
                                 .run();
  EXPECT_FALSE(r.apps.empty());
}

}  // namespace
}  // namespace hars
