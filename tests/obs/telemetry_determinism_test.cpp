// The telemetry contract's load-bearing clause: enabling the metrics
// registry, phase timers and span collector must not perturb a single
// simulated bit. Every registered variant is run on both platform
// presets — plus a dynamic-scenario run — with telemetry off and on,
// and the full result (metrics, traces, states) must compare equal as
// raw doubles, not within a tolerance.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/variant_registry.hpp"
#include "obs/telemetry.hpp"

namespace hars {
namespace {

/// Exact textual fingerprint of a result: %.17g round-trips doubles, so
/// two fingerprints are equal iff every field is bit-identical.
std::string fingerprint(const ExperimentResult& r) {
  std::string out;
  char buf[512];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g|", v);
    out += buf;
  };
  for (const AppRunResult& app : r.apps) {
    out += app.label;
    out += '|';
    num(app.metrics.norm_perf);
    num(app.metrics.avg_rate_hps);
    num(app.metrics.avg_power_w);
    num(app.metrics.perf_per_watt);
    num(app.metrics.manager_cpu_pct);
    num(static_cast<double>(app.metrics.heartbeats));
    num(app.metrics.in_window_fraction);
    num(app.metrics.energy_j);
    num(app.metrics.energy_per_beat_j);
    num(app.target.min);
    num(app.target.max);
    num(static_cast<double>(app.spawn_time_us));
    num(static_cast<double>(app.depart_time_us));
    for (const TracePoint& p : app.trace) {
      num(static_cast<double>(p.hb_index));
      num(p.hps);
      num(static_cast<double>(p.big_cores));
      num(static_cast<double>(p.little_cores));
      num(p.big_freq_ghz);
      num(p.little_freq_ghz);
    }
  }
  num(r.avg_power_w);
  num(static_cast<double>(r.adaptations));
  if (r.static_state) out += r.static_state->to_string();
  if (r.final_state) out += r.final_state->to_string();
  return out;
}

/// Telemetry armed with every collection mechanism live but no file
/// sinks — the point is the simulation, not the output.
obs::TelemetryConfig armed() {
  obs::TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.phase_sample_shift = 0;  // Time every tick: maximum interference.
  return cfg;
}

TEST(TelemetryDeterminism, EveryVariantOnEveryPlatformIsBitIdentical) {
  const std::vector<std::string> variants =
      VariantRegistry::instance().names();
  ASSERT_GE(variants.size(), 8u);
  for (const char* platform : {"exynos5422", "sd855"}) {
    for (const std::string& variant : variants) {
      const auto make = [&](bool telemetry) {
        ExperimentBuilder b;
        b.platform(std::string_view(platform))
            .app(ParsecBenchmark::kSwaptions)
            .variant(variant)
            .protocol(RunProtocol::kColdStart)
            .duration(4 * kUsPerSec)
            .seed(7);
        if (telemetry) b.telemetry(armed());
        return b.build().run();
      };
      const std::string off = fingerprint(make(false));
      const std::string on = fingerprint(make(true));
      const std::string off_again = fingerprint(make(false));
      EXPECT_EQ(off, on) << variant << " on " << platform
                         << ": telemetry changed the simulation";
      EXPECT_EQ(off, off_again)
          << variant << " on " << platform << ": run is not deterministic";
    }
  }
}

TEST(TelemetryDeterminism, StaggeredScenarioIsBitIdentical) {
  const auto make = [&](bool telemetry) {
    ExperimentBuilder b;
    b.scenario(std::string_view("staggered"))
        .variant("HARS-E")
        .duration(40 * kUsPerSec)
        .seed(3);
    if (telemetry) b.telemetry(armed());
    return b.build().run();
  };
  const std::string off = fingerprint(make(false));
  const std::string on = fingerprint(make(true));
  EXPECT_EQ(off, on) << "telemetry changed the staggered scenario run";
}

}  // namespace
}  // namespace hars
