// ScenarioGenerator: seeded determinism, validity-by-construction over
// many seeds x profiles, the gen: name grammar round-trip, registry
// materialization, and statistical sanity of the arrival / lifetime
// distributions (seeded draws, deterministic bounds — no flaky
// percentile assertions).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "scenario/generator.hpp"
#include "scenario/scenario_registry.hpp"

namespace hars {
namespace {

TEST(Generator, SameSpecIsByteIdentical) {
  for (const std::string& name : ScenarioGenerator::profiles()) {
    GeneratorSpec spec = ScenarioGenerator::profile(name);
    spec.seed = 77;
    const std::string a = ScenarioGenerator(spec).generate().to_dsl();
    const std::string b = ScenarioGenerator(spec).generate().to_dsl();
    EXPECT_EQ(a, b) << "profile " << name;
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorSpec spec = ScenarioGenerator::profile("mixed");
  spec.seed = 1;
  const std::string a = ScenarioGenerator(spec).generate().to_dsl();
  spec.seed = 2;
  const std::string b = ScenarioGenerator(spec).generate().to_dsl();
  EXPECT_NE(a, b);
}

TEST(Generator, EveryProfileAndSeedProducesAValidScenario) {
  for (const std::string& name : ScenarioGenerator::profiles()) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      GeneratorSpec spec = ScenarioGenerator::profile(name);
      spec.seed = seed;
      const Scenario s = ScenarioGenerator(spec).generate();
      EXPECT_NO_THROW(s.validate()) << name << " seed " << seed;
      // t=0 carries exactly the configured initial spawns; everything
      // else is clamped to >= 1 ms so the initial app count is stable.
      int at_zero = 0;
      for (const ScenarioEvent& e : s.events) {
        if (e.time == 0) {
          EXPECT_EQ(e.kind, ScenarioEventKind::kSpawn);
          ++at_zero;
        }
        EXPECT_LT(e.time, static_cast<TimeUs>(spec.horizon_s * kUsPerSec))
            << name << " seed " << seed;
      }
      EXPECT_EQ(at_zero, spec.initial_apps) << name << " seed " << seed;
    }
  }
}

TEST(Generator, RespectsMaxLiveApps) {
  GeneratorSpec spec = ScenarioGenerator::profile("churn");
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    spec.seed = seed;
    const Scenario s = ScenarioGenerator(spec).generate();
    int live = 0, peak = 0;
    for (const ScenarioEvent& e : s.events) {
      if (e.kind == ScenarioEventKind::kSpawn) peak = std::max(peak, ++live);
      if (e.kind == ScenarioEventKind::kKill) --live;
    }
    EXPECT_LE(peak, spec.max_live_apps) << "seed " << seed;
  }
}

TEST(Generator, SpecValidationRejectsBadFields) {
  GeneratorSpec spec;
  spec.horizon_s = 0;
  EXPECT_THROW(spec.validate(), ScenarioError);
  spec = GeneratorSpec{};
  spec.initial_apps = 0;
  EXPECT_THROW(spec.validate(), ScenarioError);
  spec = GeneratorSpec{};
  spec.lifetime_min_s = 10;
  spec.lifetime_max_s = 5;
  EXPECT_THROW(spec.validate(), ScenarioError);
  spec = GeneratorSpec{};
  spec.rush_amplitude = 1.5;
  EXPECT_THROW(spec.validate(), ScenarioError);
  spec = GeneratorSpec{};
  spec.phase_min = -1;
  EXPECT_THROW(spec.validate(), ScenarioError);
  EXPECT_THROW(ScenarioGenerator::profile("no-such-profile"), ScenarioError);
}

// --- gen: name grammar ---

TEST(GeneratorNames, CanonicalNameRoundTrips) {
  GeneratorSpec spec = ScenarioGenerator::profile("storm");
  spec.seed = 99;
  spec.phase_min = 2.2;
  spec.phase_max = 3.5;
  const std::string name = ScenarioGenerator::canonical_name(spec);
  const GeneratorSpec reparsed = ScenarioGenerator::parse_name(name);
  EXPECT_EQ(ScenarioGenerator::canonical_name(reparsed), name);
  // Same draw from the name as from the spec.
  EXPECT_EQ(ScenarioGenerator(reparsed).generate().to_dsl(),
            ScenarioGenerator(spec).generate().to_dsl());
}

TEST(GeneratorNames, ProfileDefaultsAreElided) {
  GeneratorSpec spec = ScenarioGenerator::profile("poisson");
  spec.seed = 1;  // The GeneratorSpec default: elided too.
  EXPECT_EQ(ScenarioGenerator::canonical_name(spec), "gen:poisson");
}

TEST(GeneratorNames, ParseRejectsMalformedNames) {
  EXPECT_FALSE(ScenarioGenerator::is_generated_name("staggered"));
  EXPECT_TRUE(ScenarioGenerator::is_generated_name("gen:mixed"));
  EXPECT_THROW(ScenarioGenerator::parse_name("staggered"), ScenarioError);
  EXPECT_THROW(ScenarioGenerator::parse_name("gen:nope"), ScenarioError);
  EXPECT_THROW(ScenarioGenerator::parse_name("gen:mixed:bogus_key=1"),
               ScenarioError);
  EXPECT_THROW(ScenarioGenerator::parse_name("gen:mixed:seed="),
               ScenarioError);
  EXPECT_THROW(ScenarioGenerator::parse_name("gen:mixed:rate=x"),
               ScenarioError);
}

TEST(GeneratorNames, FromNameKeepsRequestedSpelling) {
  const Scenario s = ScenarioGenerator::from_name("gen:churn:seed=5");
  EXPECT_EQ(s.name, "gen:churn:seed=5");
  EXPECT_NO_THROW(s.validate());
}

// --- Registry materialization ---

TEST(GeneratorRegistry, FindSynthesizesAndMemoizes) {
  ScenarioRegistry& registry = ScenarioRegistry::instance();
  const Scenario* first = registry.find("gen:rush:seed=4242");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->name, "gen:rush:seed=4242");
  // Second lookup hits the memo: same entry, not a new draw.
  EXPECT_EQ(registry.find("gen:rush:seed=4242"), first);
}

TEST(GeneratorRegistry, FindReturnsNullForBadGenNames) {
  EXPECT_EQ(ScenarioRegistry::instance().find("gen:nope:seed=1"), nullptr);
}

TEST(GeneratorRegistry, GetPropagatesGeneratorDiagnostics) {
  try {
    ScenarioRegistry::instance().get("gen:mixed:bogus_key=1");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& error) {
    EXPECT_NE(std::string(error.what()).find("bogus_key"), std::string::npos)
        << error.what();
  }
}

// --- Statistical sanity (satellite): seeded, deterministic bounds ---

TEST(GeneratorStats, EmpiricalArrivalRateTracksTheSpec) {
  // Long horizon, pure Poisson, unbounded live set so no arrivals are
  // shed. With lambda*T = 240 expected arrivals, +-25% bounds are ~4
  // sigma — deterministic for these fixed seeds, loose enough to never
  // flake if draw order shifts.
  GeneratorSpec spec;
  spec.profile = "poisson";
  spec.horizon_s = 1200.0;
  spec.arrival_rate_hz = 0.2;
  spec.max_live_apps = 1000000;
  spec.lifetime_min_s = 1.0;
  spec.lifetime_max_s = 2.0;
  const double expected = spec.arrival_rate_hz * spec.horizon_s;
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    spec.seed = seed;
    const Scenario s = ScenarioGenerator(spec).generate();
    double arrivals = 0;
    for (const ScenarioEvent& e : s.events) {
      if (e.kind == ScenarioEventKind::kSpawn && e.time > 0) ++arrivals;
    }
    EXPECT_GT(arrivals, 0.75 * expected) << "seed " << seed;
    EXPECT_LT(arrivals, 1.25 * expected) << "seed " << seed;
  }
}

TEST(GeneratorStats, LifetimesAreBoundedAndHeavyTailed) {
  GeneratorSpec spec;
  spec.profile = "poisson";
  spec.seed = 7;
  spec.horizon_s = 4000.0;
  spec.arrival_rate_hz = 0.25;
  spec.max_live_apps = 1000000;
  spec.lifetime_min_s = 2.0;
  spec.lifetime_max_s = 50.0;
  spec.lifetime_alpha = 1.1;
  spec.depart_prob = 1.0;  // Every app gets a kill: lifetime observable.
  const Scenario s = ScenarioGenerator(spec).generate();

  std::map<std::string, TimeUs> spawn_at;
  std::vector<double> lifetimes_s;
  for (const ScenarioEvent& e : s.events) {
    if (e.kind == ScenarioEventKind::kSpawn) spawn_at[e.app] = e.time;
    if (e.kind == ScenarioEventKind::kKill) {
      lifetimes_s.push_back(
          static_cast<double>(e.time - spawn_at.at(e.app)) / kUsPerSec);
    }
  }
  ASSERT_GT(lifetimes_s.size(), 200u);
  // Bounded Pareto support: [min, max] (+1ms rounding slack), and a
  // heavy tail actually materializes — with alpha=1.1 the probability
  // of NO lifetime above half the cap in 200+ draws is ~1e-9.
  double longest = 0;
  for (double life : lifetimes_s) {
    EXPECT_GE(life, spec.lifetime_min_s - 0.002);
    EXPECT_LE(life, spec.lifetime_max_s + 0.002);
    longest = std::max(longest, life);
  }
  EXPECT_GT(longest, spec.lifetime_max_s / 2);
  // ... but the mass stays near the floor: the median of Pareto(1.1)
  // is min * 2^(1/1.1) < 2*min.
  std::sort(lifetimes_s.begin(), lifetimes_s.end());
  EXPECT_LT(lifetimes_s[lifetimes_s.size() / 2], 4 * spec.lifetime_min_s);
}

TEST(GeneratorStats, RushAmplitudeModulatesArrivals) {
  // Compare arrivals inside rush peaks vs troughs. The triangle wave
  // tri(p) = 1 - 4|p - 1/2| peaks at mid-period and bottoms at the
  // period boundaries, so with amplitude 0.9 the middle half-period
  // sees a 19:1 intensity edge over the outer half for these seeds.
  GeneratorSpec spec;
  spec.profile = "rush";
  spec.horizon_s = 2000.0;
  spec.arrival_rate_hz = 0.15;
  spec.rush_amplitude = 0.9;
  spec.rush_period_s = 100.0;
  spec.max_live_apps = 1000000;
  spec.lifetime_min_s = 1.0;
  spec.lifetime_max_s = 2.0;
  for (std::uint64_t seed : {5u, 6u}) {
    spec.seed = seed;
    const Scenario s = ScenarioGenerator(spec).generate();
    int middle = 0, outer = 0;
    for (const ScenarioEvent& e : s.events) {
      if (e.kind != ScenarioEventKind::kSpawn || e.time == 0) continue;
      const double phase = std::fmod(
          static_cast<double>(e.time) / kUsPerSec, spec.rush_period_s);
      const bool in_middle = phase >= 0.25 * spec.rush_period_s &&
                             phase < 0.75 * spec.rush_period_s;
      (in_middle ? middle : outer) += 1;
    }
    EXPECT_GT(middle, 2 * outer) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hars
