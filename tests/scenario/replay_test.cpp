// Golden scenario regressions: trace capture -> replay bit-identity, and
// sweep-level determinism of the scenarios axis across worker counts.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/experiment.hpp"
#include "scenario/scenario_registry.hpp"
#include "scenario/trace_sink.hpp"
#include "sweep/sweep_engine.hpp"

namespace hars {
namespace {

std::string capture_staggered(std::uint64_t seed, const char* variant) {
  TraceSink sink(/*sample_every_ticks=*/250);
  ExperimentBuilder builder;
  builder.scenario(std::string_view("staggered"))
      .variant(variant)
      .duration(12 * kUsPerSec)
      .seed(seed)
      .capture(sink);
  (void)builder.build().run();
  return sink.bytes();
}

TEST(ScenarioReplay, CaptureIsBitIdenticalOnReplay) {
  const std::string capture = capture_staggered(1, "MP-HARS-E");
  ASSERT_FALSE(capture.empty());
  const ReplayOutcome outcome = replay_trace(capture);
  EXPECT_TRUE(outcome.ok) << outcome.message;
}

TEST(ScenarioReplay, RepeatedCapturesAreIdentical) {
  EXPECT_EQ(capture_staggered(7, "HARS-E"), capture_staggered(7, "HARS-E"));
}

TEST(ScenarioReplay, DifferentSeedsDiverge) {
  EXPECT_NE(capture_staggered(1, "HARS-E"), capture_staggered(2, "HARS-E"));
}

TEST(ScenarioReplay, TamperedCaptureIsReported) {
  std::string capture = capture_staggered(1, "Baseline");
  // Flip one metric digit in the last line.
  const std::size_t pos = capture.rfind("\"norm_perf\":");
  ASSERT_NE(pos, std::string::npos);
  std::size_t digit = capture.find_first_of("0123456789", pos + 12);
  ASSERT_NE(digit, std::string::npos);
  capture[digit] = capture[digit] == '9' ? '8' : '9';
  const ReplayOutcome outcome = replay_trace(capture);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.message.find("diverges"), std::string::npos);
}

TEST(ScenarioReplay, MetaRoundTrips) {
  const std::string capture = capture_staggered(3, "Baseline");
  const std::string meta_line = capture.substr(0, capture.find('\n'));
  const TraceMeta meta = parse_trace_meta(meta_line);
  EXPECT_EQ(meta.variant, "Baseline");
  EXPECT_EQ(meta.seed, 3u);
  EXPECT_EQ(meta.duration_us, 12 * kUsPerSec);
  EXPECT_EQ(meta.sample_ticks, 250);
  std::istringstream dsl(meta.scenario_dsl);
  const Scenario scenario = Scenario::from_stream(dsl);
  EXPECT_EQ(scenario.name, "staggered");
  EXPECT_EQ(scenario.spawns().size(), 3u);
}

/// The scenarios sweep axis is deterministic across worker counts: the
/// sink byte streams of --jobs 1 and --jobs 2 agree.
TEST(ScenarioSweep, RecordsAreByteIdenticalAcrossJobs) {
  const auto run_with_jobs = [](int jobs) {
    SweepSpec spec;
    spec.name("scenario_jobs")
        .base([](ExperimentBuilder& b) { b.duration(6 * kUsPerSec); })
        .scenarios({"steady", "staggered", "core_failure"})
        .variants({"Baseline", "MP-HARS-E"});
    std::ostringstream csv_bytes;
    CsvSink csv(csv_bytes);
    SweepEngine engine(SweepOptions{.jobs = jobs, .keep_results = false});
    engine.add_sink(csv);
    const SweepReport report = engine.run(spec);
    EXPECT_EQ(report.failed, 0u) << "jobs=" << jobs;
    return csv_bytes.str();
  };
  const std::string serial = run_with_jobs(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_NE(serial.find("staggered"), std::string::npos);
  EXPECT_EQ(serial, run_with_jobs(2));
}

}  // namespace
}  // namespace hars
