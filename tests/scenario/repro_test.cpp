// Corpus repro files: byte-identical format/parse round-trip, recipe
// field coverage, tolerance for foreign comments, and the injected
// synthetic oracles used by harness self-tests.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "apps/parsec.hpp"
#include "scenario/repro.hpp"

namespace hars {
namespace {

ReproCase sample_repro() {
  ReproCase repro;
  std::istringstream dsl(
      "scenario,gen:storm:seed=7\n"
      "0,spawn,app=g0,bench=FA\n"
      "1000,set_phase,app=g0,scale=2.8\n");
  repro.scenario = Scenario::from_stream(dsl);
  repro.variant = "MP-HARS-E";
  repro.platform = "exynos5422";
  repro.seed = 42;
  repro.threads = 4;
  repro.duration_sec = 12.5;
  repro.fraction = 0.85;
  repro.inject = "phase_gt2";
  repro.expect_fail = true;
  repro.failure = "injected phase_gt2: set_phase scale=2.8 > 2";
  repro.generator = "gen:storm:seed=7";
  repro.shrink_attempts = 31;
  repro.original_events = 19;
  repro.rerun = "hars_fuzz --repro fuzz/corpus/sample.scenario.csv";
  return repro;
}

TEST(Repro, FormatParseRoundTripsByteIdentically) {
  const std::string first = format_repro(sample_repro());
  std::istringstream in(first);
  const ReproCase reparsed = parse_repro(in);
  EXPECT_EQ(format_repro(reparsed), first);

  EXPECT_EQ(reparsed.variant, "MP-HARS-E");
  EXPECT_EQ(reparsed.seed, 42u);
  EXPECT_EQ(reparsed.threads, 4);
  EXPECT_DOUBLE_EQ(reparsed.duration_sec, 12.5);
  EXPECT_DOUBLE_EQ(reparsed.fraction, 0.85);
  EXPECT_EQ(reparsed.inject, "phase_gt2");
  EXPECT_TRUE(reparsed.expect_fail);
  EXPECT_EQ(reparsed.shrink_attempts, 31);
  EXPECT_EQ(reparsed.original_events, 19u);
  EXPECT_TRUE(reparsed.scenario == sample_repro().scenario);
}

TEST(Repro, DefaultsAreElidedAndPassExpectationParses) {
  ReproCase repro = sample_repro();
  repro.threads = 0;
  repro.inject.clear();
  repro.expect_fail = false;
  repro.failure.clear();
  repro.generator.clear();
  repro.shrink_attempts = 0;
  repro.original_events = 0;
  repro.rerun.clear();
  const std::string text = format_repro(repro);
  EXPECT_EQ(text.find("# threads="), std::string::npos);
  EXPECT_EQ(text.find("# inject="), std::string::npos);
  EXPECT_NE(text.find("# expect=pass"), std::string::npos);
  std::istringstream in(text);
  const ReproCase reparsed = parse_repro(in);
  EXPECT_FALSE(reparsed.expect_fail);
  EXPECT_EQ(format_repro(reparsed), text);
}

TEST(Repro, ParsesAsAPlainScenarioAndIgnoresForeignComments) {
  const std::string text =
      "# hars_fuzz repro v1\n"
      "# variant=HARS-E\n"
      "# some free-form note that is not key=value\n"
      "# unknown_key=whatever\n"
      "# expect=fail\n"
      "scenario,hand-written\n"
      "0,spawn,app=a,bench=SW\n";
  std::istringstream as_repro(text);
  const ReproCase repro = parse_repro(as_repro);
  EXPECT_EQ(repro.variant, "HARS-E");
  EXPECT_TRUE(repro.expect_fail);
  // The same bytes are a valid ordinary scenario file.
  std::istringstream as_scenario(text);
  const Scenario s = Scenario::from_stream(as_scenario);
  EXPECT_EQ(s.name, "hand-written");
}

TEST(Repro, MalformedScenarioBodyStillCarriesTheLine) {
  const std::string text =
      "# hars_fuzz repro v1\n"
      "# variant=HARS-E\n"
      "scenario,broken\n"
      "0,spawn,app=a,bench=SW\n"
      "0,kill,app=a\n";
  std::istringstream in(text);
  try {
    (void)parse_repro(in);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& error) {
    EXPECT_NE(std::string(error.what()).find("line 5 (kill)"),
              std::string::npos)
        << error.what();
  }
}

// --- Injected synthetic oracles ---

Scenario storm_scenario(double scale) {
  std::istringstream in("scenario,s\n0,spawn,app=a,bench=SW\n"
                        "1000,set_phase,app=a,scale=" +
                        std::to_string(scale) + "\n");
  return Scenario::from_stream(in);
}

TEST(InjectedFailure, PhaseGt2FiresOnlyAboveTwo) {
  EXPECT_TRUE(injected_failure(storm_scenario(2.5), "phase_gt2").has_value());
  EXPECT_FALSE(injected_failure(storm_scenario(2.0), "phase_gt2").has_value());
  EXPECT_FALSE(injected_failure(storm_scenario(0.7), "phase_gt2").has_value());
}

TEST(InjectedFailure, KillDuringOutageTracksTheOfflineMask) {
  const auto scenario = [](const std::string& tail) {
    std::istringstream in("scenario,s\n0,spawn,app=a,bench=SW\n"
                          "0,spawn,app=b,bench=BO\n" +
                          tail);
    return Scenario::from_stream(in);
  };
  // Kill while cores 4-5 are offline: fires.
  EXPECT_TRUE(injected_failure(scenario("1000,offline_cores,cores=4-5\n"
                                        "2000,kill,app=b\n"),
                               "kill_during_outage")
                  .has_value());
  // Full recovery before the kill: clean.
  EXPECT_FALSE(injected_failure(scenario("1000,offline_cores,cores=4-5\n"
                                         "2000,online_cores,cores=4-5\n"
                                         "3000,kill,app=b\n"),
                                "kill_during_outage")
                   .has_value());
  // Partial recovery (core 5 still down): fires.
  EXPECT_TRUE(injected_failure(scenario("1000,offline_cores,cores=4-5\n"
                                        "2000,online_cores,cores=4\n"
                                        "3000,kill,app=b\n"),
                               "kill_during_outage")
                  .has_value());
  // No outage at all: clean.
  EXPECT_FALSE(
      injected_failure(scenario("2000,kill,app=b\n"), "kill_during_outage")
          .has_value());
}

TEST(InjectedFailure, UnknownKindThrowsAndListsTheKnownOnes) {
  const Scenario s = storm_scenario(1.0);
  try {
    (void)injected_failure(s, "no_such_oracle");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("phase_gt2"), std::string::npos) << message;
    EXPECT_NE(message.find("kill_during_outage"), std::string::npos)
        << message;
  }
}

}  // namespace
}  // namespace hars
