// Satellite: every Scenario::from_stream / from_file rejection carries
// the offending source line ("line N"), for parse errors and for every
// semantic validation path, and from_file appends the path. A fuzz
// repro is only actionable if its rejection message points at the
// exact line.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/scenario.hpp"

namespace hars {
namespace {

/// Parses `dsl`, expects a ScenarioError whose message contains both
/// `where` (the "line N" anchor) and `what` (the diagnostic).
void expect_rejects(const std::string& dsl, const std::string& where,
                    const std::string& what) {
  std::istringstream in(dsl);
  try {
    (void)Scenario::from_stream(in);
    FAIL() << "expected ScenarioError for: " << what;
  } catch (const ScenarioError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find(where), std::string::npos)
        << "no \"" << where << "\" in: " << message;
    EXPECT_NE(message.find(what), std::string::npos)
        << "no \"" << what << "\" in: " << message;
  }
}

// --- Parse-layer rejections ---

TEST(ScenarioDiagnostics, ParseErrorsCarryTheLine) {
  expect_rejects("garbage\n", "line 1", "expected header");
  expect_rejects("scenario,x\nnot-an-event\n", "line 2", "expected TIME_MS");
  expect_rejects("scenario,x\n0,frobnicate,app=a\n", "line 2",
                 "unknown event");
  expect_rejects("scenario,x\n0,spawn,app=a,bench\n", "line 2",
                 "expected key=value");
  expect_rejects("scenario,x\n0,spawn,app=a,bench=SW,bench=BO\n", "line 2",
                 "duplicate field");
  expect_rejects("scenario,x\n0,spawn,app=a,bench=XX\n", "line 2",
                 "unknown bench");
  expect_rejects("scenario,x\n0,spawn,bench=SW\n", "line 2", "spawn needs app=");
  expect_rejects("scenario,x\nzz,spawn,app=a,bench=SW\n", "line 2",
                 "malformed time");
  expect_rejects("scenario,x\n0,spawn,app=a,bench=SW,fraction=oops\n",
                 "line 2", "malformed fraction");
  expect_rejects(
      "scenario,x\n0,spawn,app=a,bench=SW\n2,kill,app=a\n1,set_phase,app=a\n",
      "line 4", "out-of-order");
  expect_rejects("scenario,x\n1000,offline_cores,cores=\n", "line 2",
                 "core");
  expect_rejects("scenario,x\n1000,offline_cores,cores=9-4\n", "line 2",
                 "malformed core set");
}

// --- Validation-layer rejections: each path names its line and kind ---

TEST(ScenarioDiagnostics, DuplicateSpawnIdCarriesTheLine) {
  expect_rejects(
      "scenario,x\n"
      "0,spawn,app=a,bench=SW\n"
      "# a comment shifts line numbers; the error must track that\n"
      "1000,spawn,app=a,bench=BO\n",
      "line 4 (spawn)", "duplicate app id \"a\"");
}

TEST(ScenarioDiagnostics, NonSpawnAtTimeZeroCarriesTheLine) {
  expect_rejects(
      "scenario,x\n0,spawn,app=a,bench=SW\n0,set_phase,app=a,scale=2\n",
      "line 3 (set_phase)", "t=0 is reserved for spawns");
  expect_rejects("scenario,x\n0,spawn,app=a,bench=SW\n0,offline_cores,cores=3\n",
                 "line 3 (offline_cores)", "t=0 is reserved for spawns");
}

TEST(ScenarioDiagnostics, UnknownAndDeadAppsCarryTheLine) {
  expect_rejects("scenario,x\n0,spawn,app=a,bench=SW\n1000,kill,app=ghost\n",
                 "line 3 (kill)", "unknown app \"ghost\"");
  expect_rejects(
      "scenario,x\n"
      "0,spawn,app=a,bench=SW\n"
      "1000,kill,app=a\n"
      "2000,set_target,app=a,min=1,max=2\n",
      "line 4 (set_target)", "already killed");
}

TEST(ScenarioDiagnostics, PayloadRangeChecksCarryTheLine) {
  expect_rejects("scenario,x\n0,spawn,app=a,bench=SW,fraction=1.5\n",
                 "line 2 (spawn)", "fraction must be in (0, 1]");
  expect_rejects("scenario,x\n0,spawn,app=a,bench=SW,min=5,max=2\n",
                 "line 2 (spawn)", "target window");
  expect_rejects(
      "scenario,x\n0,spawn,app=a,bench=SW\n1000,set_target,app=a,min=3,max=1\n",
      "line 3 (set_target)", "target window");
  expect_rejects(
      "scenario,x\n0,spawn,app=a,bench=SW\n1000,set_phase,app=a,scale=0\n",
      "line 3 (set_phase)", "phase scale must be > 0");
  expect_rejects(
      "scenario,x\n0,spawn,app=a,bench=SW\n1000,offline_cores,cores=0-2\n",
      "line 3 (offline_cores)", "cpu0");
}

TEST(ScenarioDiagnostics, MissingInitialSpawnNamesTheRule) {
  expect_rejects("scenario,x\n1000,spawn,app=a,bench=SW\n", "no spawn at t=0",
                 "initial app");
}

// Programmatic validate() (no source lines) anchors on the event index
// instead, so builder misuse is still pinpointed.
TEST(ScenarioDiagnostics, ProgrammaticValidateAnchorsOnEventIndex) {
  Scenario s;
  s.name = "prog";
  ScenarioEvent spawn;
  spawn.kind = ScenarioEventKind::kSpawn;
  spawn.app = "a";
  spawn.spawn.bench = ParsecBenchmark::kSwaptions;
  s.events.push_back(spawn);
  ScenarioEvent phase;
  phase.time = 1000;
  phase.kind = ScenarioEventKind::kSetPhase;
  phase.app = "a";
  phase.phase_scale = -1.0;
  s.events.push_back(phase);
  try {
    s.validate();
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& error) {
    EXPECT_NE(std::string(error.what()).find("event 1 (set_phase)"),
              std::string::npos)
        << error.what();
  }
}

TEST(ScenarioDiagnostics, FromFileAppendsThePath) {
  const std::string path = "diag_test_tmp.scenario.csv";
  {
    std::ofstream out(path);
    out << "scenario,bad\n0,spawn,app=a,bench=SW\n0,kill,app=a\n";
  }
  try {
    (void)Scenario::from_file(path);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("line 3 (kill)"), std::string::npos) << message;
    EXPECT_NE(message.find("[" + path + "]"), std::string::npos) << message;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hars
