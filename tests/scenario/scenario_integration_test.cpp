// All-variants staggered-arrival integration: every registered runtime
// version runs the staggered preset end-to-end on the paper's platform
// and on the tri-cluster sd855.
#include <gtest/gtest.h>

#include <string>

#include "exp/experiment.hpp"
#include "exp/variant_registry.hpp"
#include "scenario/scenario_registry.hpp"

namespace hars {
namespace {

class StaggeredAllVariants : public ::testing::TestWithParam<std::string> {};

void run_staggered_on(const std::string& platform, const std::string& variant) {
  ExperimentBuilder builder;
  builder.platform(std::string_view(platform))
      .scenario(std::string_view("staggered"))
      .variant(variant)
      .duration(20 * kUsPerSec);  // Covers both arrivals (8 s, 16 s).
  const ExperimentResult r = builder.build().run();

  // All three spawns arrived inside the 20 s span.
  ASSERT_EQ(r.apps.size(), 3u) << variant << " on " << platform;
  EXPECT_EQ(r.apps[0].spawn_time_us, 0);
  EXPECT_EQ(r.apps[1].spawn_time_us, 8 * kUsPerSec);
  EXPECT_EQ(r.apps[2].spawn_time_us, 16 * kUsPerSec);
  // The kill at 30 s is beyond the duration: everyone ran to the end.
  for (const AppRunResult& app : r.apps) {
    EXPECT_EQ(app.depart_time_us, -1);
  }
  // The run did real work: the resident app beat, power flowed.
  EXPECT_GT(r.apps[0].metrics.heartbeats, 0) << variant << " on " << platform;
  EXPECT_GT(r.apps[1].metrics.heartbeats, 0) << variant << " on " << platform;
  EXPECT_GT(r.avg_power_w, 0.0);
  EXPECT_GT(r.apps[0].metrics.norm_perf, 0.0);
}

TEST_P(StaggeredAllVariants, RunsOnExynos5422) {
  run_staggered_on("exynos5422", GetParam());
}

TEST_P(StaggeredAllVariants, RunsOnSd855) {
  run_staggered_on("sd855", GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, StaggeredAllVariants,
    ::testing::ValuesIn(VariantRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

/// The rush-hour preset exercises arrival bursts and drains under the
/// multi-app managers without leaking departed apps.
TEST(ScenarioIntegration, RushHourDrainsCleanly) {
  const ExperimentResult r = ExperimentBuilder()
                                 .scenario(std::string_view("rush_hour"))
                                 .variant("MP-HARS-E")
                                 .duration(50 * kUsPerSec)
                                 .build()
                                 .run();
  ASSERT_EQ(r.apps.size(), 4u);
  EXPECT_EQ(r.apps[0].depart_time_us, -1);  // The resident survives.
  for (std::size_t i = 1; i < r.apps.size(); ++i) {
    EXPECT_GE(r.apps[i].depart_time_us, 40 * kUsPerSec);
    EXPECT_GT(r.apps[i].metrics.heartbeats, 0);
  }
}

/// Scenario-level spawn-after-kill churn: kills and spawns interleave so
/// new apps repeatedly reuse a compacted thread table under a live
/// multi-app manager (the ISSUE 5 remove_app audit's end-to-end lock-in).
TEST(ScenarioIntegration, KillSpawnKillInterleavingStaysConsistent) {
  using B = ParsecBenchmark;
  const Scenario churn = ScenarioBuilder("churn")
                             .spawn(0, "a0", B::kBodytrack)
                             .spawn(0, "a1", B::kSwaptions)
                             .kill(6 * kUsPerSec, "a0")
                             .spawn(8 * kUsPerSec, "a2", B::kFluidanimate)
                             .kill(12 * kUsPerSec, "a1")
                             .spawn(14 * kUsPerSec, "a3", B::kSwaptions)
                             .kill(18 * kUsPerSec, "a2")
                             .build();
  const ExperimentResult r = ExperimentBuilder()
                                 .scenario(churn)
                                 .variant("MP-HARS-E")
                                 .duration(25 * kUsPerSec)
                                 .build()
                                 .run();
  ASSERT_EQ(r.apps.size(), 4u);
  EXPECT_EQ(r.apps[0].depart_time_us, 6 * kUsPerSec);
  EXPECT_EQ(r.apps[1].depart_time_us, 12 * kUsPerSec);
  EXPECT_EQ(r.apps[2].spawn_time_us, 8 * kUsPerSec);
  EXPECT_EQ(r.apps[2].depart_time_us, 18 * kUsPerSec);
  EXPECT_EQ(r.apps[3].spawn_time_us, 14 * kUsPerSec);
  EXPECT_EQ(r.apps[3].depart_time_us, -1);  // Survives to the end.
  for (const AppRunResult& app : r.apps) {
    EXPECT_GT(app.metrics.heartbeats, 0) << app.label;
  }
}

}  // namespace
}  // namespace hars
