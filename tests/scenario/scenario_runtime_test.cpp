// Engine-level dynamics: remove_app thread reclamation, the
// kill-at-midpoint regression (a departed app must not leak into manager
// decisions), phase shifts and hotplug events.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>

#include "apps/parsec.hpp"
#include "exp/experiment.hpp"
#include "hmp/sim_engine.hpp"
#include "scenario/scenario.hpp"
#include "sched/gts.hpp"

namespace hars {
namespace {

std::unique_ptr<Scheduler> gts() { return std::make_unique<GtsScheduler>(); }

TEST(SimEngineRemoveApp, ReclaimsThreadsAndKeepsOtherIdsStable) {
  SimEngine engine(Machine::exynos5422(), gts());
  auto a = make_parsec_app(ParsecBenchmark::kSwaptions, 4, 1);
  auto b = make_parsec_app(ParsecBenchmark::kBodytrack, 8, 2);
  const AppId ia = engine.add_app(a.get());
  const AppId ib = engine.add_app(b.get());
  engine.run_for(50 * kUsPerMs);
  ASSERT_EQ(engine.threads().size(), 12u);

  engine.remove_app(ia);
  EXPECT_FALSE(engine.app_alive(ia));
  EXPECT_TRUE(engine.app_alive(ib));
  EXPECT_EQ(engine.threads().size(), 8u);
  for (const SimThread& t : engine.threads()) EXPECT_EQ(t.app, ib);

  // The survivor keeps running and its thread table stays addressable.
  const std::int64_t beats_before = b->heartbeats().count();
  engine.run_for(2 * kUsPerSec);
  EXPECT_GT(b->heartbeats().count(), beats_before);
  EXPECT_EQ(engine.thread_affinity(ib, 0), engine.machine().all_mask());

  // Double removal is an error; migrations survive as an aggregate.
  EXPECT_THROW(engine.remove_app(ia), std::out_of_range);
  EXPECT_GE(engine.total_migrations(), 0);
}

TEST(SimEngineRemoveApp, RemovedAppStopsConsumingCpu) {
  SimEngine engine(Machine::exynos5422(), gts());
  auto a = make_parsec_app(ParsecBenchmark::kSwaptions, 8, 1);
  const AppId ia = engine.add_app(a.get());
  engine.run_for(100 * kUsPerMs);
  engine.remove_app(ia);
  const std::int64_t beats_at_kill = a->heartbeats().count();
  engine.run_for(300 * kUsPerMs);
  // No CPU shares reach a removed app: its heartbeat stream is frozen.
  EXPECT_EQ(a->heartbeats().count(), beats_at_kill);
}

/// Spawn-after-kill bookkeeping audit (ISSUE 5): a new app claims a fresh
/// slot while threads_ has been compacted by earlier removals, and later
/// removals shift the bases again. Interleaving kill -> spawn -> kill must
/// keep every alive app's (base, count) window exact — per-thread
/// affinities set through (app, local_tid) must read back through the
/// same coordinates and land on threads owned by that app.
TEST(SimEngineRemoveApp, SpawnAfterKillInterleavingKeepsIndexMapping) {
  SimEngine engine(Machine::exynos5422(), gts());
  auto a = make_parsec_app(ParsecBenchmark::kSwaptions, 4, 1);
  auto b = make_parsec_app(ParsecBenchmark::kBodytrack, 8, 2);
  auto c = make_parsec_app(ParsecBenchmark::kFluidanimate, 2, 3);
  const AppId ia = engine.add_app(a.get());
  const AppId ib = engine.add_app(b.get());
  const AppId ic = engine.add_app(c.get());
  engine.run_for(20 * kUsPerMs);

  auto check_mapping = [&](std::initializer_list<std::pair<AppId, App*>> live) {
    // Every (app, tid) coordinate round-trips a distinct affinity...
    std::size_t expected_threads = 0;
    for (const auto& [id, app] : live) {
      ASSERT_TRUE(engine.app_alive(id));
      expected_threads += static_cast<std::size_t>(app->thread_count());
      for (int tid = 0; tid < app->thread_count(); ++tid) {
        const CpuMask probe =
            CpuMask::single((tid + id) % engine.machine().num_cores());
        engine.set_thread_affinity(id, tid, probe);
        EXPECT_EQ(engine.thread_affinity(id, tid).bits(), probe.bits())
            << "app " << id << " tid " << tid;
        engine.set_thread_affinity(id, tid, engine.machine().all_mask());
      }
    }
    // ...the table holds exactly the live apps' threads, each (app,
    // local_index) pair once, with globally unique thread ids.
    ASSERT_EQ(engine.threads().size(), expected_threads);
    std::set<std::pair<AppId, int>> seen;
    std::set<ThreadId> ids_seen;
    for (const SimThread& t : engine.threads()) {
      EXPECT_TRUE(engine.app_alive(t.app));
      EXPECT_TRUE(seen.emplace(t.app, t.local_index).second);
      EXPECT_TRUE(ids_seen.insert(t.id).second);
      EXPECT_EQ(t.app_ptr, &engine.app(t.app));
    }
  };

  // kill a -> spawn d (reuses the compacted tail of threads_).
  engine.remove_app(ia);
  auto d = make_parsec_app(ParsecBenchmark::kBlackscholes, 6, 4);
  const AppId id_d = engine.add_app(d.get());
  check_mapping({{ib, b.get()}, {ic, c.get()}, {id_d, d.get()}});

  // kill b (shifts c and d's bases down) -> spawn e -> kill d.
  engine.remove_app(ib);
  auto e = make_parsec_app(ParsecBenchmark::kSwaptions, 5, 5);
  const AppId id_e = engine.add_app(e.get());
  check_mapping({{ic, c.get()}, {id_d, d.get()}, {id_e, e.get()}});
  engine.remove_app(id_d);
  check_mapping({{ic, c.get()}, {id_e, e.get()}});

  // The survivors keep making progress through the reshuffled table.
  const std::int64_t c_beats = c->heartbeats().count();
  engine.run_for(2 * kUsPerSec);
  EXPECT_GT(c->heartbeats().count(), c_beats);
  EXPECT_GT(e->heartbeats().count(), 0);
  EXPECT_FALSE(engine.app_alive(ia));
  EXPECT_FALSE(engine.app_alive(ib));
  EXPECT_FALSE(engine.app_alive(id_d));
}

TEST(SimEngineTickHook, FiresAtEveryBoundaryWithStartTime) {
  SimEngine engine(Machine::exynos5422(), gts());
  auto a = make_parsec_app(ParsecBenchmark::kSwaptions, 4, 1);
  engine.add_app(a.get());
  std::vector<TimeUs> boundaries;
  engine.set_tick_hook([&](TimeUs t) { boundaries.push_back(t); });
  engine.run_for(5 * kUsPerMs);
  ASSERT_EQ(boundaries.size(), 5u);
  EXPECT_EQ(boundaries.front(), 0);
  EXPECT_EQ(boundaries.back(), 4 * kUsPerMs);
}

TEST(AppPhaseScale, ScalesEffectiveSpeed) {
  auto app = make_parsec_app(ParsecBenchmark::kSwaptions, 4, 1);
  EXPECT_DOUBLE_EQ(app->phase_scale(), 1.0);
  app->set_phase_scale(2.0);
  EXPECT_DOUBLE_EQ(app->phase_scale(), 2.0);
  app->set_phase_scale(0.0);  // Ignored: scale must stay positive.
  EXPECT_DOUBLE_EQ(app->phase_scale(), 2.0);
}

/// Kill-at-midpoint regression: under MP-HARS, the departed app's cores
/// must return to the pool and the survivor must keep adapting — and the
/// departed app's span must end at the kill.
TEST(ScenarioKill, MidpointDepartureFreesResources) {
  const TimeUs kill_at = 8 * kUsPerSec;
  const Scenario scenario =
      ScenarioBuilder("kill-midpoint")
          .spawn(0, "victim", ParsecBenchmark::kSwaptions)
          .spawn(0, "survivor", ParsecBenchmark::kBodytrack)
          .kill(kill_at, "victim")
          .build();
  const ExperimentResult r = ExperimentBuilder()
                                 .scenario(scenario)
                                 .variant("MP-HARS-E")
                                 .duration(16 * kUsPerSec)
                                 .build()
                                 .run();
  ASSERT_EQ(r.apps.size(), 2u);
  const AppRunResult& victim = r.apps[0];
  const AppRunResult& survivor = r.apps[1];
  EXPECT_EQ(victim.label, "victim");
  EXPECT_EQ(victim.depart_time_us, kill_at);
  EXPECT_EQ(survivor.depart_time_us, -1);
  // The victim beat before departing, and not after: its history ends
  // inside its span.
  EXPECT_GT(victim.metrics.heartbeats, 0);
  // The survivor outlived it and kept beating in the second half.
  EXPECT_GT(survivor.metrics.heartbeats, victim.metrics.heartbeats / 4);
  EXPECT_GT(survivor.metrics.norm_perf, 0.3);
}

TEST(ScenarioKill, HistoryEndsAtDeparture) {
  const TimeUs kill_at = 6 * kUsPerSec;
  const Scenario scenario =
      ScenarioBuilder("kill-history")
          .spawn(0, "victim", ParsecBenchmark::kSwaptions)
          .spawn(0, "other", ParsecBenchmark::kSwaptions)
          .kill(kill_at, "victim")
          .build();
  // Sample the engine mid-run to grab the victim's monitor after death.
  std::int64_t beats_at_end = -1;
  std::int64_t beats_at_kill = -1;
  const ExperimentResult r =
      ExperimentBuilder()
          .scenario(scenario)
          .variant("Baseline")
          .duration(12 * kUsPerSec)
          .sample_every(kUsPerSec,
                        [&](const RunView& view) {
                          if (view.now == kill_at && beats_at_kill < 0) {
                            // First sample at/after the kill: one app left.
                            beats_at_kill = 0;
                          }
                          beats_at_end =
                              static_cast<std::int64_t>(view.apps.size());
                        })
          .build()
          .run();
  EXPECT_EQ(beats_at_end, 1);  // Only the survivor is live at run end.
  ASSERT_EQ(r.apps.size(), 2u);
  EXPECT_EQ(r.apps[0].depart_time_us, kill_at);
}

/// Single-app HARS whose managed app departs: the manager goes silent
/// instead of reading the dead slot (would crash / leak decisions).
TEST(ScenarioKill, SingleAppManagerSurvivesItsAppDeparting) {
  const Scenario scenario =
      ScenarioBuilder("kill-managed")
          .spawn(0, "managed", ParsecBenchmark::kSwaptions)
          .spawn(2 * kUsPerSec, "late", ParsecBenchmark::kBodytrack)
          .kill(6 * kUsPerSec, "managed")
          .build();
  const ExperimentResult r = ExperimentBuilder()
                                 .scenario(scenario)
                                 .variant("HARS-E")
                                 .duration(12 * kUsPerSec)
                                 .build()
                                 .run();
  ASSERT_EQ(r.apps.size(), 2u);
  EXPECT_EQ(r.apps[0].depart_time_us, 6 * kUsPerSec);
  EXPECT_GT(r.apps[1].metrics.heartbeats, 0);
}

TEST(ScenarioEvents, PhaseShiftSlowsTheApp) {
  const Scenario scenario = ScenarioBuilder("phase")
                                .spawn(0, "a0", ParsecBenchmark::kSwaptions)
                                .set_phase(5 * kUsPerSec, "a0", 4.0)
                                .build();
  std::vector<double> rates;
  (void)ExperimentBuilder()
      .scenario(scenario)
      .variant("Baseline")
      .duration(10 * kUsPerSec)
      .sample_every(kUsPerSec,
                    [&](const RunView& view) {
                      rates.push_back(view.apps[0]->heartbeats().rate());
                    })
      .build()
      .run();
  ASSERT_EQ(rates.size(), 10u);
  // 4x heavier work => the windowed rate collapses well below half.
  EXPECT_GT(rates[4], 0.0);
  EXPECT_LT(rates[9], 0.5 * rates[4]);
}

TEST(ScenarioEvents, HotplugTakesAndReturnsCores) {
  const CpuMask big = CpuMask::range(4, 4);
  const Scenario scenario = ScenarioBuilder("failure")
                                .spawn(0, "a0", ParsecBenchmark::kSwaptions)
                                .offline_cores(2 * kUsPerSec, big)
                                .online_cores(4 * kUsPerSec, big)
                                .build();
  std::vector<int> online;
  (void)ExperimentBuilder()
      .scenario(scenario)
      .variant("Baseline")
      .duration(6 * kUsPerSec)
      .sample_every(kUsPerSec,
                    [&](const RunView& view) {
                      online.push_back(
                          view.engine.machine().online_mask().count());
                    })
      .build()
      .run();
  ASSERT_EQ(online.size(), 6u);
  EXPECT_EQ(online[0], 8);  // Before the failure.
  EXPECT_EQ(online[2], 4);  // While the fast cluster is down.
  EXPECT_EQ(online[5], 8);  // After recovery.
}

TEST(ScenarioEvents, SetTargetMovesTheWindow) {
  const Scenario scenario = ScenarioBuilder("retarget")
                                .spawn(0, "a0", ParsecBenchmark::kSwaptions)
                                .target(PerfTarget{1.0, 1.2})
                                .set_target(4 * kUsPerSec, "a0",
                                            PerfTarget{3.0, 3.6})
                                .build();
  const ExperimentResult r = ExperimentBuilder()
                                 .scenario(scenario)
                                 .variant("HARS-E")
                                 .duration(8 * kUsPerSec)
                                 .build()
                                 .run();
  ASSERT_EQ(r.apps.size(), 1u);
  // The result reports the *final* target.
  EXPECT_DOUBLE_EQ(r.apps[0].target.min, 3.0);
  EXPECT_DOUBLE_EQ(r.apps[0].target.max, 3.6);
}

TEST(ScenarioConfig, BuilderRejectsInvalidCombinations) {
  const Scenario ok = ScenarioBuilder("ok")
                          .spawn(0, "a0", ParsecBenchmark::kSwaptions)
                          .build();
  // scenario() + app() are exclusive.
  EXPECT_THROW(ExperimentBuilder()
                   .app(ParsecBenchmark::kSwaptions)
                   .scenario(ok)
                   .build(),
               ExperimentConfigError);
  // Steady-state protocol has no meaning with arrivals.
  EXPECT_THROW(ExperimentBuilder()
                   .scenario(ok)
                   .protocol(RunProtocol::kSteadyState)
                   .build(),
               ExperimentConfigError);
  // Unknown preset names list the catalogue.
  EXPECT_THROW(ExperimentBuilder().scenario(std::string_view("nope")),
               ExperimentConfigError);
}

}  // namespace
}  // namespace hars
