// Scenario DSL parse/validate round-trips, rejection of malformed input,
// builder <-> file equivalence, and the preset registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "scenario/scenario.hpp"
#include "scenario/scenario_registry.hpp"

namespace hars {
namespace {

Scenario parse(const std::string& dsl) {
  std::istringstream in(dsl);
  return Scenario::from_stream(in);
}

TEST(ScenarioDsl, ParsesEveryEventKind) {
  const Scenario s = parse(
      "# a comment\n"
      "scenario,demo\n"
      "\n"
      "0,spawn,app=a0,bench=BO,threads=4,fraction=0.6\n"
      "1000,spawn,app=a1,bench=FL,min=2.5,max=3.5\n"
      "2000,set_target,app=a0,min=1,max=2\n"
      "3000,set_phase,app=a0,scale=1.5\n"
      "4000,offline_cores,cores=4-7\n"
      "5000,online_cores,cores=4;6-7\n"
      "6000,kill,app=a1\n");
  ASSERT_EQ(s.events.size(), 7u);
  EXPECT_EQ(s.name, "demo");
  EXPECT_EQ(s.events[0].kind, ScenarioEventKind::kSpawn);
  EXPECT_EQ(*s.events[0].spawn.bench, ParsecBenchmark::kBodytrack);
  EXPECT_EQ(s.events[0].spawn.threads, 4);
  EXPECT_DOUBLE_EQ(*s.events[0].spawn.fraction, 0.6);
  ASSERT_TRUE(s.events[1].spawn.target.has_value());
  EXPECT_DOUBLE_EQ(s.events[1].spawn.target->min, 2.5);
  EXPECT_EQ(s.events[1].time, 1 * kUsPerSec);
  EXPECT_EQ(s.events[3].phase_scale, 1.5);
  EXPECT_EQ(s.events[4].cores, CpuMask::range(4, 4));
  CpuMask sparse;
  sparse.set(4);
  sparse.set(6);
  sparse.set(7);
  EXPECT_EQ(s.events[5].cores, sparse);
  EXPECT_EQ(s.events[6].kind, ScenarioEventKind::kKill);
  EXPECT_EQ(s.last_event_time(), 6 * kUsPerSec);
  EXPECT_EQ(s.spawns().size(), 2u);
}

TEST(ScenarioDsl, RoundTripsThroughDsl) {
  for (const std::string& name : ScenarioRegistry::instance().names()) {
    const Scenario original = ScenarioRegistry::instance().get(name);
    const Scenario reparsed = parse(original.to_dsl());
    EXPECT_TRUE(reparsed == original) << "round-trip changed " << name;
  }
}

TEST(ScenarioDsl, SubMillisecondTimesRoundTripExactly) {
  // 1001 us serializes as "1.001" ms; 1.001 * 1000 computes to
  // 1000.999..., so a truncating parse would lose a microsecond.
  for (const TimeUs t : {1001, 2002, 4004, 8001, 999999}) {
    const Scenario s = ScenarioBuilder("subms")
                           .spawn(0, "a0", ParsecBenchmark::kSwaptions)
                           .kill(t, "a0")
                           .build();
    const Scenario reparsed = parse(s.to_dsl());
    EXPECT_EQ(reparsed.events[1].time, t);
    EXPECT_TRUE(reparsed == s);
  }
}

TEST(ScenarioDsl, BuilderAndFileAgree) {
  const Scenario built = ScenarioBuilder("demo")
                             .spawn(0, "a0", ParsecBenchmark::kBodytrack)
                             .threads(4)
                             .fraction(0.6)
                             .spawn(5 * kUsPerSec, "a1",
                                    ParsecBenchmark::kSwaptions)
                             .target(PerfTarget{2.5, 3.5})
                             .set_phase(6 * kUsPerSec, "a0", 2.0)
                             .kill(9 * kUsPerSec, "a1")
                             .build();
  const Scenario parsed = parse(
      "scenario,demo\n"
      "0,spawn,app=a0,bench=BO,threads=4,fraction=0.6\n"
      "5000,spawn,app=a1,bench=SW,min=2.5,max=3.5\n"
      "6000,set_phase,app=a0,scale=2\n"
      "9000,kill,app=a1\n");
  EXPECT_TRUE(built == parsed);
}

TEST(ScenarioDsl, BuilderSortsOutOfOrderInsertions) {
  const Scenario s = ScenarioBuilder("demo")
                         .kill(9 * kUsPerSec, "a0")
                         .set_phase(4 * kUsPerSec, "a0", 2.0)
                         .spawn(0, "a0", ParsecBenchmark::kSwaptions)
                         .build();
  ASSERT_EQ(s.events.size(), 3u);
  EXPECT_EQ(s.events[0].kind, ScenarioEventKind::kSpawn);
  EXPECT_EQ(s.events[2].kind, ScenarioEventKind::kKill);
}

TEST(ScenarioDsl, RejectsOutOfOrderEvents) {
  EXPECT_THROW(parse("scenario,bad\n"
                     "0,spawn,app=a0,bench=SW\n"
                     "5000,set_phase,app=a0,scale=2\n"
                     "4000,kill,app=a0\n"),
               ScenarioError);
}

TEST(ScenarioDsl, RejectsDuplicateAppIds) {
  EXPECT_THROW(parse("scenario,bad\n"
                     "0,spawn,app=a0,bench=SW\n"
                     "1000,spawn,app=a0,bench=BO\n"),
               ScenarioError);
}

TEST(ScenarioDsl, RejectsUnknownAndDeadAppReferences) {
  EXPECT_THROW(parse("scenario,bad\n"
                     "0,spawn,app=a0,bench=SW\n"
                     "1000,kill,app=ghost\n"),
               ScenarioError);
  EXPECT_THROW(parse("scenario,bad\n"
                     "0,spawn,app=a0,bench=SW\n"
                     "1000,kill,app=a0\n"
                     "2000,set_phase,app=a0,scale=2\n"),
               ScenarioError);
}

TEST(ScenarioDsl, RejectsStructuralProblems) {
  // No header.
  EXPECT_THROW(parse("0,spawn,app=a0,bench=SW\n"), ScenarioError);
  // No t=0 spawn.
  EXPECT_THROW(parse("scenario,bad\n1000,spawn,app=a0,bench=SW\n"),
               ScenarioError);
  // t=0 reserved for spawns.
  EXPECT_THROW(parse("scenario,bad\n"
                     "0,spawn,app=a0,bench=SW\n"
                     "0,offline_cores,cores=4-7\n"),
               ScenarioError);
  // Unknown bench and unknown event.
  EXPECT_THROW(parse("scenario,bad\n0,spawn,app=a0,bench=XX\n"),
               ScenarioError);
  EXPECT_THROW(parse("scenario,bad\n0,frobnicate,app=a0\n"), ScenarioError);
  // Offlining the manager core.
  EXPECT_THROW(parse("scenario,bad\n"
                     "0,spawn,app=a0,bench=SW\n"
                     "1000,offline_cores,cores=0-3\n"),
               ScenarioError);
  // Malformed key=value cell and malformed core set.
  EXPECT_THROW(parse("scenario,bad\n0,spawn,app=a0,bench\n"), ScenarioError);
  EXPECT_THROW(parse("scenario,bad\n"
                     "0,spawn,app=a0,bench=SW\n"
                     "1000,offline_cores,cores=7-4\n"),
               ScenarioError);
  // Bad numeric payloads.
  EXPECT_THROW(parse("scenario,bad\n"
                     "0,spawn,app=a0,bench=SW\n"
                     "1000,set_phase,app=a0,scale=0\n"),
               ScenarioError);
  EXPECT_THROW(parse("scenario,bad\n0,spawn,app=a0,bench=SW,fraction=1.5\n"),
               ScenarioError);
  EXPECT_THROW(parse("scenario,bad\n0,spawn,app=a0,bench=SW,min=3,max=2\n"),
               ScenarioError);
}

// Regression: targets with a non-positive average (negative min, or an
// all-zero window) used to slip past the max-only validation and zero
// every normalized-perf score downstream.
TEST(ScenarioDsl, RejectsNonPositiveTargets) {
  EXPECT_THROW(parse("scenario,bad\n0,spawn,app=a0,bench=SW,min=-2,max=1\n"),
               ScenarioError);
  EXPECT_THROW(parse("scenario,bad\n"
                     "0,spawn,app=a0,bench=SW\n"
                     "1000,set_target,app=a0,min=-2,max=1\n"),
               ScenarioError);
  EXPECT_THROW(parse("scenario,bad\n"
                     "0,spawn,app=a0,bench=SW\n"
                     "1000,set_target,app=a0,min=0,max=0\n"),
               ScenarioError);
}

TEST(ScenarioCoreSet, FormatsAndParsesRanges) {
  CpuMask m;
  m.set(0);
  m.set(1);
  m.set(5);
  m.set(6);
  m.set(7);
  const std::string spec = format_core_set(m);
  EXPECT_EQ(spec, "0-1;5-7");
  EXPECT_EQ(parse_core_set(spec), m);
  EXPECT_EQ(parse_core_set("3"), CpuMask::single(3));
  EXPECT_THROW(parse_core_set("4-"), ScenarioError);
  EXPECT_THROW(parse_core_set("a-b"), ScenarioError);
  EXPECT_THROW(parse_core_set(""), ScenarioError);
}

TEST(ScenarioRegistry, HasTheDocumentedPresets) {
  const auto names = ScenarioRegistry::instance().names();
  for (const char* expected :
       {"steady", "staggered", "bursty", "rush_hour", "core_failure"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing preset " << expected;
  }
  EXPECT_NO_THROW(ScenarioRegistry::instance().get("staggered").validate());
}

TEST(ScenarioRegistry, UnknownNameListsKnownOnes) {
  try {
    ScenarioRegistry::instance().get("nope");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& error) {
    EXPECT_NE(std::string(error.what()).find("staggered"), std::string::npos);
  }
}

TEST(ScenarioRegistry, RegisterReplacesByName) {
  Scenario custom = ScenarioBuilder("docs-test-custom")
                        .spawn(0, "x", ParsecBenchmark::kSwaptions)
                        .build();
  ScenarioRegistry::instance().register_scenario(custom);
  const Scenario* found = ScenarioRegistry::instance().find("docs-test-custom");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->events.size(), 1u);
}

}  // namespace
}  // namespace hars
