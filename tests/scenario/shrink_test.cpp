// shrink_scenario: minimal repros from seeded known-bug fixtures. The
// acceptance bar — an injected invariant violation shrinks to <= 8
// events — plus the contract details: every intermediate candidate is
// valid, the budget is respected, and the result is a fixpoint.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "scenario/generator.hpp"
#include "scenario/repro.hpp"
#include "scenario/shrink.hpp"

namespace hars {
namespace {

/// A storm-profile draw whose phase range guarantees a phase_gt2
/// violation (scale > 2) somewhere in the scenario.
Scenario known_bug_fixture(std::uint64_t seed) {
  GeneratorSpec spec = ScenarioGenerator::profile("storm");
  spec.seed = seed;
  spec.horizon_s = 40.0;
  spec.phase_min = 2.2;
  spec.phase_max = 3.5;
  return ScenarioGenerator(spec).generate();
}

bool fails_phase_gt2(const Scenario& s) {
  return injected_failure(s, "phase_gt2").has_value();
}

TEST(Shrink, KnownBugFixtureShrinksToAtMostEightEvents) {
  int shrunk_fixtures = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Scenario full = known_bug_fixture(seed);
    if (!fails_phase_gt2(full)) continue;  // This draw had no storm.
    ++shrunk_fixtures;
    ShrinkStats stats;
    const Scenario minimal =
        shrink_scenario(full, fails_phase_gt2, ShrinkOptions{}, &stats);
    EXPECT_TRUE(fails_phase_gt2(minimal)) << "seed " << seed;
    EXPECT_NO_THROW(minimal.validate()) << "seed " << seed;
    EXPECT_LE(minimal.events.size(), 8u)
        << "seed " << seed << ": " << minimal.to_dsl();
    EXPECT_LE(minimal.events.size(), full.events.size());
    EXPECT_GT(stats.attempts, 0);
    // The shrunk scenario round-trips through the DSL (it must be
    // writable as a corpus repro).
    std::istringstream in(minimal.to_dsl());
    EXPECT_TRUE(Scenario::from_stream(in) == minimal);
  }
  // phase_min > 2 makes every storm a violation; over 8 seeds at least
  // half the draws contain one (deterministic for these seeds).
  EXPECT_GE(shrunk_fixtures, 4);
}

TEST(Shrink, EveryCandidateShownToThePredicateIsValid) {
  const Scenario full = known_bug_fixture(3);
  ASSERT_TRUE(fails_phase_gt2(full));
  int invalid_candidates = 0;
  (void)shrink_scenario(full, [&](const Scenario& candidate) {
    try {
      candidate.validate();
    } catch (const ScenarioError&) {
      ++invalid_candidates;
    }
    return fails_phase_gt2(candidate);
  });
  EXPECT_EQ(invalid_candidates, 0);
}

TEST(Shrink, RespectsTheAttemptBudget) {
  const Scenario full = known_bug_fixture(3);
  ASSERT_TRUE(fails_phase_gt2(full));
  ShrinkOptions options;
  options.max_attempts = 5;
  int calls = 0;
  ShrinkStats stats;
  (void)shrink_scenario(
      full,
      [&](const Scenario& candidate) {
        ++calls;
        return fails_phase_gt2(candidate);
      },
      options, &stats);
  EXPECT_LE(calls, 5);
  EXPECT_LE(stats.attempts, 5);
}

TEST(Shrink, ResultIsAFixpoint) {
  const Scenario full = known_bug_fixture(3);
  ASSERT_TRUE(fails_phase_gt2(full));
  ShrinkStats first_stats;
  const Scenario minimal =
      shrink_scenario(full, fails_phase_gt2, ShrinkOptions{}, &first_stats);
  ShrinkStats again_stats;
  const Scenario again = shrink_scenario(minimal, fails_phase_gt2,
                                         ShrinkOptions{}, &again_stats);
  EXPECT_TRUE(again == minimal);
  EXPECT_EQ(again_stats.accepted, 0);
}

TEST(Shrink, PassingScenarioComesBackUntouched) {
  const Scenario full = known_bug_fixture(3);
  const Scenario untouched = shrink_scenario(
      full, [](const Scenario&) { return false; });
  EXPECT_TRUE(untouched == full);
}

}  // namespace
}  // namespace hars
