// Idle-pull spill-over (EAS-style balancing; §3.1.4 option 3) tests.
#include <gtest/gtest.h>

#include "sched/gts.hpp"

namespace hars {
namespace {

std::vector<SimThread> hot_threads(const Machine& machine, int n) {
  std::vector<SimThread> threads(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads[static_cast<std::size_t>(i)].id = i;
    threads[static_cast<std::size_t>(i)].affinity = machine.all_mask();
    threads[static_cast<std::size_t>(i)].runnable = true;
    threads[static_cast<std::size_t>(i)].load.prime(1.0);
  }
  return threads;
}

TEST(GtsSpill, StockGtsLeavesLittleIdle) {
  const Machine machine = Machine::exynos5422();
  GtsScheduler gts;  // idle_pull = false.
  auto threads = hot_threads(machine, 8);
  gts.assign(machine, threads);
  for (const SimThread& t : threads) {
    EXPECT_EQ(machine.core_type(t.core), CoreType::kBig);
  }
}

TEST(GtsSpill, IdlePullUsesLittleUnderOversubscription) {
  const Machine machine = Machine::exynos5422();
  GtsConfig config;
  config.idle_pull = true;
  GtsScheduler gts(config);
  auto threads = hot_threads(machine, 8);
  gts.assign(machine, threads);
  int on_little = 0;
  std::vector<int> per_core(8, 0);
  for (const SimThread& t : threads) {
    on_little += machine.core_type(t.core) == CoreType::kLittle;
    ++per_core[static_cast<std::size_t>(t.core)];
  }
  EXPECT_EQ(on_little, 4);  // 8 threads spread 1 per core.
  for (int c = 0; c < 8; ++c) EXPECT_EQ(per_core[static_cast<std::size_t>(c)], 1);
}

TEST(GtsSpill, NoPullWhenNoCoreIsOverloaded) {
  const Machine machine = Machine::exynos5422();
  GtsConfig config;
  config.idle_pull = true;
  GtsScheduler gts(config);
  auto threads = hot_threads(machine, 3);  // Fits on big with room.
  gts.assign(machine, threads);
  for (const SimThread& t : threads) {
    EXPECT_EQ(machine.core_type(t.core), CoreType::kBig);
  }
}

TEST(GtsSpill, PullRespectsAffinity) {
  const Machine machine = Machine::exynos5422();
  GtsConfig config;
  config.idle_pull = true;
  GtsScheduler gts(config);
  auto threads = hot_threads(machine, 8);
  // All threads pinned to the big cluster: idle littles must not steal.
  for (SimThread& t : threads) t.affinity = machine.big_mask();
  gts.assign(machine, threads);
  for (const SimThread& t : threads) {
    EXPECT_EQ(machine.core_type(t.core), CoreType::kBig);
  }
}

TEST(GtsSpill, PullRespectsOnlineMask) {
  Machine machine = Machine::exynos5422();
  machine.set_online_mask(CpuMask::range(4, 4) | CpuMask::single(0));
  GtsConfig config;
  config.idle_pull = true;
  GtsScheduler gts(config);
  auto threads = hot_threads(machine, 8);
  gts.assign(machine, threads);
  for (const SimThread& t : threads) {
    EXPECT_TRUE(machine.is_online(t.core));
  }
}

TEST(GtsSpill, PullCountsAsMigration) {
  const Machine machine = Machine::exynos5422();
  GtsConfig config;
  config.idle_pull = true;
  GtsScheduler gts(config);
  auto threads = hot_threads(machine, 8);
  gts.assign(machine, threads);
  std::int64_t migrations = 0;
  for (const SimThread& t : threads) migrations += t.migrations;
  EXPECT_GT(migrations, 0);
}

}  // namespace
}  // namespace hars
