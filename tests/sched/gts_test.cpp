#include "sched/gts.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hars {
namespace {

std::vector<SimThread> make_threads(const Machine& machine, int n,
                                    double load = 1.0) {
  std::vector<SimThread> threads(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads[static_cast<std::size_t>(i)].id = i;
    threads[static_cast<std::size_t>(i)].local_index = i;
    threads[static_cast<std::size_t>(i)].affinity = machine.all_mask();
    threads[static_cast<std::size_t>(i)].runnable = true;
    threads[static_cast<std::size_t>(i)].load.prime(load);
  }
  return threads;
}

TEST(GtsScheduler, CpuBoundThreadsCollectOnBigCluster) {
  // The paper's §4.1.1 observation: GTS migrates every hot thread to big,
  // leaving the little cluster idle even when big is oversubscribed.
  const Machine machine = Machine::exynos5422();
  GtsScheduler gts;
  auto threads = make_threads(machine, 8, /*load=*/1.0);
  gts.assign(machine, threads);
  for (const SimThread& t : threads) {
    EXPECT_EQ(machine.core_type(t.core), CoreType::kBig) << "thread " << t.id;
  }
}

TEST(GtsScheduler, BigClusterBalancedTwoPerCore) {
  const Machine machine = Machine::exynos5422();
  GtsScheduler gts;
  auto threads = make_threads(machine, 8, 1.0);
  gts.assign(machine, threads);
  std::vector<int> per_core(8, 0);
  for (const SimThread& t : threads) ++per_core[static_cast<std::size_t>(t.core)];
  for (CoreId c = 4; c < 8; ++c) EXPECT_EQ(per_core[static_cast<std::size_t>(c)], 2);
}

TEST(GtsScheduler, ColdThreadsGoLittle) {
  const Machine machine = Machine::exynos5422();
  GtsScheduler gts;
  auto threads = make_threads(machine, 4, /*load=*/0.1);
  gts.assign(machine, threads);
  for (const SimThread& t : threads) {
    EXPECT_EQ(machine.core_type(t.core), CoreType::kLittle);
  }
}

TEST(GtsScheduler, MidLoadSticksToCurrentCluster) {
  const Machine machine = Machine::exynos5422();
  GtsScheduler gts;
  auto threads = make_threads(machine, 1, /*load=*/0.5);
  threads[0].core = 2;  // Already on little.
  gts.assign(machine, threads);
  EXPECT_EQ(machine.core_type(threads[0].core), CoreType::kLittle);

  threads[0].core = 5;  // Already on big.
  gts.assign(machine, threads);
  EXPECT_EQ(machine.core_type(threads[0].core), CoreType::kBig);
}

TEST(GtsScheduler, RespectsAffinityOverLoadPreference) {
  const Machine machine = Machine::exynos5422();
  GtsScheduler gts;
  auto threads = make_threads(machine, 2, 1.0);  // Hot: wants big.
  threads[0].affinity = CpuMask::range(0, 4);    // Pinned little.
  threads[1].affinity = CpuMask::single(6);
  gts.assign(machine, threads);
  EXPECT_EQ(machine.core_type(threads[0].core), CoreType::kLittle);
  EXPECT_EQ(threads[1].core, 6);
}

TEST(GtsScheduler, EmptyAffinityFallsBackToOnline) {
  Machine machine = Machine::exynos5422();
  machine.set_online_mask(CpuMask::range(0, 2));
  GtsScheduler gts;
  auto threads = make_threads(machine, 1, 1.0);
  threads[0].affinity = CpuMask::range(6, 2);  // Fully offline set.
  gts.assign(machine, threads);
  EXPECT_GE(threads[0].core, 0);
  EXPECT_LT(threads[0].core, 2);
}

TEST(GtsScheduler, OnlyOnlineCoresUsed) {
  Machine machine = Machine::exynos5422();
  machine.set_online_mask(CpuMask::range(0, 4) | CpuMask::single(4));
  GtsScheduler gts;
  auto threads = make_threads(machine, 6, 1.0);
  gts.assign(machine, threads);
  for (const SimThread& t : threads) {
    EXPECT_TRUE(machine.is_online(t.core)) << "core " << t.core;
  }
}

TEST(GtsScheduler, SleepingThreadsKeepCoreButConsumeNothing) {
  const Machine machine = Machine::exynos5422();
  GtsScheduler gts;
  auto threads = make_threads(machine, 2, 1.0);
  threads[1].runnable = false;
  threads[1].core = 3;
  gts.assign(machine, threads);
  EXPECT_EQ(threads[1].core, 3);  // Untouched.
}

TEST(GtsScheduler, MigrationCountsTracked) {
  const Machine machine = Machine::exynos5422();
  GtsScheduler gts;
  auto threads = make_threads(machine, 1, 1.0);
  threads[0].core = 0;  // On little, but hot -> must migrate up.
  gts.assign(machine, threads);
  EXPECT_EQ(machine.core_type(threads[0].core), CoreType::kBig);
  EXPECT_EQ(threads[0].migrations, 1);
  const CoreId settled = threads[0].core;
  gts.assign(machine, threads);
  EXPECT_EQ(threads[0].core, settled);
  EXPECT_EQ(threads[0].migrations, 1);  // Sticky afterwards.
}

TEST(GtsScheduler, BalancesWithinLittleForColdThreads) {
  const Machine machine = Machine::exynos5422();
  GtsScheduler gts;
  auto threads = make_threads(machine, 4, 0.05);
  gts.assign(machine, threads);
  std::vector<int> per_core(8, 0);
  for (const SimThread& t : threads) ++per_core[static_cast<std::size_t>(t.core)];
  for (CoreId c = 0; c < 4; ++c) EXPECT_EQ(per_core[static_cast<std::size_t>(c)], 1);
}

TEST(GtsScheduler, ConfigThresholdsExposed) {
  GtsConfig cfg;
  cfg.up_threshold = 0.9;
  cfg.down_threshold = 0.2;
  GtsScheduler gts(cfg);
  EXPECT_DOUBLE_EQ(gts.config().up_threshold, 0.9);
  EXPECT_DOUBLE_EQ(gts.config().down_threshold, 0.2);
}

}  // namespace
}  // namespace hars
