#include "sched/load_tracker.hpp"

#include <gtest/gtest.h>

namespace hars {
namespace {

TEST(LoadTracker, StartsHot) {
  LoadTracker t;
  EXPECT_DOUBLE_EQ(t.value(), 1.0);
}

TEST(LoadTracker, DecaysWhenIdle) {
  LoadTracker t(32 * kUsPerMs);
  for (int i = 0; i < 32; ++i) t.update(false, kUsPerMs);
  // One half-life of idleness halves the value.
  EXPECT_NEAR(t.value(), 0.5, 0.01);
}

TEST(LoadTracker, RisesWhenRunnable) {
  LoadTracker t(32 * kUsPerMs);
  t.prime(0.0);
  for (int i = 0; i < 32; ++i) t.update(true, kUsPerMs);
  EXPECT_NEAR(t.value(), 0.5, 0.01);
  for (int i = 0; i < 320; ++i) t.update(true, kUsPerMs);
  EXPECT_GT(t.value(), 0.99);
}

TEST(LoadTracker, ConvergesToDutyCycle) {
  LoadTracker t(16 * kUsPerMs);
  for (int i = 0; i < 5000; ++i) t.update(i % 2 == 0, kUsPerMs);
  EXPECT_NEAR(t.value(), 0.5, 0.05);
}

TEST(LoadTracker, PrimeSetsValue) {
  LoadTracker t;
  t.prime(0.25);
  EXPECT_DOUBLE_EQ(t.value(), 0.25);
}

TEST(LoadTracker, StaysInUnitRange) {
  LoadTracker t;
  for (int i = 0; i < 1000; ++i) {
    t.update(i % 3 != 0, kUsPerMs);
    EXPECT_GE(t.value(), 0.0);
    EXPECT_LE(t.value(), 1.0);
  }
}

}  // namespace
}  // namespace hars
