// CampaignRequest expansion (hars_sim CLI parity: defaults, axis order,
// seeding, validation) and CampaignScheduler bookkeeping
// (register/cancel/drain/status over the shared pool).
#include "svc/campaign_scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hars {
namespace svc {
namespace {

TEST(ExpandSweepCampaign, DefaultsMirrorHarsSim) {
  // hars_sim sweep with no flags runs SW x HARS-E, one case.
  CampaignRequest campaign;
  SweepSpec spec;
  std::size_t cases = 0;
  ASSERT_EQ(expand_sweep_campaign(campaign, &spec, &cases), "");
  EXPECT_EQ(cases, 1u);
  const std::vector<SweepCase> expanded = spec.expand();
  ASSERT_EQ(expanded.size(), 1u);
  EXPECT_EQ(expanded[0].label("bench"), "SW");
  EXPECT_EQ(expanded[0].label("variant"), "HARS-E");
}

TEST(ExpandSweepCampaign, AxisOrderAndCountMatchCli) {
  CampaignRequest campaign;
  campaign.benches = {"SW", "BO"};
  campaign.variants = {"Baseline", "HARS-E"};
  campaign.fractions = {0.85, 0.95};
  campaign.distances = {1, 3};
  SweepSpec spec;
  std::size_t cases = 0;
  ASSERT_EQ(expand_sweep_campaign(campaign, &spec, &cases), "");
  EXPECT_EQ(cases, 16u);

  // hars_sim iterates benches outermost, then variants, fractions,
  // distances — case 0 is the first label of every axis, and the
  // innermost axis (distance) varies fastest.
  const std::vector<SweepCase> expanded = spec.expand();
  ASSERT_EQ(expanded.size(), 16u);
  EXPECT_EQ(expanded[0].label("bench"), "SW");
  EXPECT_EQ(expanded[0].label("variant"), "Baseline");
  EXPECT_EQ(expanded[0].label("fraction"), "0.85");
  EXPECT_EQ(expanded[0].label("distance"), "1");
  EXPECT_EQ(expanded[1].label("distance"), "3");
  EXPECT_EQ(expanded[1].label("fraction"), "0.85");
  EXPECT_EQ(expanded[8].label("bench"), "BO");
}

TEST(ExpandSweepCampaign, DerivedSeedsFollowTheRequest) {
  CampaignRequest campaign;
  campaign.derive_seeds = true;
  campaign.seed = 77;
  SweepSpec spec;
  std::size_t cases = 0;
  ASSERT_EQ(expand_sweep_campaign(campaign, &spec, &cases), "");
  const std::vector<SweepCase> expanded = spec.expand();
  ASSERT_EQ(expanded.size(), 1u);
  // Derived mode stamps a coordinate-derived seed != the campaign seed.
  EXPECT_NE(expanded[0].seed, 0u);
}

TEST(ExpandSweepCampaign, RejectsUnknownNamesWithMessage) {
  SweepSpec spec;
  std::size_t cases = 0;

  CampaignRequest bad_bench;
  bad_bench.benches = {"NOPE"};
  const std::string e1 = expand_sweep_campaign(bad_bench, &spec, &cases);
  EXPECT_NE(e1.find("NOPE"), std::string::npos);

  CampaignRequest bad_variant;
  bad_variant.variants = {"NOT-A-VARIANT"};
  const std::string e2 = expand_sweep_campaign(bad_variant, &spec, &cases);
  EXPECT_NE(e2.find("NOT-A-VARIANT"), std::string::npos);

  CampaignRequest bad_platform;
  bad_platform.platforms = {"missing_platform"};
  const std::string e3 = expand_sweep_campaign(bad_platform, &spec, &cases);
  EXPECT_NE(e3.find("missing_platform"), std::string::npos);

  CampaignRequest both;
  both.benches = {"SW"};
  both.scenarios = {"steady_state"};
  const std::string e4 = expand_sweep_campaign(both, &spec, &cases);
  EXPECT_FALSE(e4.empty());
}

TEST(ExpandSweepCampaign, RejectsStartCaseBeyondExpansion) {
  CampaignRequest campaign;
  campaign.benches = {"SW", "BO"};
  campaign.start_case = 3;
  SweepSpec spec;
  std::size_t cases = 0;
  const std::string error = expand_sweep_campaign(campaign, &spec, &cases);
  EXPECT_FALSE(error.empty());

  campaign.start_case = 2;  // == cases: legal no-op resume
  SweepSpec fresh;          // expansion mutates the spec; never reuse one
  EXPECT_EQ(expand_sweep_campaign(campaign, &fresh, &cases), "");
  EXPECT_EQ(cases, 2u);
}

TEST(BuildRunExperiment, SingleValuedAxesOnly) {
  ExperimentBuilder builder;

  CampaignRequest two_benches;
  two_benches.mode = "run";
  two_benches.benches = {"SW", "BO"};  // run mode takes multiple apps...
  EXPECT_EQ(build_run_experiment(two_benches, &builder), "");

  CampaignRequest two_fractions;
  two_fractions.mode = "run";
  two_fractions.fractions = {0.85, 0.95};
  EXPECT_FALSE(build_run_experiment(two_fractions, &builder).empty());

  CampaignRequest with_distances;
  with_distances.mode = "run";
  with_distances.distances = {1};
  EXPECT_FALSE(build_run_experiment(with_distances, &builder).empty());

  CampaignRequest bad_scheduler;
  bad_scheduler.mode = "run";
  bad_scheduler.scheduler = "not_a_scheduler";
  EXPECT_FALSE(build_run_experiment(bad_scheduler, &builder).empty());
}

TEST(CampaignSchedulerTest, RegisterCancelStatus) {
  CampaignScheduler scheduler(1);
  const auto a = scheduler.register_campaign(/*session=*/1, /*cases=*/10);
  const auto b = scheduler.register_campaign(/*session=*/2, /*cases=*/20);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->id, b->id);
  EXPECT_EQ(scheduler.active_count(), 2u);
  EXPECT_EQ(scheduler.total_count(), 2u);
  EXPECT_EQ(a->control.load(), static_cast<int>(SweepControl::kRun));

  b->emitted.store(7);
  const std::vector<CampaignStatus> rows = scheduler.status();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].campaign, a->id);
  EXPECT_EQ(rows[0].state, "running");
  EXPECT_EQ(rows[1].cases, 20u);
  EXPECT_EQ(rows[1].emitted, 7u);

  EXPECT_TRUE(scheduler.cancel(a->id));
  EXPECT_EQ(a->control.load(), static_cast<int>(SweepControl::kCancel));
  EXPECT_FALSE(scheduler.cancel(999));

  scheduler.unregister_campaign(a->id);
  scheduler.unregister_campaign(b->id);
  EXPECT_EQ(scheduler.active_count(), 0u);
  EXPECT_EQ(scheduler.total_count(), 2u);
}

TEST(CampaignSchedulerTest, CancelSessionOnlyHitsThatSession) {
  CampaignScheduler scheduler(1);
  const auto mine = scheduler.register_campaign(1, 5);
  const auto theirs = scheduler.register_campaign(2, 5);
  scheduler.cancel_session(1);
  EXPECT_EQ(mine->control.load(), static_cast<int>(SweepControl::kCancel));
  EXPECT_EQ(theirs->control.load(), static_cast<int>(SweepControl::kRun));
}

TEST(CampaignSchedulerTest, DrainAllCoversCurrentAndFutureCampaigns) {
  CampaignScheduler scheduler(1);
  const auto before = scheduler.register_campaign(1, 5);
  scheduler.drain_all();
  EXPECT_EQ(before->control.load(), static_cast<int>(SweepControl::kDrain));

  const auto after = scheduler.register_campaign(1, 5);
  EXPECT_EQ(after->control.load(), static_cast<int>(SweepControl::kDrain));

  // Drain does not overwrite a cancel.
  const auto cancelled = scheduler.register_campaign(1, 5);
  cancelled->control.store(static_cast<int>(SweepControl::kCancel));
  scheduler.drain_all();
  EXPECT_EQ(cancelled->control.load(),
            static_cast<int>(SweepControl::kCancel));
}

}  // namespace
}  // namespace svc
}  // namespace hars
