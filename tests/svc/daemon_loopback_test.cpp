// End-to-end loopback tests of the hars_simd service: an in-process
// ServiceDaemon on an ephemeral port, real sockets, real clients. The
// tentpole assertion is byte-identity — the CSV a client writes from
// daemon-streamed records equals a local in-process run of the same
// campaign, for any worker count and any number of concurrent clients.
#include "svc/daemon.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "svc/campaign_scheduler.hpp"
#include "svc/client.hpp"
#include "svc/wire.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep_engine.hpp"

namespace hars {
namespace svc {
namespace {

/// In-process daemon on an ephemeral loopback port, served by a
/// background thread for the fixture's lifetime.
class DaemonHarness {
 public:
  explicit DaemonHarness(int jobs, SessionLimits limits = {}) {
    DaemonConfig config;
    config.listen = Address::parse("tcp:127.0.0.1:0");
    config.jobs = jobs;
    config.limits = limits;
    daemon_ = std::make_unique<ServiceDaemon>(config);
    thread_ = std::thread([this] { daemon_->serve(); });
  }

  ~DaemonHarness() {
    daemon_->stop();
    thread_.join();
  }

  const Address& address() const { return daemon_->address(); }
  ServiceDaemon& daemon() { return *daemon_; }

 private:
  std::unique_ptr<ServiceDaemon> daemon_;
  std::thread thread_;
};

/// The reference campaign: 8 short cases across two benches, two
/// variants and two target fractions.
CampaignRequest small_campaign() {
  CampaignRequest campaign;
  campaign.benches = {"SW", "BO"};
  campaign.variants = {"Baseline", "HARS-E"};
  campaign.fractions = {0.85, 0.95};
  campaign.duration_sec = 5.0;
  campaign.derive_seeds = true;
  return campaign;
}

/// CSV of a local in-process run of `campaign` — the byte-identity
/// reference the daemon-streamed reconstruction must match.
std::string local_csv(const CampaignRequest& campaign, int jobs) {
  SweepSpec spec;
  std::size_t cases = 0;
  const std::string error = expand_sweep_campaign(campaign, &spec, &cases);
  EXPECT_EQ(error, "");
  std::ostringstream out;
  CsvSink sink(out);
  SweepOptions options;
  options.jobs = jobs;
  options.keep_results = false;
  SweepEngine engine(options);
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  EXPECT_EQ(report.failed, 0u);
  return out.str();
}

/// Submits `campaign` and returns the CSV reconstructed from the
/// record stream.
std::string remote_csv(const Address& address,
                       const CampaignRequest& campaign,
                       SummaryInfo* summary_out = nullptr) {
  ServiceClient client(address);
  std::ostringstream out;
  CsvSink sink(out);
  const SubmitOutcome outcome = client.submit_sweep(
      campaign, [&](const Record& record) { sink.write(record); });
  EXPECT_TRUE(outcome.ok) << (outcome.error ? outcome.error->message : "");
  if (summary_out != nullptr && outcome.ok) *summary_out = outcome.summary;
  return out.str();
}

TEST(DaemonLoopback, PingPong) {
  DaemonHarness harness(/*jobs=*/1);
  ServiceClient client(harness.address());
  EXPECT_TRUE(client.ping());
}

TEST(DaemonLoopback, ByteIdentityAcrossJobsAndConcurrentClients) {
  const CampaignRequest campaign = small_campaign();
  const std::string reference = local_csv(campaign, /*jobs=*/1);
  ASSERT_FALSE(reference.empty());
  // The local reference itself is worker-count independent.
  EXPECT_EQ(local_csv(campaign, /*jobs=*/4), reference);

  for (int jobs : {1, 4}) {
    DaemonHarness harness(jobs);
    // Two clients submit the same campaign concurrently; both streams
    // must reconstruct to the reference bytes.
    std::string csv_a;
    std::string csv_b;
    SummaryInfo summary_a;
    std::thread client_a([&] {
      csv_a = remote_csv(harness.address(), campaign, &summary_a);
    });
    std::thread client_b(
        [&] { csv_b = remote_csv(harness.address(), campaign); });
    client_a.join();
    client_b.join();
    EXPECT_EQ(csv_a, reference) << "jobs=" << jobs;
    EXPECT_EQ(csv_b, reference) << "jobs=" << jobs;
    EXPECT_EQ(summary_a.status, "complete");
    EXPECT_EQ(summary_a.cases, 8u);
    EXPECT_EQ(summary_a.emitted_through, 8u);
    EXPECT_EQ(summary_a.failed, 0u);
  }
}

TEST(DaemonLoopback, ResumeSkipsAlreadyEmittedCases) {
  CampaignRequest campaign = small_campaign();
  const std::string full = local_csv(campaign, 1);

  DaemonHarness harness(/*jobs=*/2);
  campaign.start_case = 5;
  SummaryInfo summary;
  const std::string tail_csv = remote_csv(harness.address(), campaign,
                                          &summary);
  EXPECT_EQ(summary.status, "complete");
  EXPECT_EQ(summary.cases, 8u);
  EXPECT_EQ(summary.emitted_through, 8u);

  // The resumed stream is the tail of the full run: same trailing data
  // rows (the CSV header is re-emitted by the fresh sink).
  std::istringstream full_lines(full);
  std::vector<std::string> lines;
  for (std::string line; std::getline(full_lines, line);) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 9u);  // header + 8 single-app cases
  std::string expected = lines[0] + "\n";
  for (std::size_t i = 6; i < lines.size(); ++i) expected += lines[i] + "\n";
  EXPECT_EQ(tail_csv, expected);
}

TEST(DaemonLoopback, RunModeMatchesLocalExecution) {
  DaemonHarness harness(/*jobs=*/1);

  CampaignRequest campaign;
  campaign.mode = "run";
  campaign.benches = {"SW"};
  campaign.variants = {"HARS-E"};
  campaign.duration_sec = 5.0;
  campaign.want_trace = true;

  ServiceClient client(harness.address());
  const SubmitOutcome outcome = client.submit_run(campaign);
  ASSERT_TRUE(outcome.ok) << (outcome.error ? outcome.error->message : "");

  ExperimentBuilder builder;
  ASSERT_EQ(build_run_experiment(campaign, &builder), "");
  const RunResultPayload local =
      run_payload_of(builder.build().run(), /*include_traces=*/true);

  ASSERT_EQ(outcome.result.apps.size(), local.apps.size());
  const RunAppPayload& remote_app = outcome.result.apps[0];
  const RunAppPayload& local_app = local.apps[0];
  EXPECT_EQ(remote_app.label, local_app.label);
  EXPECT_EQ(remote_app.metrics.norm_perf, local_app.metrics.norm_perf);
  EXPECT_EQ(remote_app.metrics.avg_power_w, local_app.metrics.avg_power_w);
  EXPECT_EQ(remote_app.metrics.heartbeats, local_app.metrics.heartbeats);
  EXPECT_EQ(remote_app.metrics.energy_j, local_app.metrics.energy_j);
  ASSERT_EQ(remote_app.trace.size(), local_app.trace.size());
  if (!remote_app.trace.empty()) {
    const TracePoint& r = remote_app.trace.back();
    const TracePoint& l = local_app.trace.back();
    EXPECT_EQ(r.hb_index, l.hb_index);
    EXPECT_EQ(r.big_cores, l.big_cores);
    EXPECT_EQ(r.big_freq_ghz, l.big_freq_ghz);
  }
  EXPECT_EQ(outcome.result.avg_power_w, local.avg_power_w);
  EXPECT_EQ(outcome.result.adaptations, local.adaptations);
  EXPECT_EQ(outcome.result.has_static_state, local.has_static_state);
  EXPECT_EQ(outcome.result.static_state_text, local.static_state_text);
}

TEST(DaemonLoopback, BadSubmitIsATypedError) {
  DaemonHarness harness(/*jobs=*/1);
  ServiceClient client(harness.address());

  CampaignRequest campaign;
  campaign.benches = {"NOPE"};
  const SubmitOutcome outcome =
      client.submit_sweep(campaign, [](const Record&) {});
  EXPECT_FALSE(outcome.ok);
  ASSERT_TRUE(outcome.error.has_value());
  EXPECT_EQ(outcome.error->code, ErrorCode::kBadRequest);
  EXPECT_NE(outcome.error->message.find("NOPE"), std::string::npos);
}

TEST(DaemonLoopback, UnknownVerbAndMalformedFramesAreTypedErrors) {
  DaemonHarness harness(/*jobs=*/1);

  {
    Socket raw = connect_to(harness.address());
    ASSERT_TRUE(write_frame(raw, "{\"id\":1,\"verb\":\"frobnicate\"}"));
    std::string payload;
    ASSERT_EQ(read_frame(raw, &payload), FrameResult::kOk);
    const ErrorInfo error = parse_error(json::parse(payload));
    EXPECT_EQ(error.code, ErrorCode::kUnknownVerb);
  }
  {
    Socket raw = connect_to(harness.address());
    ASSERT_TRUE(write_frame(raw, "this is not json"));
    std::string payload;
    ASSERT_EQ(read_frame(raw, &payload), FrameResult::kOk);
    const ErrorInfo error = parse_error(json::parse(payload));
    EXPECT_EQ(error.code, ErrorCode::kBadRequest);
  }
  {
    // A malformed envelope desynchronizes the stream: one error frame,
    // then the daemon hangs up.
    Socket raw = connect_to(harness.address());
    ASSERT_TRUE(raw.write_all("not-a-length\n"));
    std::string payload;
    ASSERT_EQ(read_frame(raw, &payload), FrameResult::kOk);
    EXPECT_EQ(parse_error(json::parse(payload)).code, ErrorCode::kBadRequest);
    EXPECT_EQ(read_frame(raw, &payload), FrameResult::kClosed);
  }
}

TEST(DaemonLoopback, CancellingAMissingCampaignIsNotFound) {
  DaemonHarness harness(/*jobs=*/1);
  ServiceClient client(harness.address());
  ErrorInfo error;
  EXPECT_FALSE(client.cancel(424242, &error));
  EXPECT_EQ(error.code, ErrorCode::kNotFound);
}

TEST(DaemonLoopback, ClientCapRejectsTheExtraConnection) {
  SessionLimits limits;
  limits.max_clients = 1;
  DaemonHarness harness(/*jobs=*/1, limits);
  ServiceClient first(harness.address());
  ASSERT_TRUE(first.ping());
  // The daemon answers the over-cap connection with kTooManyClients and
  // closes it; the ping conversation sees the error frame, not a pong.
  ServiceClient second(harness.address());
  EXPECT_FALSE(second.ping());
}

TEST(DaemonLoopback, MetricsVerbServesPrometheusText) {
  DaemonHarness harness(/*jobs=*/1);
  ServiceClient client(harness.address());
  ASSERT_TRUE(client.ping());
  const std::string text = client.metrics_text();
  EXPECT_NE(text.find("hars_svc_requests"), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
}

TEST(DaemonLoopback, StatsReportSessionsCampaignsAndCacheTier) {
  DaemonHarness harness(/*jobs=*/2);
  const CampaignRequest campaign = small_campaign();
  remote_csv(harness.address(), campaign);

  ServiceClient client(harness.address());
  const StatsInfo stats = client.stats();
  EXPECT_GE(stats.sessions, 1u);
  // The finished campaign may still be mid-unregister (summary is sent
  // before the bookkeeping clears).
  EXPECT_LE(stats.campaigns_active, 1u);
  EXPECT_GE(stats.campaigns_total, 1u);
  EXPECT_GE(stats.records_streamed, 8u);
  // The shared tier has seen this campaign's calibrations.
  bool calibration_row = false;
  for (const CacheStat& cache : stats.caches) {
    if (cache.name == "calibration") {
      calibration_row = true;
      EXPECT_GE(cache.entries, 1u);
    }
  }
  EXPECT_TRUE(calibration_row);
}

}  // namespace
}  // namespace svc
}  // namespace hars
