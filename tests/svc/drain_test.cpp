// The graceful-drain contract, engine level and daemon level: in-flight
// cases finish, unstarted cases never run, sink output is a clean
// contiguous prefix of the full campaign, a drained summary carries the
// resume cursor, new submissions are rejected with a typed error, and
// resume(start_case = emitted_through) concatenates to the full run
// with no lost and no duplicated records.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "svc/campaign_scheduler.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep_engine.hpp"

namespace hars {
namespace svc {
namespace {

CampaignRequest drain_campaign() {
  CampaignRequest campaign;
  campaign.benches = {"SW", "BO"};
  campaign.variants = {"Baseline", "HARS-E"};
  campaign.fractions = {0.80, 0.85, 0.90, 0.95};
  campaign.distances = {1, 2};
  campaign.duration_sec = 120.0;  // 32 cases, tens of ms each: a drain
  campaign.derive_seeds = true;   // always lands mid-campaign.
  return campaign;
}

SweepSpec spec_of(const CampaignRequest& campaign) {
  SweepSpec spec;
  std::size_t cases = 0;
  EXPECT_EQ(expand_sweep_campaign(campaign, &spec, &cases), "");
  return spec;
}

std::string run_local(const SweepSpec& spec, std::size_t start_case,
                      const std::atomic<int>* control,
                      SweepReport* report_out) {
  std::ostringstream out;
  CsvSink sink(out);
  SweepOptions options;
  options.jobs = 2;
  options.keep_results = false;
  options.control = control;
  options.start_case = start_case;
  SweepEngine engine(options);
  engine.add_sink(sink);
  SweepReport report = engine.run(spec);
  if (report_out != nullptr) *report_out = std::move(report);
  return out.str();
}

/// Strips the header row (a resumed sink re-emits it).
std::string body_of(const std::string& csv) {
  const std::size_t eol = csv.find('\n');
  return eol == std::string::npos ? std::string() : csv.substr(eol + 1);
}

TEST(DrainContract, EngineDrainEmitsContiguousPrefixAndResumeCompletes) {
  const SweepSpec spec = spec_of(drain_campaign());
  const std::string full = run_local(spec, 0, nullptr, nullptr);

  // Flip to kDrain as soon as the first record reaches the sink: some
  // in-flight cases finish, the rest never run.
  std::atomic<int> control{static_cast<int>(SweepControl::kRun)};
  class DrainOnFirstRecord final : public ResultSink {
   public:
    explicit DrainOnFirstRecord(std::atomic<int>& control)
        : control_(control) {}
    void write(const Record&) override {
      control_.store(static_cast<int>(SweepControl::kDrain));
    }

   private:
    std::atomic<int>& control_;
  } trigger(control);

  std::ostringstream out;
  CsvSink sink(out);
  SweepOptions options;
  options.jobs = 2;
  options.keep_results = false;
  options.control = &control;
  SweepEngine engine(options);
  engine.add_sink(sink);
  engine.add_sink(trigger);
  const SweepReport drained = engine.run(spec);

  EXPECT_EQ(drained.status, "drained");
  EXPECT_EQ(drained.outcomes.size(), 32u);
  ASSERT_GT(drained.emitted_through, 0u);
  ASSERT_LT(drained.emitted_through, 32u);
  // Emitted records are byte-wise the full run's prefix.
  EXPECT_EQ(out.str(), full.substr(0, out.str().size()));

  // Resume from the cursor: the concatenation is exactly the full run —
  // nothing lost, nothing duplicated.
  SweepReport resumed;
  const std::string tail =
      run_local(spec, drained.emitted_through, nullptr, &resumed);
  EXPECT_EQ(resumed.status, "complete");
  EXPECT_EQ(resumed.emitted_through, 32u);
  EXPECT_EQ(out.str() + body_of(tail), full);
}

TEST(DrainContract, EngineCancelReportsCancelled) {
  const SweepSpec spec = spec_of(drain_campaign());
  std::atomic<int> control{static_cast<int>(SweepControl::kCancel)};
  SweepReport report;
  const std::string csv = run_local(spec, 0, &control, &report);
  EXPECT_EQ(report.status, "cancelled");
  EXPECT_EQ(report.emitted_through, 0u);
  // Header-only or fully empty: no case records.
  EXPECT_EQ(body_of(csv), "");
}

TEST(DrainContract, DaemonDrainVerbMidCampaign) {
  DaemonConfig config;
  config.listen = Address::parse("tcp:127.0.0.1:0");
  config.jobs = 2;
  ServiceDaemon daemon(config);
  std::thread server([&] { daemon.serve(); });

  const CampaignRequest campaign = drain_campaign();
  const std::string full = run_local(spec_of(campaign), 0, nullptr, nullptr);

  std::ostringstream out;
  SummaryInfo summary;
  {
    // Client A submits; its record callback triggers a daemon-wide
    // drain (via a second connection) as soon as the stream starts.
    ServiceClient submitter(daemon.address());
    ServiceClient controller(daemon.address());
    CsvSink sink(out);
    bool drain_sent = false;
    const SubmitOutcome outcome =
        submitter.submit_sweep(campaign, [&](const Record& record) {
          sink.write(record);
          if (!drain_sent) {
            drain_sent = true;
            EXPECT_TRUE(controller.drain());
          }
        });

    ASSERT_TRUE(outcome.ok);
    summary = outcome.summary;
    EXPECT_EQ(summary.status, "drained");
    EXPECT_EQ(summary.cases, 32u);
    EXPECT_GT(summary.emitted_through, 0u);
    EXPECT_LT(summary.emitted_through, 32u);
    // The streamed prefix is byte-identical to the local run's prefix.
    EXPECT_EQ(out.str(), full.substr(0, out.str().size()));

    // A draining daemon rejects new submissions with the typed error.
    const SubmitOutcome rejected =
        submitter.submit_sweep(campaign, [](const Record&) {});
    EXPECT_FALSE(rejected.ok);
    ASSERT_TRUE(rejected.error.has_value());
    EXPECT_EQ(rejected.error->code, ErrorCode::kDraining);
  }  // Clients disconnect; a drained serve() returns on its own.
  server.join();

  // Resume locally from the summary's cursor: concatenation == full run.
  SweepReport resumed;
  const std::string tail =
      run_local(spec_of(campaign), summary.emitted_through, nullptr, &resumed);
  EXPECT_EQ(resumed.status, "complete");
  EXPECT_EQ(out.str() + body_of(tail), full);
}

TEST(DrainContract, SignalFlagTriggersDrainAndServeReturns) {
  // The SIGTERM path without a signal: hars_simd's handler just sets a
  // lock-free atomic flag that serve() polls. Here another thread plays
  // the signal handler, which is exactly why the flag is an atomic and
  // not a volatile sig_atomic_t.
  static std::atomic<std::sig_atomic_t> flag{0};
  flag.store(0, std::memory_order_relaxed);
  DaemonConfig config;
  config.listen = Address::parse("tcp:127.0.0.1:0");
  config.jobs = 2;
  config.drain_signal = &flag;
  ServiceDaemon daemon(config);
  std::thread server([&] { daemon.serve(); });

  const CampaignRequest campaign = drain_campaign();
  {
    ServiceClient submitter(daemon.address());
    bool signalled = false;
    const SubmitOutcome outcome =
        submitter.submit_sweep(campaign, [&](const Record&) {
          if (!signalled) {
            signalled = true;
            flag.store(1, std::memory_order_relaxed);  // "SIGTERM"
          }
        });
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.summary.status, "drained");
    EXPECT_LT(outcome.summary.emitted_through, 32u);
  }  // Client disconnects; a drained serve() must now return on its own.
  server.join();

  // After the drain, new connections are refused outright.
  EXPECT_THROW(ServiceClient{daemon.address()}, std::runtime_error);
}

}  // namespace
}  // namespace svc
}  // namespace hars
