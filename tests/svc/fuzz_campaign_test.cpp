// Fuzzed campaigns through the service layer: generated gen: scenario
// names ride the scenarios axis of expand_sweep_campaign exactly like
// presets, malformed gen: names are rejected up front with the
// generator's own diagnostic, and the PR 5 drain contract holds
// mid-campaign for a generated workload (contiguous record prefix,
// clean resume, nothing lost or duplicated).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "svc/campaign_scheduler.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep_engine.hpp"

namespace hars {
namespace svc {
namespace {

CampaignRequest fuzzed_campaign() {
  CampaignRequest campaign;
  campaign.scenarios = {"gen:churn:seed=11;horizon=6",
                        "gen:mixed:seed=12;horizon=6",
                        "gen:storm:seed=13;horizon=6"};
  campaign.variants = {"Baseline", "HARS-E", "MP-HARS-E"};
  campaign.fractions = {0.85, 0.95};
  campaign.duration_sec = 6.0;
  return campaign;  // 3 x 3 x 2 = 18 cases.
}

std::string run_local(const SweepSpec& spec, std::size_t start_case,
                      const std::atomic<int>* control,
                      SweepReport* report_out) {
  std::ostringstream out;
  CsvSink sink(out);
  SweepOptions options;
  options.jobs = 2;
  options.keep_results = false;
  options.control = control;
  options.start_case = start_case;
  SweepEngine engine(options);
  engine.add_sink(sink);
  SweepReport report = engine.run(spec);
  if (report_out != nullptr) *report_out = std::move(report);
  return out.str();
}

std::string body_of(const std::string& csv) {
  const std::size_t eol = csv.find('\n');
  return eol == std::string::npos ? std::string() : csv.substr(eol + 1);
}

TEST(FuzzCampaign, GeneratedScenarioNamesExpandLikePresets) {
  SweepSpec spec;
  std::size_t cases = 0;
  ASSERT_EQ(expand_sweep_campaign(fuzzed_campaign(), &spec, &cases), "");
  EXPECT_EQ(cases, 18u);
  const std::vector<SweepCase> expanded = spec.expand();
  ASSERT_EQ(expanded.size(), 18u);
  EXPECT_EQ(expanded[0].label("scenario"), "gen:churn:seed=11;horizon=6");
}

TEST(FuzzCampaign, MalformedGenNameIsRejectedWithGeneratorDiagnostic) {
  CampaignRequest campaign = fuzzed_campaign();
  campaign.scenarios = {"gen:churn:bogus_key=1"};
  SweepSpec spec;
  std::size_t cases = 0;
  const std::string error = expand_sweep_campaign(campaign, &spec, &cases);
  ASSERT_NE(error, "");
  EXPECT_NE(error.find("bogus_key"), std::string::npos) << error;

  campaign.scenarios = {"gen:no_such_profile"};
  const std::string unknown = expand_sweep_campaign(campaign, &spec, &cases);
  ASSERT_NE(unknown, "");
  EXPECT_NE(unknown.find("unknown profile"), std::string::npos) << unknown;

  campaign.scenarios = {"never_registered"};
  const std::string preset = expand_sweep_campaign(campaign, &spec, &cases);
  EXPECT_NE(preset.find("unknown scenario"), std::string::npos) << preset;
}

TEST(FuzzCampaign, RecordsAreDeterministicAcrossRuns) {
  SweepSpec spec;
  std::size_t cases = 0;
  ASSERT_EQ(expand_sweep_campaign(fuzzed_campaign(), &spec, &cases), "");
  const std::string a = run_local(spec, 0, nullptr, nullptr);
  const std::string b = run_local(spec, 0, nullptr, nullptr);
  EXPECT_EQ(a, b);
  // Multi-app generated scenarios emit one record per app, so the row
  // count is at least one per case.
  const std::string body = body_of(a);
  EXPECT_GE(static_cast<std::size_t>(std::count(body.begin(), body.end(), '\n')),
            cases);
}

TEST(FuzzCampaign, DrainMidCampaignEmitsPrefixAndResumeCompletes) {
  SweepSpec spec;
  std::size_t cases = 0;
  ASSERT_EQ(expand_sweep_campaign(fuzzed_campaign(), &spec, &cases), "");
  const std::string full = run_local(spec, 0, nullptr, nullptr);

  // Flip to drain on the first record: some in-flight generated cases
  // finish, unstarted ones never run.
  std::atomic<int> control{static_cast<int>(SweepControl::kRun)};
  class DrainOnFirstRecord final : public ResultSink {
   public:
    explicit DrainOnFirstRecord(std::atomic<int>& control)
        : control_(control) {}
    void write(const Record&) override {
      control_.store(static_cast<int>(SweepControl::kDrain));
    }

   private:
    std::atomic<int>& control_;
  } trigger(control);

  std::ostringstream out;
  CsvSink sink(out);
  SweepOptions options;
  options.jobs = 2;
  options.keep_results = false;
  options.control = &control;
  SweepEngine engine(options);
  engine.add_sink(sink);
  engine.add_sink(trigger);
  const SweepReport drained = engine.run(spec);

  EXPECT_EQ(drained.status, "drained");
  ASSERT_GT(drained.emitted_through, 0u);
  ASSERT_LT(drained.emitted_through, cases);
  EXPECT_EQ(out.str(), full.substr(0, out.str().size()));

  SweepReport resumed;
  const std::string tail =
      run_local(spec, drained.emitted_through, nullptr, &resumed);
  EXPECT_EQ(resumed.status, "complete");
  EXPECT_EQ(out.str() + body_of(tail), full);
}

}  // namespace
}  // namespace svc
}  // namespace hars
