// Request/response payload round-trips for the typed protocol layer.
// The load-bearing property is cell-verbatim record serialization: the
// client-side reconstruction must feed sinks the exact text the engine
// formatted (int64 cells and double cells format differently).
#include "svc/protocol.hpp"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.hpp"

namespace hars {
namespace svc {
namespace {

TEST(ProtocolTest, ErrorCodeNamesRoundTrip) {
  const ErrorCode codes[] = {
      ErrorCode::kBadRequest,     ErrorCode::kUnknownVerb,
      ErrorCode::kTooManyClients, ErrorCode::kQuotaExceeded,
      ErrorCode::kQueueFull,      ErrorCode::kDraining,
      ErrorCode::kNotFound,       ErrorCode::kInternal,
  };
  for (ErrorCode code : codes) {
    const auto parsed = parse_error_code(error_code_name(code));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(parse_error_code("no_such_code").has_value());
}

TEST(ProtocolTest, RequestRoundTrip) {
  Request request;
  request.id = 42;
  request.verb = "submit";
  request.campaign.mode = "sweep";
  request.campaign.benches = {"SW", "BO"};
  request.campaign.variants = {"HARS-E", "GTS"};
  request.campaign.platforms = {"exynos5422"};
  request.campaign.scenarios = {};
  request.campaign.fractions = {0.85, 0.95};
  request.campaign.distances = {1, 3};
  request.campaign.duration_sec = 12.5;
  request.campaign.threads = 4;
  request.campaign.seed = 7;
  request.campaign.derive_seeds = true;
  request.campaign.start_case = 3;
  request.campaign.want_trace = true;
  request.campaign.scheduler = "hars";
  request.campaign.predictor = "kalman";
  request.campaign.policy = "hill";
  request.campaign.learn_ratio = true;

  const Request parsed = parse_request(json::parse(encode_request(request)));
  EXPECT_EQ(parsed.id, 42u);
  EXPECT_EQ(parsed.verb, "submit");
  EXPECT_EQ(parsed.campaign.mode, "sweep");
  EXPECT_EQ(parsed.campaign.benches, request.campaign.benches);
  EXPECT_EQ(parsed.campaign.variants, request.campaign.variants);
  EXPECT_EQ(parsed.campaign.platforms, request.campaign.platforms);
  EXPECT_EQ(parsed.campaign.fractions, request.campaign.fractions);
  EXPECT_EQ(parsed.campaign.distances, request.campaign.distances);
  EXPECT_DOUBLE_EQ(parsed.campaign.duration_sec, 12.5);
  EXPECT_EQ(parsed.campaign.threads, 4);
  EXPECT_EQ(parsed.campaign.seed, 7u);
  EXPECT_TRUE(parsed.campaign.derive_seeds);
  EXPECT_EQ(parsed.campaign.start_case, 3u);
  EXPECT_TRUE(parsed.campaign.want_trace);
  EXPECT_EQ(parsed.campaign.scheduler, "hars");
  EXPECT_EQ(parsed.campaign.predictor, "kalman");
  EXPECT_EQ(parsed.campaign.policy, "hill");
  EXPECT_TRUE(parsed.campaign.learn_ratio);
}

TEST(ProtocolTest, CancelRequestCarriesTarget) {
  Request request;
  request.id = 9;
  request.verb = "cancel";
  request.target = 1234;
  const Request parsed = parse_request(json::parse(encode_request(request)));
  EXPECT_EQ(parsed.verb, "cancel");
  EXPECT_EQ(parsed.target, 1234u);
}

TEST(ProtocolTest, ParseRequestRejectsGarbage) {
  EXPECT_THROW(parse_request(json::parse("[1,2,3]")), ProtocolError);
  EXPECT_THROW(parse_request(json::parse("{\"id\":1}")), ProtocolError);
}

TEST(ProtocolTest, RecordCellsAreVerbatim) {
  // 1e18 is exactly representable; to_string(int64) and
  // format_number(double) disagree on its text ("1000000000000000000"
  // vs "1e+18"), which is exactly why the wire carries cell text.
  Record record;
  record.set("bench", "SW");
  record.set("case", std::int64_t{1000000000000000000});
  record.set("speedup", 1e18);
  record.set("frac", 0.1);

  const json::Value payload = json::parse(encode_record(7, record));
  EXPECT_EQ(response_type(payload), "record");
  const Record parsed = parse_record(payload);

  ASSERT_EQ(parsed.cells().size(), record.cells().size());
  for (std::size_t i = 0; i < record.cells().size(); ++i) {
    EXPECT_EQ(parsed.cells()[i].key, record.cells()[i].key);
    EXPECT_EQ(parsed.cells()[i].text, record.cells()[i].text);
    EXPECT_EQ(parsed.cells()[i].numeric, record.cells()[i].numeric);
    if (record.cells()[i].numeric) {
      EXPECT_EQ(parsed.cells()[i].number, record.cells()[i].number);
    }
  }
  EXPECT_NE(parsed.text("case"), parsed.text("speedup"));
}

TEST(ProtocolTest, RecordNonFiniteNumberSurvives) {
  Record record;
  record.set("nanv", std::nan(""));
  const Record parsed = parse_record(json::parse(encode_record(1, record)));
  ASSERT_EQ(parsed.cells().size(), 1u);
  EXPECT_TRUE(parsed.cells()[0].numeric);
  EXPECT_TRUE(std::isnan(parsed.cells()[0].number));
  EXPECT_EQ(parsed.cells()[0].text, record.cells()[0].text);
}

TEST(ProtocolTest, AckSummaryErrorRoundTrip) {
  AckInfo ack;
  ack.id = 3;
  ack.campaign = 17;
  ack.cases = 96;
  const json::Value ack_payload = json::parse(encode_ack(ack));
  EXPECT_EQ(response_type(ack_payload), "ack");
  const AckInfo ack2 = parse_ack(ack_payload);
  EXPECT_EQ(ack2.id, 3u);
  EXPECT_EQ(ack2.campaign, 17u);
  EXPECT_EQ(ack2.cases, 96u);

  SummaryInfo summary;
  summary.id = 3;
  summary.campaign = 17;
  summary.status = "drained";
  summary.cases = 96;
  summary.emitted_through = 40;
  summary.failed = 2;
  summary.wall_ms = 123.25;
  const json::Value sum_payload = json::parse(encode_summary(summary));
  EXPECT_EQ(response_type(sum_payload), "summary");
  const SummaryInfo summary2 = parse_summary(sum_payload);
  EXPECT_EQ(summary2.status, "drained");
  EXPECT_EQ(summary2.emitted_through, 40u);
  EXPECT_EQ(summary2.failed, 2u);
  EXPECT_DOUBLE_EQ(summary2.wall_ms, 123.25);

  ErrorInfo error;
  error.id = 5;
  error.code = ErrorCode::kDraining;
  error.message = "daemon is draining";
  const json::Value err_payload = json::parse(encode_error(error));
  EXPECT_EQ(response_type(err_payload), "error");
  const ErrorInfo error2 = parse_error(err_payload);
  EXPECT_EQ(error2.code, ErrorCode::kDraining);
  EXPECT_EQ(error2.message, "daemon is draining");
}

TEST(ProtocolTest, StatsAndStatusRoundTrip) {
  StatsInfo stats;
  stats.id = 8;
  stats.sessions = 2;
  stats.campaigns_active = 1;
  stats.campaigns_total = 12;
  stats.records_streamed = 4096;
  stats.caches.push_back({"calibration", 30, 6, 6});
  stats.caches.push_back({"static_optimal", 0, 2, 2});
  const json::Value stats_payload = json::parse(encode_stats(stats));
  EXPECT_EQ(response_type(stats_payload), "stats");
  const StatsInfo stats2 = parse_stats(stats_payload);
  EXPECT_EQ(stats2.sessions, 2u);
  EXPECT_EQ(stats2.campaigns_total, 12u);
  EXPECT_EQ(stats2.records_streamed, 4096u);
  ASSERT_EQ(stats2.caches.size(), 2u);
  EXPECT_EQ(stats2.caches[0].name, "calibration");
  EXPECT_EQ(stats2.caches[0].hits, 30u);
  EXPECT_EQ(stats2.caches[1].entries, 2u);

  std::vector<CampaignStatus> rows;
  rows.push_back({11, "running", 96, 40});
  rows.push_back({12, "draining", 8, 8});
  const json::Value status_payload = json::parse(encode_status(4, rows));
  EXPECT_EQ(response_type(status_payload), "status");
  const std::vector<CampaignStatus> rows2 = parse_status(status_payload);
  ASSERT_EQ(rows2.size(), 2u);
  EXPECT_EQ(rows2[0].campaign, 11u);
  EXPECT_EQ(rows2[0].state, "running");
  EXPECT_EQ(rows2[1].state, "draining");
  EXPECT_EQ(rows2[1].emitted, 8u);
}

TEST(ProtocolTest, RunResultRoundTripWithTrace) {
  RunResultPayload payload;
  RunAppPayload app;
  app.label = "SW";
  app.target.min = 9.0;
  app.target.max = 11.0;
  app.metrics.norm_perf = 0.97;
  app.metrics.avg_rate_hps = 10.2;
  app.metrics.avg_power_w = 1.75;
  app.metrics.perf_per_watt = 0.55;
  app.metrics.manager_cpu_pct = 0.4;
  app.metrics.heartbeats = 1200;
  app.metrics.in_window_fraction = 0.91;
  app.metrics.energy_j = 210.0;
  app.metrics.energy_per_beat_j = 0.175;
  app.spawn_time_us = 1000;
  app.depart_time_us = 5'000'000;
  app.trace.push_back({5, 10.5, 3, 1, 1.8, 1.4});
  app.trace.push_back({6, 10.9, 4, 0, 2.0, 1.4});
  payload.apps.push_back(app);
  payload.avg_power_w = 1.75;
  payload.adaptations = 37;
  payload.has_static_state = true;
  payload.static_state_text = "4+4 @ 1.8/1.4 GHz";

  const json::Value encoded = json::parse(encode_run_result(2, payload));
  EXPECT_EQ(response_type(encoded), "result");
  const RunResultPayload parsed = parse_run_result(encoded);
  ASSERT_EQ(parsed.apps.size(), 1u);
  const RunAppPayload& a = parsed.apps[0];
  EXPECT_EQ(a.label, "SW");
  EXPECT_DOUBLE_EQ(a.target.min, 9.0);
  EXPECT_DOUBLE_EQ(a.target.max, 11.0);
  EXPECT_DOUBLE_EQ(a.metrics.norm_perf, 0.97);
  EXPECT_DOUBLE_EQ(a.metrics.energy_per_beat_j, 0.175);
  EXPECT_EQ(a.metrics.heartbeats, 1200);
  EXPECT_EQ(a.spawn_time_us, 1000);
  EXPECT_EQ(a.depart_time_us, 5'000'000);
  ASSERT_EQ(a.trace.size(), 2u);
  EXPECT_EQ(a.trace[1].hb_index, 6);
  EXPECT_EQ(a.trace[1].big_cores, 4);
  EXPECT_DOUBLE_EQ(a.trace[1].big_freq_ghz, 2.0);
  EXPECT_DOUBLE_EQ(parsed.avg_power_w, 1.75);
  EXPECT_EQ(parsed.adaptations, 37);
  EXPECT_TRUE(parsed.has_static_state);
  EXPECT_EQ(parsed.static_state_text, "4+4 @ 1.8/1.4 GHz");

  // Without traces the payload stays compact.
  RunResultPayload no_trace = payload;
  no_trace.apps[0].trace.clear();
  const RunResultPayload parsed2 =
      parse_run_result(json::parse(encode_run_result(2, no_trace)));
  EXPECT_TRUE(parsed2.apps[0].trace.empty());
}

TEST(ProtocolTest, PongAndMetricsText) {
  const json::Value pong = json::parse(encode_pong(77));
  EXPECT_EQ(response_type(pong), "pong");
  EXPECT_EQ(pong.at("id").as_number(), 77.0);

  const std::string text = "# TYPE svc_requests counter\nsvc_requests 4\n";
  const json::Value metrics = json::parse(encode_metrics_text(78, text));
  EXPECT_EQ(response_type(metrics), "metrics");
  EXPECT_EQ(metrics.at("text").as_string(), text);
}

}  // namespace
}  // namespace svc
}  // namespace hars
