// Aggregation of `cache.<name>.*` metrics into the typed CacheStat rows
// the `stats` protocol verb reports, plus the end-to-end path through a
// real named OnceCache.
#include "svc/service_cache.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "util/once_cache.hpp"

namespace hars {
namespace svc {
namespace {

using obs::MetricKind;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::MetricValue;

MetricValue counter(std::string name, std::uint64_t value) {
  MetricValue m;
  m.name = std::move(name);
  m.kind = MetricKind::kCounter;
  m.counter = value;
  return m;
}

MetricValue gauge(std::string name, double value) {
  MetricValue m;
  m.name = std::move(name);
  m.kind = MetricKind::kGauge;
  m.gauge = value;
  return m;
}

TEST(ServiceCacheStats, AggregatesPerCacheRowsInFirstAppearanceOrder) {
  MetricsSnapshot snapshot;
  snapshot.metrics.push_back(counter("svc.requests", 9));  // not a cache
  snapshot.metrics.push_back(counter("cache.calibration.hit", 30));
  snapshot.metrics.push_back(counter("cache.calibration.miss", 6));
  snapshot.metrics.push_back(gauge("cache.calibration.entries", 6));
  snapshot.metrics.push_back(counter("cache.static_optimal.miss", 2));
  snapshot.metrics.push_back(gauge("cache.static_optimal.entries", 2));

  const std::vector<CacheStat> stats = service_cache_stats(snapshot);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "calibration");
  EXPECT_EQ(stats[0].hits, 30u);
  EXPECT_EQ(stats[0].misses, 6u);
  EXPECT_EQ(stats[0].entries, 6u);
  EXPECT_EQ(stats[1].name, "static_optimal");
  EXPECT_EQ(stats[1].hits, 0u);
  EXPECT_EQ(stats[1].misses, 2u);
  EXPECT_EQ(stats[1].entries, 2u);
}

TEST(ServiceCacheStats, EmptySnapshotYieldsNoRows) {
  EXPECT_TRUE(service_cache_stats(MetricsSnapshot{}).empty());
}

TEST(ServiceCacheStats, NamedOnceCachePublishesThroughTheRegistry) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.set_enabled(true);

  OnceCache<int, int> cache("svc_test_tier");
  // The first lookup registers the metric ids (growing the layout), so
  // the thread shard must re-attach before its bumps are counted.
  EXPECT_EQ(cache.get_or_compute(0, [] { return 1; }), 1);
  obs::ensure_thread_registered();

  EXPECT_EQ(cache.get_or_compute(1, [] { return 10; }), 10);
  EXPECT_EQ(cache.get_or_compute(1, [] { return 99; }), 10);  // hit
  EXPECT_EQ(cache.get_or_compute(2, [] { return 20; }), 20);

  const std::vector<CacheStat> stats =
      service_cache_stats(registry.take_snapshot());
  const CacheStat* row = nullptr;
  for (const CacheStat& s : stats) {
    if (s.name == "svc_test_tier") row = &s;
  }
  ASSERT_NE(row, nullptr);
  EXPECT_GE(row->hits, 1u);
  EXPECT_GE(row->misses, 2u);
  EXPECT_EQ(row->entries, 3u);
  registry.set_enabled(false);
}

}  // namespace
}  // namespace svc
}  // namespace hars
