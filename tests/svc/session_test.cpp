// Admission-control behaviour of the SessionManager: client cap,
// per-session campaign quota, global queued-case budget, and drain.
#include "svc/session.hpp"

#include <gtest/gtest.h>

namespace hars {
namespace svc {
namespace {

SessionLimits tiny_limits() {
  SessionLimits limits;
  limits.max_clients = 2;
  limits.max_campaigns_per_client = 2;
  limits.max_queued_cases = 100;
  return limits;
}

TEST(SessionManager, ClientCapIsEnforced) {
  SessionManager sessions(tiny_limits());
  const auto a = sessions.open_session();
  const auto b = sessions.open_session();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
  EXPECT_FALSE(sessions.open_session().has_value());
  EXPECT_EQ(sessions.active_sessions(), 2u);

  sessions.close_session(*a);
  EXPECT_EQ(sessions.active_sessions(), 1u);
  EXPECT_TRUE(sessions.open_session().has_value());
}

TEST(SessionManager, CampaignQuotaPerSession) {
  SessionManager sessions(tiny_limits());
  const std::uint64_t s = *sessions.open_session();
  EXPECT_FALSE(sessions.admit_campaign(s, 10).has_value());
  EXPECT_FALSE(sessions.admit_campaign(s, 10).has_value());
  const auto rejected = sessions.admit_campaign(s, 10);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(*rejected, ErrorCode::kQuotaExceeded);

  sessions.release_campaign(s, 10);
  EXPECT_FALSE(sessions.admit_campaign(s, 10).has_value());
  EXPECT_EQ(sessions.active_campaigns(), 2u);
}

TEST(SessionManager, GlobalCaseBudget) {
  SessionManager sessions(tiny_limits());
  const std::uint64_t a = *sessions.open_session();
  const std::uint64_t b = *sessions.open_session();
  EXPECT_FALSE(sessions.admit_campaign(a, 80).has_value());
  EXPECT_EQ(sessions.queued_cases(), 80u);

  const auto rejected = sessions.admit_campaign(b, 30);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(*rejected, ErrorCode::kQueueFull);

  // Exactly at the budget is admitted.
  EXPECT_FALSE(sessions.admit_campaign(b, 20).has_value());
  EXPECT_EQ(sessions.queued_cases(), 100u);

  sessions.release_campaign(a, 80);
  EXPECT_EQ(sessions.queued_cases(), 20u);
  EXPECT_FALSE(sessions.admit_campaign(b, 30).has_value());
}

TEST(SessionManager, ClosingASessionFreesItsQuotaSlot) {
  SessionManager sessions(tiny_limits());
  const std::uint64_t a = *sessions.open_session();
  EXPECT_FALSE(sessions.admit_campaign(a, 10).has_value());
  sessions.release_campaign(a, 10);
  sessions.close_session(a);
  EXPECT_EQ(sessions.active_sessions(), 0u);
  EXPECT_EQ(sessions.active_campaigns(), 0u);
  EXPECT_EQ(sessions.queued_cases(), 0u);
}

TEST(SessionManager, AdmittingForUnknownSessionFails) {
  SessionManager sessions(tiny_limits());
  const auto rejected = sessions.admit_campaign(999, 1);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(*rejected, ErrorCode::kInternal);
}

TEST(SessionManager, DrainRejectsNewWorkButKeepsExisting) {
  SessionManager sessions(tiny_limits());
  const std::uint64_t a = *sessions.open_session();
  EXPECT_FALSE(sessions.admit_campaign(a, 10).has_value());

  EXPECT_FALSE(sessions.draining());
  sessions.begin_drain();
  sessions.begin_drain();  // idempotent
  EXPECT_TRUE(sessions.draining());

  EXPECT_FALSE(sessions.open_session().has_value());
  const auto rejected = sessions.admit_campaign(a, 1);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(*rejected, ErrorCode::kDraining);

  // The in-flight campaign still releases cleanly.
  sessions.release_campaign(a, 10);
  EXPECT_EQ(sessions.queued_cases(), 0u);
}

}  // namespace
}  // namespace svc
}  // namespace hars
