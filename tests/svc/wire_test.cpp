// Frame envelope round-trips and malformed-stream handling over a real
// socketpair — the same Socket path the daemon and client use.
#include "svc/wire.hpp"

#include <sys/socket.h>

#include <string>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "svc/net.hpp"

namespace hars {
namespace svc {
namespace {

std::pair<Socket, Socket> make_pair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Socket(fds[0]), Socket(fds[1])};
}

TEST(WireTest, EncodeFrameShape) {
  EXPECT_EQ(encode_frame("{\"verb\":\"ping\"}"), "15\n{\"verb\":\"ping\"}\n");
  EXPECT_EQ(encode_frame(""), "0\n\n");
}

TEST(WireTest, RoundTripSingleFrame) {
  auto [a, b] = make_pair();
  ASSERT_TRUE(write_frame(a, "{\"id\":1}"));
  std::string payload;
  ASSERT_EQ(read_frame(b, &payload), FrameResult::kOk);
  EXPECT_EQ(payload, "{\"id\":1}");
}

TEST(WireTest, RoundTripManyFramesPreservesOrderAndBytes) {
  auto [a, b] = make_pair();
  std::thread writer([&a = a]() {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(write_frame(a, "{\"seq\":" + std::to_string(i) + "}"));
    }
    a.shutdown_send();
  });
  std::string payload;
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(read_frame(b, &payload), FrameResult::kOk);
    EXPECT_EQ(payload, "{\"seq\":" + std::to_string(i) + "}");
  }
  EXPECT_EQ(read_frame(b, &payload), FrameResult::kClosed);
  writer.join();
}

TEST(WireTest, CleanEofBetweenFramesIsClosed) {
  auto [a, b] = make_pair();
  a.close();
  std::string payload;
  EXPECT_EQ(read_frame(b, &payload), FrameResult::kClosed);
}

TEST(WireTest, TruncatedPayloadIsError) {
  auto [a, b] = make_pair();
  ASSERT_TRUE(a.write_all("10\n{\"id\""));  // promises 10 bytes, sends 6
  a.close();
  std::string payload;
  std::string error;
  EXPECT_EQ(read_frame(b, &payload, &error), FrameResult::kError);
  EXPECT_FALSE(error.empty());
}

TEST(WireTest, MalformedLengthLineIsError) {
  auto [a, b] = make_pair();
  ASSERT_TRUE(a.write_all("xyz\n{}\n"));
  std::string payload;
  EXPECT_EQ(read_frame(b, &payload), FrameResult::kError);
}

TEST(WireTest, MissingTrailingNewlineIsError) {
  auto [a, b] = make_pair();
  ASSERT_TRUE(a.write_all("2\n{}X"));
  std::string payload;
  EXPECT_EQ(read_frame(b, &payload), FrameResult::kError);
}

TEST(WireTest, OversizeDeclaredLengthIsRefused) {
  auto [a, b] = make_pair();
  const std::string header =
      std::to_string(kMaxFrameBytes + 1) + "\n";
  ASSERT_TRUE(a.write_all(header));
  std::string payload;
  std::string error;
  EXPECT_EQ(read_frame(b, &payload, &error), FrameResult::kOversize);
  EXPECT_NE(error.find("frame"), std::string::npos);
}

TEST(WireTest, WriteToClosedPeerFails) {
  auto [a, b] = make_pair();
  b.close();
  // The first write may land in the kernel buffer; keep pushing until the
  // RST surfaces. MSG_NOSIGNAL in write_all keeps SIGPIPE away.
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !write_frame(a, std::string(1024, 'x'));
  }
  EXPECT_TRUE(failed);
}

}  // namespace
}  // namespace svc
}  // namespace hars
