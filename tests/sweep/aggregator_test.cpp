#include "sweep/aggregator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hars {
namespace {

Record row(const std::string& variant, const std::string& bench, double pp,
           double util) {
  Record r;
  r.set("variant", variant);
  r.set("bench", bench);
  r.set("perf_per_watt", pp);
  r.set("manager_cpu_pct", util);
  return r;
}

TEST(Aggregator, GroupedGeomeanAndMean) {
  std::vector<Record> rows;
  rows.push_back(row("HARS-E", "SW", 1.0, 2.0));
  rows.push_back(row("HARS-E", "BO", 4.0, 4.0));
  rows.push_back(row("Baseline", "SW", 16.0, 0.0));

  Aggregator agg;
  agg.group_by({"variant"}).geomean("perf_per_watt").mean("manager_cpu_pct");
  const std::vector<Record> out = agg.apply(rows);

  ASSERT_EQ(out.size(), 2u);  // First-appearance order.
  EXPECT_EQ(out[0].text("variant"), "HARS-E");
  EXPECT_DOUBLE_EQ(out[0].number("geomean_perf_per_watt"), 2.0);
  EXPECT_DOUBLE_EQ(out[0].number("mean_manager_cpu_pct"), 3.0);
  EXPECT_DOUBLE_EQ(out[0].number("rows"), 2.0);
  EXPECT_EQ(out[1].text("variant"), "Baseline");
  EXPECT_DOUBLE_EQ(out[1].number("geomean_perf_per_watt"), 16.0);
  EXPECT_DOUBLE_EQ(out[1].number("rows"), 1.0);
}

TEST(Aggregator, MultiKeyGrouping) {
  std::vector<Record> rows;
  rows.push_back(row("A", "SW", 2.0, 0.0));
  rows.push_back(row("A", "BO", 8.0, 0.0));
  rows.push_back(row("A", "SW", 8.0, 0.0));

  Aggregator agg;
  agg.group_by({"variant", "bench"}).geomean("perf_per_watt");
  const std::vector<Record> out = agg.apply(rows);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].text("bench"), "SW");
  EXPECT_DOUBLE_EQ(out[0].number("geomean_perf_per_watt"), 4.0);
  EXPECT_DOUBLE_EQ(out[1].number("geomean_perf_per_watt"), 8.0);
}

TEST(Aggregator, MissingColumnReducesToNaN) {
  std::vector<Record> rows;
  Record r;
  r.set("variant", "A");
  rows.push_back(r);

  Aggregator agg;
  agg.group_by({"variant"}).geomean("perf_per_watt");
  const std::vector<Record> out = agg.apply(rows);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(std::isnan(out[0].number("geomean_perf_per_watt")));
  EXPECT_DOUBLE_EQ(out[0].number("rows"), 1.0);
}

TEST(Aggregator, EmptyInputYieldsNoGroups) {
  Aggregator agg;
  agg.group_by({"variant"}).mean("x");
  EXPECT_TRUE(agg.apply(std::vector<Record>{}).empty());
}

}  // namespace
}  // namespace hars
