#include "sweep/result_sink.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

namespace hars {
namespace {

Record sample_record(const std::string& bench, double pp, std::int64_t beats) {
  Record r;
  r.set("bench", bench);
  r.set("perf_per_watt", pp);
  r.set("heartbeats", beats);
  return r;
}

TEST(Record, SetOnExistingKeyReplacesInPlace) {
  Record r;
  r.set("a", 1.0).set("b", "x").set("a", "overridden");
  ASSERT_EQ(r.cells().size(), 2u);
  EXPECT_EQ(r.cells()[0].key, "a");  // Original column position kept.
  EXPECT_EQ(r.text("a"), "overridden");
  EXPECT_TRUE(std::isnan(r.number("a")));  // No longer numeric.
  r.set("b", 7.5);
  EXPECT_DOUBLE_EQ(r.number("b"), 7.5);
}

TEST(Record, CellAccess) {
  const Record r = sample_record("SW", 0.25, 42);
  EXPECT_EQ(r.text("bench"), "SW");
  EXPECT_DOUBLE_EQ(r.number("perf_per_watt"), 0.25);
  EXPECT_DOUBLE_EQ(r.number("heartbeats"), 42.0);
  EXPECT_TRUE(std::isnan(r.number("bench")));     // Non-numeric cell.
  EXPECT_TRUE(std::isnan(r.number("missing")));
  EXPECT_EQ(r.text("missing"), "");
}

TEST(Record, FormatNumberIsShortestRoundTrip) {
  EXPECT_EQ(format_number(0.5), "0.5");
  EXPECT_EQ(format_number(2.0), "2");
  EXPECT_EQ(format_number(0.1), "0.1");
  EXPECT_EQ(format_number(-3.25), "-3.25");
}

TEST(FindRecord, MatchesAllPairs) {
  std::vector<Record> rows;
  rows.push_back(sample_record("SW", 0.5, 1));
  rows.push_back(sample_record("BO", 0.75, 2));
  const Record* hit = find_record(rows, {{"bench", "BO"}});
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->number("perf_per_watt"), 0.75);
  EXPECT_EQ(find_record(rows, {{"bench", "FL"}}), nullptr);
  EXPECT_DOUBLE_EQ(record_number(rows, {{"bench", "SW"}}, "perf_per_watt"),
                   0.5);
  EXPECT_TRUE(
      std::isnan(record_number(rows, {{"bench", "FL"}}, "perf_per_watt")));
}

TEST(TableSink, CollectsRows) {
  TableSink sink;
  sink.write(sample_record("SW", 0.5, 1));
  sink.write(sample_record("BO", 0.75, 2));
  ASSERT_EQ(sink.rows().size(), 2u);
  EXPECT_EQ(sink.rows()[1].text("bench"), "BO");
}

TEST(CsvSink, GoldenOutput) {
  std::ostringstream out;
  CsvSink sink(out);
  sink.write(sample_record("SW", 0.5, 12));
  sink.write(sample_record("BO", 2.0, 7));
  sink.flush();
  EXPECT_EQ(out.str(),
            "bench,perf_per_watt,heartbeats\n"
            "SW,0.5,12\n"
            "BO,2,7\n");
}

TEST(CsvSink, EscapesAndAlignsToHeader) {
  std::ostringstream out;
  CsvSink sink(out);
  Record first;
  first.set("label", "has,comma");
  first.set("value", 1.0);
  sink.write(first);
  // Second record: missing "label", extra key ignored by the header.
  Record second;
  second.set("value", 2.0);
  second.set("extra", 9.0);
  sink.write(second);
  EXPECT_EQ(out.str(),
            "label,value\n"
            "\"has,comma\",1\n"
            ",2\n");
}

TEST(JsonlSink, GoldenOutput) {
  std::ostringstream out;
  JsonlSink sink(out);
  sink.write(sample_record("SW", 0.5, 12));
  Record quirky;
  quirky.set("name", "say \"hi\"\n");
  quirky.set("bad", std::nan(""));
  sink.write(quirky);
  sink.flush();
  EXPECT_EQ(out.str(),
            "{\"bench\":\"SW\",\"perf_per_watt\":0.5,\"heartbeats\":12}\n"
            "{\"name\":\"say \\\"hi\\\"\\n\",\"bad\":null}\n");
}

}  // namespace
}  // namespace hars
