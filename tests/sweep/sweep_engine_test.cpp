// The sweep engine's determinism contract: the same SweepSpec run with 1
// worker and with N workers produces bit-identical per-case RunMetrics
// and byte-identical sink output (record order included).
#include "sweep/sweep_engine.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "sweep/aggregator.hpp"

namespace hars {
namespace {

/// Small, calibration-free campaign: explicit targets and cold-start
/// protocol keep each case to one short simulation.
SweepSpec small_spec() {
  SweepSpec spec;
  spec.name("engine_test")
      .base([](ExperimentBuilder& b) {
        b.protocol(RunProtocol::kColdStart).duration(5 * kUsPerSec);
      })
      .benchmarks({ParsecBenchmark::kSwaptions, ParsecBenchmark::kBodytrack})
      .variants({"Baseline", "HARS-E"})
      .axis("target", {AxisPoint("2hps", [](ExperimentBuilder& b) {
               b.target(PerfTarget::around(2.0));
             })});
  return spec;
}

void expect_metrics_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.norm_perf, b.norm_perf);
  EXPECT_EQ(a.avg_rate_hps, b.avg_rate_hps);
  EXPECT_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_EQ(a.perf_per_watt, b.perf_per_watt);
  EXPECT_EQ(a.manager_cpu_pct, b.manager_cpu_pct);
  EXPECT_EQ(a.heartbeats, b.heartbeats);
  EXPECT_EQ(a.in_window_fraction, b.in_window_fraction);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.energy_per_beat_j, b.energy_per_beat_j);
}

std::string csv_of(const SweepReport& report) {
  std::ostringstream out;
  CsvSink csv(out);
  for (const CaseOutcome& outcome : report.outcomes) {
    for (const Record& record : outcome.records) csv.write(record);
  }
  return out.str();
}

TEST(SweepEngine, SerialAndParallelRunsAreBitIdentical) {
  const SweepSpec spec = small_spec();

  SweepEngine serial(SweepOptions{.jobs = 1});
  const SweepReport a = serial.run(spec);

  SweepEngine parallel(SweepOptions{.jobs = 4});
  const SweepReport b = parallel.run(spec);

  ASSERT_EQ(a.outcomes.size(), 4u);
  ASSERT_EQ(b.outcomes.size(), a.outcomes.size());
  EXPECT_EQ(a.failed, 0u);
  EXPECT_EQ(b.failed, 0u);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_TRUE(a.outcomes[i].ok()) << a.outcomes[i].error;
    ASSERT_TRUE(b.outcomes[i].ok()) << b.outcomes[i].error;
    ASSERT_EQ(a.outcomes[i].result.apps.size(),
              b.outcomes[i].result.apps.size());
    for (std::size_t app = 0; app < a.outcomes[i].result.apps.size(); ++app) {
      expect_metrics_identical(a.outcomes[i].result.apps[app].metrics,
                               b.outcomes[i].result.apps[app].metrics);
    }
  }
  EXPECT_EQ(csv_of(a), csv_of(b));
}

TEST(SweepEngine, DerivedSeedsAreSchedulingIndependent) {
  SweepSpec spec = small_spec();
  spec.seed_mode(SeedMode::kDerived).base_seed(99);

  SweepEngine serial(SweepOptions{.jobs = 1});
  SweepEngine parallel(SweepOptions{.jobs = 3});
  const SweepReport a = serial.run(spec);
  const SweepReport b = parallel.run(spec);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(csv_of(a), csv_of(b));
  // Every record carries the coordinate-derived seed column.
  for (const CaseOutcome& outcome : a.outcomes) {
    ASSERT_FALSE(outcome.records.empty());
    EXPECT_EQ(outcome.records[0].text("seed"),
              std::to_string(outcome.sweep_case.seed));
  }
}

TEST(SweepEngine, SinksReceiveRecordsInCaseOrder) {
  const SweepSpec spec = small_spec();
  TableSink sink;
  SweepEngine engine(SweepOptions{.jobs = 4});
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  ASSERT_EQ(report.outcomes.size(), 4u);
  ASSERT_EQ(sink.rows().size(), 4u);  // One app per case.
  for (std::size_t i = 0; i < sink.rows().size(); ++i) {
    EXPECT_DOUBLE_EQ(sink.rows()[i].number("case"), static_cast<double>(i));
  }
}

TEST(SweepEngine, RecordsCarryCoordinatesAndMetrics) {
  const SweepSpec spec = small_spec();
  SweepEngine engine(SweepOptions{.jobs = 1});
  const SweepReport report = engine.run(spec);
  const Record& first = report.outcomes[0].records.at(0);
  EXPECT_EQ(first.text("bench"), "SW");
  EXPECT_EQ(first.text("variant"), "Baseline");
  EXPECT_EQ(first.text("app"), "SW");
  EXPECT_GT(first.number("avg_rate_hps"), 0.0);
  EXPECT_GT(first.number("avg_power_w"), 0.0);
}

TEST(SweepEngine, CustomRunnerRowsGetCoordinatePrefix) {
  SweepSpec spec;
  spec.values("x", {2.0, 3.0}, nullptr).case_runner([](const SweepCase& c) {
    Record r;
    r.set("square", c.number("x") * c.number("x"));
    return std::vector<Record>{r};
  });
  TableSink sink;
  SweepEngine engine(SweepOptions{.jobs = 2});
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  EXPECT_EQ(report.failed, 0u);
  ASSERT_EQ(sink.rows().size(), 2u);
  EXPECT_DOUBLE_EQ(sink.rows()[0].number("x"), 2.0);
  EXPECT_DOUBLE_EQ(sink.rows()[0].number("square"), 4.0);
  EXPECT_DOUBLE_EQ(sink.rows()[1].number("square"), 9.0);
}

TEST(SweepEngine, CaseFailureIsCapturedNotFatal) {
  SweepSpec spec;
  spec.values("x", {1.0, 2.0}, nullptr).case_runner([](const SweepCase& c) {
    if (c.number("x") == 1.0) throw std::runtime_error("boom");
    Record r;
    r.set("ok", 1.0);
    return std::vector<Record>{r};
  });
  TableSink sink;
  SweepEngine engine(SweepOptions{.jobs = 2});
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.outcomes[0].error, "boom");
  EXPECT_TRUE(report.outcomes[1].ok());
  ASSERT_EQ(sink.rows().size(), 1u);  // Failed case emits nothing.
  EXPECT_DOUBLE_EQ(sink.rows()[0].number("x"), 2.0);
}

TEST(SweepEngine, InvalidExperimentConfigSurfacesAsCaseError) {
  SweepSpec spec;
  spec.variants({"NoSuchVariant"});  // No app either — build() throws.
  SweepEngine engine(SweepOptions{.jobs = 1});
  const SweepReport report = engine.run(spec);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_FALSE(report.outcomes[0].error.empty());
}

TEST(SweepEngine, RecordTimingAddsColumnsOnlyWhenOptedIn) {
  const SweepSpec spec = small_spec();

  // Default: no timing columns — the byte-identity contract's columns.
  SweepEngine plain(SweepOptions{.jobs = 2});
  const SweepReport a = plain.run(spec);
  for (const CaseOutcome& outcome : a.outcomes) {
    for (const Record& r : outcome.records) {
      EXPECT_EQ(r.find("case_wall_ms"), nullptr);
      EXPECT_EQ(r.find("worker"), nullptr);
    }
  }

  // Opted in: every record carries the case wall clock and the worker
  // index that ran it.
  SweepEngine timed(SweepOptions{.jobs = 2, .record_timing = true});
  const SweepReport b = timed.run(spec);
  for (const CaseOutcome& outcome : b.outcomes) {
    ASSERT_FALSE(outcome.records.empty());
    for (const Record& r : outcome.records) {
      const RecordCell* wall = r.find("case_wall_ms");
      ASSERT_NE(wall, nullptr);
      EXPECT_GE(wall->number, 0.0);
      EXPECT_EQ(wall->number, outcome.wall_ms);
      const RecordCell* worker = r.find("worker");
      ASSERT_NE(worker, nullptr);
      EXPECT_GE(worker->number, 0.0);  // Pool-run: a real worker index.
      EXPECT_LT(worker->number, 2.0);
    }
  }

  // Inline (jobs=1) cases report worker -1.
  SweepEngine inline_engine(SweepOptions{.jobs = 1, .record_timing = true});
  const SweepReport c = inline_engine.run(spec);
  for (const CaseOutcome& outcome : c.outcomes) {
    for (const Record& r : outcome.records) {
      EXPECT_EQ(r.find("worker")->number, -1.0);
    }
  }
}

TEST(SweepEngine, AggregatorOverEngineRecords) {
  const SweepSpec spec = small_spec();
  TableSink sink;
  SweepEngine engine(SweepOptions{.jobs = 2});
  engine.add_sink(sink);
  engine.run(spec);
  Aggregator agg;
  agg.group_by({"variant"}).geomean("avg_rate_hps");
  const std::vector<Record> out = agg.apply(sink.rows());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].text("variant"), "Baseline");
  EXPECT_DOUBLE_EQ(out[0].number("rows"), 2.0);
  EXPECT_GT(out[0].number("geomean_avg_rate_hps"), 0.0);
}

}  // namespace
}  // namespace hars
