#include "sweep/sweep_spec.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hars {
namespace {

TEST(SweepSpec, CartesianExpansionRowMajor) {
  SweepSpec spec;
  spec.benchmarks({ParsecBenchmark::kSwaptions, ParsecBenchmark::kBodytrack})
      .search_distances({1, 3, 5});
  const std::vector<SweepCase> cases = spec.expand();
  ASSERT_EQ(cases.size(), 6u);
  // Last axis varies fastest.
  EXPECT_EQ(cases[0].label("bench"), "SW");
  EXPECT_EQ(cases[0].label("distance"), "1");
  EXPECT_EQ(cases[1].label("bench"), "SW");
  EXPECT_EQ(cases[1].label("distance"), "3");
  EXPECT_EQ(cases[3].label("bench"), "BO");
  EXPECT_EQ(cases[3].label("distance"), "1");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(cases[i].index, i);
  }
}

TEST(SweepSpec, NumericAxesCarryNumbers) {
  SweepSpec spec;
  spec.target_fractions({0.5, 0.75}).search_distances({7});
  const std::vector<SweepCase> cases = spec.expand();
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_DOUBLE_EQ(cases[0].number("fraction"), 0.5);
  EXPECT_DOUBLE_EQ(cases[1].number("fraction"), 0.75);
  EXPECT_DOUBLE_EQ(cases[0].number("distance"), 7.0);
  EXPECT_EQ(cases[0].label("fraction"), "0.5");
  EXPECT_TRUE(std::isnan(cases[0].number("no_such_axis")));
  EXPECT_EQ(cases[0].label("no_such_axis"), "");
}

TEST(SweepSpec, VariantAxisMutatesBuilder) {
  SweepSpec spec;
  spec.benchmarks({ParsecBenchmark::kSwaptions}).variants({"HARS-EI"});
  const std::vector<SweepCase> cases = spec.expand();
  ASSERT_EQ(cases.size(), 1u);
  ExperimentBuilder builder;
  for (const BuilderMutator& mutate : cases[0].mutators) mutate(builder);
  const Experiment exp = builder.build();
  EXPECT_EQ(exp.spec().variant, "HARS-EI");
  ASSERT_EQ(exp.spec().apps.size(), 1u);
  EXPECT_EQ(exp.spec().apps[0].label, "SW");
}

TEST(SweepSpec, PureParameterAxisHasNoMutator) {
  SweepSpec spec;
  spec.values("t", {1.0, 2.0}, nullptr);
  const std::vector<SweepCase> cases = spec.expand();
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_TRUE(cases[0].mutators.empty());
  EXPECT_DOUBLE_EQ(cases[1].number("t"), 2.0);
}

TEST(SweepSpec, ExplicitCasesAppendAfterGrid) {
  SweepSpec spec;
  spec.search_distances({1});
  spec.add_case({CaseCoord{"custom", "special", 42.0}}, {});
  const std::vector<SweepCase> cases = spec.expand();
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_EQ(cases[0].label("distance"), "1");
  EXPECT_EQ(cases[1].label("custom"), "special");
  EXPECT_DOUBLE_EQ(cases[1].number("custom"), 42.0);
  EXPECT_EQ(cases[1].index, 1u);
  EXPECT_NE(cases[1].seed, 0u);
}

TEST(SweepSpec, EmptyAxisYieldsNoCases) {
  SweepSpec spec;
  spec.benchmarks({ParsecBenchmark::kSwaptions}).variants({});
  EXPECT_TRUE(spec.expand().empty());
}

TEST(SweepSpec, DerivedSeedsAreCoordinateStableAndDistinct) {
  SweepSpec spec;
  spec.base_seed(7)
      .benchmarks({ParsecBenchmark::kSwaptions, ParsecBenchmark::kBodytrack})
      .search_distances({1, 3});
  const std::vector<SweepCase> a = spec.expand();
  const std::vector<SweepCase> b = spec.expand();
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Same spec => same seeds (independent of expansion call).
    EXPECT_EQ(a[i].seed, b[i].seed);
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_NE(a[i].seed, a[j].seed);
    }
  }
  // The seed depends on coordinates, not on the case's grid position.
  EXPECT_EQ(a[1].seed, derive_case_seed(7, a[1].coords));
  // A different campaign seed shifts every case seed.
  SweepSpec other = spec;
  other.base_seed(8);
  EXPECT_NE(other.expand()[0].seed, a[0].seed);
}

}  // namespace
}  // namespace hars
