#include "sweep/work_stealing_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace hars {
namespace {

TEST(WorkStealingPool, RunsEveryTask) {
  WorkStealingPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(WorkStealingPool, ClampsWorkerCount) {
  WorkStealingPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(WorkStealingPool, WaitIdleWithNoTasksReturns) {
  WorkStealingPool pool(2);
  pool.wait_idle();  // Must not hang.
}

TEST(WorkStealingPool, TasksSubmittedFromTasksRun) {
  WorkStealingPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&pool, &count] {
      ++count;
      pool.submit([&count] { ++count; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 40);
}

TEST(WorkStealingPool, UnevenWorkIsStolen) {
  // One long task pins a worker; the short tasks dealt to its deque must
  // be stolen by the others for the pool to finish promptly.
  WorkStealingPool pool(4);
  std::atomic<int> count{0};
  pool.submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
  EXPECT_GT(pool.steal_count(), 0u);
}

TEST(WorkStealingPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    WorkStealingPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { ++count; });
    }
  }
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace hars
