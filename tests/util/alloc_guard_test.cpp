// AllocGuard / AllowScope semantics: counting, violation detection,
// exemption scopes, re-tightening and failure-handler dispatch.
//
// All assertions run AFTER the guard under test has been destroyed: the
// test framework itself allocates, so reads are captured into locals
// while the guard is alive and checked once the region is closed.
#include "util/alloc_guard.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace hars {
namespace {

struct RecordedFailure {
  std::string what;
  std::uint64_t violations = 0;
};

std::vector<RecordedFailure>& recorded() {
  static std::vector<RecordedFailure> failures;
  return failures;
}

void recording_handler(const char* what, std::uint64_t violations) {
  recorded().push_back(RecordedFailure{what, violations});
}

/// Installs the recording handler for one test body.
class HandlerScope {
 public:
  HandlerScope() : previous_(allocg::set_failure_handler(recording_handler)) {
    recorded().clear();
  }
  ~HandlerScope() { allocg::set_failure_handler(previous_); }

 private:
  allocg::FailureHandler previous_;
};

TEST(AllocGuard, CountingIsCompiledInByDefault) {
  // The default build (HARS_ALLOC_GUARD=ON) replaces operator new; if
  // this fails the whole enforcement suite is silently disabled.
  EXPECT_TRUE(allocg::counting_compiled_in());
}

TEST(AllocGuard, ThreadAllocCounterAdvances) {
  if (!allocg::counting_compiled_in()) GTEST_SKIP();
  const std::uint64_t before = allocg::thread_allocs();
  // Direct operator calls: paired `delete new int(...)` expressions are
  // legally elidable (and GCC does elide them at -O2), which would make
  // this test vacuous.
  void* p = ::operator new(16);
  ::operator delete(p);
  EXPECT_GT(allocg::thread_allocs(), before);
}

TEST(AllocGuard, CleanRegionReportsNothing) {
  if (!allocg::counting_compiled_in()) GTEST_SKIP();
  HandlerScope handler;
  std::uint64_t allocs = 1;
  std::uint64_t violations = 1;
  {
    AllocGuard guard("clean");
    int x = 3;
    x += x;
    (void)x;
    allocs = guard.allocations();
    violations = guard.violations();
  }
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(violations, 0u);
  EXPECT_TRUE(recorded().empty());
}

TEST(AllocGuard, AllocationInsideGuardIsViolationAndFiresHandler) {
  if (!allocg::counting_compiled_in()) GTEST_SKIP();
  HandlerScope handler;
  std::uint64_t violations = 0;
  {
    AllocGuard guard("hot-region");
    ::operator delete(::operator new(16));
    violations = guard.violations();
  }
  EXPECT_EQ(violations, 1u);
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0].what, "hot-region");
  EXPECT_EQ(recorded()[0].violations, 1u);
}

TEST(AllocGuard, AllowScopeExemptsDeclaredAllocators) {
  if (!allocg::counting_compiled_in()) GTEST_SKIP();
  HandlerScope handler;
  std::uint64_t allocs = 0;
  std::uint64_t violations = 1;
  {
    AllocGuard guard("with-declared-allocator");
    {
      allocg::AllowScope allow("declared amortized growth");
      ::operator delete(::operator new(16));
    }
    allocs = guard.allocations();
    violations = guard.violations();
  }
  // Counted (the delta is real) but not a violation.
  EXPECT_GE(allocs, 1u);
  EXPECT_EQ(violations, 0u);
  EXPECT_TRUE(recorded().empty());
}

TEST(AllocGuard, GuardReTightensEnclosingAllowScope) {
  if (!allocg::counting_compiled_in()) GTEST_SKIP();
  HandlerScope handler;
  std::uint64_t inner_violations = 0;
  std::uint64_t after_restore_delta = 1;
  {
    AllocGuard outer("step");
    // A manager tick is a declared allocator under the step's guard...
    allocg::AllowScope allow("manager bookkeeping");
    {
      // ...but the search inside it must stay strict.
      AllocGuard inner("search");
      ::operator delete(::operator new(16));
      inner_violations = inner.violations();
      inner.dismiss();
    }
    // The inner guard's destructor restored the AllowScope's permission:
    // with the outer guard still live, this allocation is exempt again.
    const std::uint64_t before = outer.violations();
    ::operator delete(::operator new(16));
    after_restore_delta = outer.violations() - before;
    outer.dismiss();
  }
  EXPECT_EQ(inner_violations, 1u);
  EXPECT_EQ(after_restore_delta, 0u);
  EXPECT_TRUE(recorded().empty());  // Both guards were dismissed.
}

TEST(AllocGuard, DismissSuppressesHandlerButKeepsCounts) {
  if (!allocg::counting_compiled_in()) GTEST_SKIP();
  HandlerScope handler;
  std::uint64_t violations = 0;
  {
    AllocGuard guard("dismissed");
    ::operator delete(::operator new(16));
    violations = guard.violations();
    guard.dismiss();
  }
  EXPECT_EQ(violations, 1u);
  EXPECT_TRUE(recorded().empty());
}

TEST(AllocGuard, ScopeCountsAttributeAllocationsToAllowScopes) {
  if (!allocg::counting_compiled_in()) GTEST_SKIP();
  std::uint64_t before = 0;
  for (const allocg::ScopeCount& sc : allocg::thread_scope_counts()) {
    if (std::string(sc.name) == "scope-count-test") before = sc.allocs;
  }
  {
    allocg::AllowScope allow("scope-count-test");
    ::operator delete(::operator new(16));
    ::operator delete(::operator new(32));
  }
  std::uint64_t after = 0;
  bool found = false;
  for (const allocg::ScopeCount& sc : allocg::thread_scope_counts()) {
    if (std::string(sc.name) == "scope-count-test") {
      after = sc.allocs;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_EQ(after - before, 2u);
}

TEST(AllocGuard, InnerGuardSuspendsScopeAttribution) {
  if (!allocg::counting_compiled_in()) GTEST_SKIP();
  HandlerScope handler;
  {
    allocg::AllowScope allow("suspended-scope-test");
    // An inner guard re-tightens: the allocation below is a violation of
    // the inner guard, NOT an allocation of the enclosing scope.
    AllocGuard inner("strict");
    ::operator delete(::operator new(16));
    inner.dismiss();
  }
  std::uint64_t count = 0;
  for (const allocg::ScopeCount& sc : allocg::thread_scope_counts()) {
    if (std::string(sc.name) == "suspended-scope-test") count = sc.allocs;
  }
  EXPECT_EQ(count, 0u);
}

TEST(AllocGuard, NestedGuardsReportIndependently) {
  if (!allocg::counting_compiled_in()) GTEST_SKIP();
  HandlerScope handler;
  std::uint64_t outer_violations = 0;
  std::uint64_t inner_violations = 0;
  {
    AllocGuard outer("outer");
    {
      AllocGuard inner("inner");
      ::operator delete(::operator new(16));
      inner_violations = inner.violations();
      inner.dismiss();
    }
    outer_violations = outer.violations();
    outer.dismiss();
  }
  // The single disallowed allocation is visible to both live guards.
  EXPECT_EQ(inner_violations, 1u);
  EXPECT_EQ(outer_violations, 1u);
}

}  // namespace
}  // namespace hars
