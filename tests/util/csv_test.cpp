#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hars {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaQuoted) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/hars_csv_test.csv";
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.ok());
    w.header({"a", "b"});
    w.row({1.5, 2.0});
    w.raw_row({"x", "y,z"});
  }
  const std::string content = read_file(path);
  EXPECT_EQ(content, "a,b\n1.5,2\nx,\"y,z\"\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hars
