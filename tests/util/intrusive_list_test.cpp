#include "util/intrusive_list.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hars {
namespace {

struct Node : IntrusiveListNode<Node> {
  int value = 0;
  explicit Node(int v) : value(v) {}
};

std::vector<int> values(const IntrusiveList<Node>& list) {
  std::vector<int> out;
  list.for_each([&](Node& n) { out.push_back(n.value); });
  return out;
}

TEST(IntrusiveList, EmptyList) {
  IntrusiveList<Node> list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.head(), nullptr);
}

TEST(IntrusiveList, PushBackPreservesOrder) {
  IntrusiveList<Node> list;
  Node a(1), b(2), c(3);
  list.push_back(&a);
  list.push_back(&b);
  list.push_back(&c);
  EXPECT_EQ(values(list), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(list.size(), 3u);
}

TEST(IntrusiveList, RemoveHeadMiddleTail) {
  IntrusiveList<Node> list;
  Node a(1), b(2), c(3), d(4);
  for (Node* n : {&a, &b, &c, &d}) list.push_back(n);

  EXPECT_TRUE(list.remove(&b));  // middle
  EXPECT_EQ(values(list), (std::vector<int>{1, 3, 4}));
  EXPECT_TRUE(list.remove(&a));  // head
  EXPECT_EQ(values(list), (std::vector<int>{3, 4}));
  EXPECT_TRUE(list.remove(&d));  // tail
  EXPECT_EQ(values(list), (std::vector<int>{3}));
}

TEST(IntrusiveList, RemoveAbsentReturnsFalse) {
  IntrusiveList<Node> list;
  Node a(1), b(2);
  list.push_back(&a);
  EXPECT_FALSE(list.remove(&b));
}

TEST(IntrusiveList, ReinsertAfterRemove) {
  IntrusiveList<Node> list;
  Node a(1), b(2);
  list.push_back(&a);
  list.push_back(&b);
  ASSERT_TRUE(list.remove(&a));
  list.push_back(&a);  // tail now
  EXPECT_EQ(values(list), (std::vector<int>{2, 1}));
}

TEST(IntrusiveList, ForEachAllowsPayloadMutation) {
  IntrusiveList<Node> list;
  Node a(1), b(2);
  list.push_back(&a);
  list.push_back(&b);
  list.for_each([](Node& n) { n.value *= 10; });
  EXPECT_EQ(values(list), (std::vector<int>{10, 20}));
}

}  // namespace
}  // namespace hars
