// The consumer-side JSON reader: full-grammar round trips, ordered
// object members, escape handling, and precise errors on malformed
// input (these guard bench_report and docs_check, which parse files the
// repo's own writers produced).
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hars {
namespace json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_number(), 42.0);
  EXPECT_EQ(parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Value v = parse(R"({"a":[1,2,{"b":null}],"c":{"d":true}})");
  ASSERT_TRUE(v.is_object());
  const Value& a = v.at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.as_array().size(), 3u);
  EXPECT_EQ(a.as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(a.as_array()[2].at("b").is_null());
  EXPECT_TRUE(v.at("c").at("d").as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), std::runtime_error);
}

TEST(Json, ObjectsPreserveKeyOrder) {
  const Value v = parse(R"({"z":1,"a":2,"m":3})");
  const auto& members = v.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, DecodesEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  // \u escapes decode to UTF-8 (here: U+00E9, then U+2713).
  EXPECT_EQ(parse("\"caf\\u00e9\"").as_string(), "caf\xc3\xa9");
  EXPECT_EQ(parse("\"\\u2713\"").as_string(), "\xe2\x9c\x93");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("[1,]"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse("tru"), std::runtime_error);
  EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse("1 2"), std::runtime_error);  // Trailing junk.
  EXPECT_THROW(parse("nan"), std::runtime_error);
}

TEST(Json, TypeMismatchesThrow) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(v.as_number(), std::runtime_error);
  EXPECT_EQ(v.find("k"), nullptr);  // find on non-object: null, not throw.
}

TEST(Json, ParseFileErrorsOnMissingFile) {
  EXPECT_THROW(parse_file("/nonexistent/no.json"), std::runtime_error);
}

}  // namespace
}  // namespace json
}  // namespace hars
