// The consumer-side JSON reader: full-grammar round trips, ordered
// object members, escape handling, and precise errors on malformed
// input (these guard bench_report and docs_check, which parse files the
// repo's own writers produced).
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace hars {
namespace json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_number(), 42.0);
  EXPECT_EQ(parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Value v = parse(R"({"a":[1,2,{"b":null}],"c":{"d":true}})");
  ASSERT_TRUE(v.is_object());
  const Value& a = v.at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.as_array().size(), 3u);
  EXPECT_EQ(a.as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(a.as_array()[2].at("b").is_null());
  EXPECT_TRUE(v.at("c").at("d").as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), std::runtime_error);
}

TEST(Json, ObjectsPreserveKeyOrder) {
  const Value v = parse(R"({"z":1,"a":2,"m":3})");
  const auto& members = v.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, DecodesEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  // \u escapes decode to UTF-8 (here: U+00E9, then U+2713).
  EXPECT_EQ(parse("\"caf\\u00e9\"").as_string(), "caf\xc3\xa9");
  EXPECT_EQ(parse("\"\\u2713\"").as_string(), "\xe2\x9c\x93");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("[1,]"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse("tru"), std::runtime_error);
  EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse("1 2"), std::runtime_error);  // Trailing junk.
  EXPECT_THROW(parse("nan"), std::runtime_error);
}

TEST(Json, TypeMismatchesThrow) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(v.as_number(), std::runtime_error);
  EXPECT_EQ(v.find("k"), nullptr);  // find on non-object: null, not throw.
}

TEST(Json, ParseFileErrorsOnMissingFile) {
  EXPECT_THROW(parse_file("/nonexistent/no.json"), std::runtime_error);
}

TEST(JsonWriter, BuildsCompactDocumentsInCallOrder) {
  Writer w;
  w.begin_object()
      .key("verb")
      .value("submit")
      .key("cases")
      .value(std::int64_t{42})
      .key("axes")
      .begin_array()
      .value("bench")
      .value("variant")
      .end_array()
      .key("nested")
      .begin_object()
      .key("ok")
      .value(true)
      .key("nothing")
      .null()
      .end_object()
      .end_object();
  EXPECT_EQ(w.str(),
            R"({"verb":"submit","cases":42,"axes":["bench","variant"],)"
            R"("nested":{"ok":true,"nothing":null}})");
}

TEST(JsonWriter, EscapesEverythingTheParserMustDecode) {
  EXPECT_EQ(escape("a\"b\\c"), R"(a\"b\\c)");
  EXPECT_EQ(escape(std::string_view("\n\t\r\x01", 4)), "\\n\\t\\r\\u0001");
  EXPECT_EQ(escape("caf\xc3\xa9"), "caf\xc3\xa9");  // UTF-8 passes through.

  Writer w;
  w.begin_object().key("s").value("line1\nline2\t\"q\"\\\x02").end_object();
  const Value back = parse(w.str());
  EXPECT_EQ(back.at("s").as_string(), "line1\nline2\t\"q\"\\\x02");
}

TEST(JsonWriter, NumbersAreShortestRoundTripForm) {
  EXPECT_EQ(number_to_string(42.0), "42");  // Integral: no decimal point.
  EXPECT_EQ(number_to_string(0.1), "0.1");
  EXPECT_EQ(number_to_string(-3.5e2), "-350");

  Writer w;
  w.begin_array()
      .value(0.1)
      .value(std::uint64_t{18446744073709551615ull})
      .value(std::numeric_limits<double>::quiet_NaN())
      .end_array();
  EXPECT_EQ(w.str(), "[0.1,18446744073709551615,null]");
  const Value back = parse(w.str());
  EXPECT_EQ(back.as_array()[0].as_number(), 0.1);
  EXPECT_TRUE(back.as_array()[2].is_null());  // NaN is not JSON.
}

TEST(JsonWriter, DocumentsRoundTripThroughTheParser) {
  // dump() of a parsed tree re-serializes to the same compact bytes —
  // the property the wire protocol's determinism rests on.
  const std::string doc =
      R"({"id":7,"verb":"submit","axes":["SW","BO"],)"
      R"("campaign":{"fractions":[0.85,0.95],"derive_seeds":true},)"
      R"("note":"café \"quoted\"","empty":{},"none":null})";
  const std::string once = dump(parse(doc));
  EXPECT_EQ(dump(parse(once)), once);
  // And a Writer-built doc parses back to equal structure.
  Writer w;
  w.begin_object().key("k").begin_array().value(1).value(2).end_array()
      .end_object();
  const Value v = parse(w.str());
  EXPECT_EQ(v.at("k").as_array().size(), 2u);
  EXPECT_EQ(dump(v), w.str());
}

TEST(JsonWriter, MisuseThrowsLogicErrors) {
  {
    Writer w;
    EXPECT_THROW(w.key("k"), std::logic_error);  // Key outside an object.
  }
  {
    Writer w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // Key inside an array.
  }
  {
    Writer w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // Bare value in object.
    EXPECT_THROW(w.end_array(), std::logic_error);  // Mismatched end.
    EXPECT_THROW(w.str(), std::logic_error);  // Still open.
  }
  {
    Writer w;
    EXPECT_THROW(w.str(), std::logic_error);  // Nothing written.
    w.begin_object().end_object();
    EXPECT_THROW(w.begin_object(), std::logic_error);  // Second document.
  }
}

}  // namespace
}  // namespace json
}  // namespace hars
