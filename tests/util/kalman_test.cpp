#include "util/kalman.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace hars {
namespace {

TEST(ScalarKalman, FirstMeasurementAdoptedExactly) {
  ScalarKalman k;
  EXPECT_FALSE(k.initialized());
  EXPECT_DOUBLE_EQ(k.update(3.7), 3.7);
  EXPECT_TRUE(k.initialized());
  EXPECT_DOUBLE_EQ(k.estimate(), 3.7);
}

TEST(ScalarKalman, ConvergesToConstantSignal) {
  ScalarKalman k(1e-4, 1e-2);
  Rng rng(3);
  double estimate = 0.0;
  for (int i = 0; i < 500; ++i) {
    estimate = k.update(2.0 + rng.normal(0.0, 0.1));
  }
  EXPECT_NEAR(estimate, 2.0, 0.05);
}

TEST(ScalarKalman, SmoothsNoiseBelowMeasurementNoise) {
  ScalarKalman k(1e-5, 1e-2);
  Rng rng(5);
  double sq_err = 0.0;
  int n = 0;
  for (int i = 0; i < 2000; ++i) {
    const double est = k.update(1.0 + rng.normal(0.0, 0.1));
    if (i > 100) {
      sq_err += (est - 1.0) * (est - 1.0);
      ++n;
    }
  }
  // Filtered RMS error well below the raw noise (0.1).
  EXPECT_LT(std::sqrt(sq_err / n), 0.05);
}

TEST(ScalarKalman, TracksDriftingSignal) {
  ScalarKalman k(1e-2, 1e-2);
  double estimate = 0.0;
  for (int i = 0; i < 300; ++i) {
    estimate = k.update(1.0 + 0.01 * i);  // Ramp.
  }
  EXPECT_NEAR(estimate, 1.0 + 0.01 * 299, 0.15);
}

TEST(ScalarKalman, GainDecreasesAsConfidenceGrows) {
  ScalarKalman k(1e-6, 1e-2);
  k.update(1.0);
  k.update(1.0);
  const double early_gain = k.last_gain();
  for (int i = 0; i < 200; ++i) k.update(1.0);
  EXPECT_LT(k.last_gain(), early_gain);
}

TEST(ScalarKalman, RescaleShiftsEstimate) {
  ScalarKalman k;
  k.update(2.0);
  k.rescale(3.0);
  EXPECT_NEAR(k.estimate(), 6.0, 1e-12);
}

TEST(ScalarKalman, RescaleBeforeInitIsNoop) {
  ScalarKalman k;
  k.rescale(5.0);
  EXPECT_DOUBLE_EQ(k.estimate(), 0.0);
}

TEST(ScalarKalman, ResetForgetsEverything) {
  ScalarKalman k;
  k.update(9.0);
  k.reset();
  EXPECT_FALSE(k.initialized());
  EXPECT_DOUBLE_EQ(k.update(1.0), 1.0);
}

}  // namespace
}  // namespace hars
