// OnceCache concurrency hammer: N threads race keyed compute-once
// lookups; every key must be computed exactly once and every racer must
// observe the same value. Designed to run (and be meaningful) under
// ThreadSanitizer in the CI sanitizer matrix.
#include "util/once_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hars {
namespace {

TEST(OnceCache, ComputesOnceSingleThreaded) {
  OnceCache<int, int> cache;
  int computes = 0;
  const int a = cache.get_or_compute(7, [&] {
    ++computes;
    return 70;
  });
  const int b = cache.get_or_compute(7, [&] {
    ++computes;
    return 71;  // Must not run: the first value wins.
  });
  EXPECT_EQ(a, 70);
  EXPECT_EQ(b, 70);
  EXPECT_EQ(computes, 1);
}

TEST(OnceCache, ThrowingComputationRetries) {
  OnceCache<int, int> cache;
  int attempts = 0;
  EXPECT_THROW(cache.get_or_compute(1,
                                    [&]() -> int {
                                      ++attempts;
                                      throw std::runtime_error("flaky");
                                    }),
               std::runtime_error);
  const int v = cache.get_or_compute(1, [&] {
    ++attempts;
    return 11;
  });
  EXPECT_EQ(v, 11);
  EXPECT_EQ(attempts, 2);
}

TEST(OnceCache, HammerExactlyOneComputePerKey) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 16;
  constexpr int kRounds = 50;

  OnceCache<int, int> cache;
  std::vector<std::atomic<int>> computes(kKeys);
  for (auto& c : computes) c.store(0);

  // Every thread hits every key kRounds times, in a different order per
  // thread, so first-touch races occur on many keys at once.
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kKeys; ++i) {
          const int key = (i + t * 3 + round) % kKeys;
          const int value = cache.get_or_compute(key, [&, key] {
            computes[static_cast<std::size_t>(key)].fetch_add(1);
            return key * 1000 + 1;
          });
          if (value != key * 1000 + 1) mismatch.store(true);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_FALSE(mismatch.load());
  for (int key = 0; key < kKeys; ++key) {
    EXPECT_EQ(computes[static_cast<std::size_t>(key)].load(), 1)
        << "key " << key << " computed more than once";
  }
}

TEST(OnceCache, HammerDistinctValueTypes) {
  // Vector values: a torn publish would show up as a short/empty vector
  // (and as a TSan report under the sanitizer matrix).
  constexpr int kThreads = 8;
  OnceCache<int, std::vector<int>> cache;
  std::atomic<int> bad{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int key = 0; key < 8; ++key) {
        const std::vector<int> v =
            cache.get_or_compute(key, [key] {
              return std::vector<int>(static_cast<std::size_t>(key + 3),
                                      key);
            });
        if (v.size() != static_cast<std::size_t>(key + 3)) ++bad;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(OnceCache, NamedCacheCountsHitsMissesAndEntries) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.set_enabled(true);

  OnceCache<int, int> cache("once_cache_metrics_test");
  // The first lookup lazily registers the metric ids (growing the
  // registry layout), so the thread shard must re-attach before bumps
  // on the new ids are counted.
  EXPECT_EQ(cache.get_or_compute(0, [] { return 0; }), 0);
  obs::ensure_thread_registered();

  EXPECT_EQ(cache.get_or_compute(1, [] { return 10; }), 10);  // miss
  EXPECT_EQ(cache.get_or_compute(1, [] { return 99; }), 10);  // hit
  EXPECT_EQ(cache.get_or_compute(1, [] { return 99; }), 10);  // hit
  // A throwing computation still counts its miss (and stays retryable).
  EXPECT_THROW(
      cache.get_or_compute(2, []() -> int { throw std::runtime_error("x"); }),
      std::runtime_error);
  EXPECT_EQ(cache.get_or_compute(2, [] { return 20; }), 20);  // retry miss

  const obs::MetricsSnapshot snapshot = registry.take_snapshot();
  const obs::MetricValue* hit =
      snapshot.find("cache.once_cache_metrics_test.hit");
  const obs::MetricValue* miss =
      snapshot.find("cache.once_cache_metrics_test.miss");
  const obs::MetricValue* entries =
      snapshot.find("cache.once_cache_metrics_test.entries");
  ASSERT_NE(hit, nullptr);
  ASSERT_NE(miss, nullptr);
  ASSERT_NE(entries, nullptr);
  EXPECT_GE(hit->counter, 2u);
  EXPECT_GE(miss->counter, 3u);  // Two computes + one throw (key 0 may
                                 // predate the shard re-attach).
  EXPECT_EQ(entries->gauge, 3.0);  // Keys 0, 1, 2.
  registry.set_enabled(false);
}

TEST(OnceCache, NamedHammerStaysConsistent) {
  // The hammer of HammerExactlyOneComputePerKey, but through a *named*
  // cache so the metric bumps race too — meaningful under TSan.
  auto& registry = obs::MetricsRegistry::instance();
  registry.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kKeys = 16;
  OnceCache<int, int> cache("once_cache_hammer_test");
  std::atomic<int> computes{0};
  std::atomic<int> bad{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      obs::ensure_thread_registered();
      for (int round = 0; round < 4; ++round) {
        for (int key = 0; key < kKeys; ++key) {
          const int value = cache.get_or_compute(key, [&computes, key] {
            ++computes;
            return key * 7;
          });
          if (value != key * 7) ++bad;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(computes.load(), kKeys);
  EXPECT_EQ(bad.load(), 0);

  const obs::MetricsSnapshot snapshot = registry.take_snapshot();
  const obs::MetricValue* entries =
      snapshot.find("cache.once_cache_hammer_test.entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->gauge, static_cast<double>(kKeys));
  registry.set_enabled(false);
}

}  // namespace
}  // namespace hars
