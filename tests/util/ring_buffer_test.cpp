#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

namespace hars {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 3u);
}

TEST(RingBuffer, FillsToCapacity) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  EXPECT_FALSE(rb.full());
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.oldest(), 1);
  EXPECT_EQ(rb.newest(), 3);
}

TEST(RingBuffer, OverwritesOldest) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.oldest(), 3);
  EXPECT_EQ(rb.newest(), 5);
  EXPECT_EQ(rb[0], 3);
  EXPECT_EQ(rb[1], 4);
  EXPECT_EQ(rb[2], 5);
}

TEST(RingBuffer, IndexingAfterManyWraps) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 103; ++i) rb.push(i);
  EXPECT_EQ(rb[0], 99);
  EXPECT_EQ(rb[3], 102);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(7);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.newest(), 9);
}

}  // namespace
}  // namespace hars
