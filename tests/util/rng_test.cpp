#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hars {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, NormalHasApproximateMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent(99);
  Rng f1 = parent.fork(1);
  Rng f2 = parent.fork(2);
  Rng f1_again = Rng(99).fork(1);
  EXPECT_EQ(f1.next_u64(), f1_again.next_u64());
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
}

}  // namespace
}  // namespace hars
