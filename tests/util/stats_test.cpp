#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace hars {
namespace {

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Geomean, KnownValues) {
  const std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(v), 4.0, 1e-12);
}

TEST(Geomean, NonPositiveIsZero) {
  const std::vector<double> with_zero{1.0, 0.0};
  EXPECT_EQ(geomean(with_zero), 0.0);
  const std::vector<double> with_negative{2.0, -1.0};
  EXPECT_EQ(geomean(with_negative), 0.0);
}

// An empty input has no mean: debug builds assert, release builds return
// NaN (so a missing series can never masquerade as a real 0.0 statistic).
TEST(Geomean, EmptyHasNoValue) {
#ifdef NDEBUG
  EXPECT_TRUE(std::isnan(geomean({})));
#else
  EXPECT_DEATH(geomean({}), "empty");
#endif
}

TEST(Mean, Basic) {
  const std::vector<double> v{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
}

TEST(Mean, EmptyHasNoValue) {
#ifdef NDEBUG
  EXPECT_TRUE(std::isnan(mean({})));
#else
  EXPECT_DEATH(mean({}), "empty");
#endif
}

TEST(FitLinear1d, RecoversPlantedLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i * 0.1);
    y.push_back(2.5 * i * 0.1 + 0.7);
  }
  const RegressionFit fit = fit_linear_1d(x, y);
  ASSERT_EQ(fit.coeffs.size(), 1u);
  EXPECT_NEAR(fit.coeffs[0], 2.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 0.7, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear1d, NoisyFitStillCloseWithHighR2) {
  Rng rng(21);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double xv = rng.uniform(0.0, 10.0);
    x.push_back(xv);
    y.push_back(-1.2 * xv + 4.0 + rng.normal(0.0, 0.1));
  }
  const RegressionFit fit = fit_linear_1d(x, y);
  EXPECT_NEAR(fit.coeffs[0], -1.2, 0.02);
  EXPECT_NEAR(fit.intercept, 4.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLinear, TwoFeatures) {
  Rng rng(31);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0.0, 5.0);
    const double b = rng.uniform(0.0, 5.0);
    xs.push_back({a, b});
    ys.push_back(3.0 * a - 2.0 * b + 1.0);
  }
  const RegressionFit fit = fit_linear(xs, ys);
  ASSERT_EQ(fit.coeffs.size(), 2u);
  EXPECT_NEAR(fit.coeffs[0], 3.0, 1e-9);
  EXPECT_NEAR(fit.coeffs[1], -2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-8);
}

TEST(FitLinear, DegenerateInputReturnsEmptyFit) {
  const RegressionFit fit = fit_linear({}, {});
  EXPECT_TRUE(fit.coeffs.empty());
  EXPECT_EQ(fit.r_squared, 0.0);
}

TEST(FitLinear, SingularSystemHandled) {
  // All x identical: slope is unidentifiable.
  std::vector<std::vector<double>> xs(10, std::vector<double>{2.0});
  std::vector<double> ys(10, 5.0);
  const RegressionFit fit = fit_linear(xs, ys);
  EXPECT_TRUE(fit.coeffs.empty());  // Degenerate: no fit produced.
}

TEST(Predict, EvaluatesFit) {
  RegressionFit fit;
  fit.coeffs = {2.0, 0.5};
  fit.intercept = 1.0;
  const std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(predict(fit, x), 9.0);
}

}  // namespace
}  // namespace hars
