// bench_report: merges the BENCH_*.json perf records the bench binaries
// emit (tick_bench, sweep_smoke, cross_platform, scenario_suite, ...)
// into one human-readable table, so the perf trajectory of a branch is
// one command instead of four files of nested JSON.
//
// Usage:
//   bench_report BENCH_tick.json BENCH_sweep.json ...
//   bench_report --dir build            # all BENCH_*.json in a directory
//   bench_report --out summary.txt ...  # also write the table to a file
//
// Exit code: 0 on success, 1 when any input fails to parse (a perf
// record that stops parsing is a regression in itself).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

namespace fs = std::filesystem;
using hars::json::Value;

struct Row {
  std::string file;
  std::string campaign;
  std::string headline;
};

std::string trim_number(double v) {
  std::ostringstream out;
  out.precision(4);
  out << v;
  return out.str();
}

/// Pulls the figures worth one table cell out of a perf record. The
/// records share no schema, so this is a best-effort scan of the keys
/// each campaign actually emits.
std::string headline_of(const Value& doc) {
  std::vector<std::string> parts;
  auto add_number = [&](const char* key, const char* label) {
    if (const Value* v = doc.find(key); v != nullptr && v->is_number()) {
      parts.push_back(std::string(label) + "=" + trim_number(v->as_number()));
    }
  };
  add_number("geomean_speedup", "geomean_speedup");
  add_number("speedup", "speedup");
  add_number("overhead_pct", "overhead_pct");
  add_number("wall_ms", "wall_ms");
  add_number("ticks_per_sec", "ticks_per_sec");
  add_number("first_record_ms", "first_record_ms");
  add_number("records_per_sec", "records_per_sec");
  add_number("cases", "cases");
  add_number("jobs", "jobs");
  if (const Value* grid = doc.find("grid"); grid != nullptr) {
    add_number("grid_speedup", "grid_speedup");
    if (const Value* v = grid->find("speedup"); v != nullptr && v->is_number()) {
      parts.push_back("grid.speedup=" + trim_number(v->as_number()));
    }
  }
  if (const Value* tel = doc.find("telemetry"); tel != nullptr) {
    if (const Value* v = tel->find("overhead_pct");
        v != nullptr && v->is_number()) {
      parts.push_back("telemetry.overhead_pct=" + trim_number(v->as_number()));
    }
  }
  if (const Value* variants = doc.find("variants");
      variants != nullptr && variants->is_array()) {
    parts.push_back("variants=" + std::to_string(variants->as_array().size()));
  }
  if (const Value* platforms = doc.find("platforms");
      platforms != nullptr && platforms->is_array()) {
    parts.push_back("platforms=" +
                    std::to_string(platforms->as_array().size()));
  }
  if (const Value* scenarios = doc.find("scenarios");
      scenarios != nullptr && scenarios->is_array()) {
    parts.push_back("scenarios=" +
                    std::to_string(scenarios->as_array().size()));
  }
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += "  ";
    out += p;
  }
  return out.empty() ? "(no scalar figures)" : out;
}

std::string campaign_of(const Value& doc, const std::string& file) {
  if (const Value* v = doc.find("campaign"); v != nullptr && v->is_string()) {
    return v->as_string();
  }
  if (const Value* v = doc.find("bench"); v != nullptr && v->is_string()) {
    return v->as_string();
  }
  // BENCH_tick.json -> tick
  std::string name = fs::path(file).filename().string();
  if (name.rfind("BENCH_", 0) == 0) name = name.substr(6);
  const std::size_t dot = name.rfind('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return name;
}

void print_table(std::ostream& out, const std::vector<Row>& rows) {
  std::size_t file_width = 4, campaign_width = 8;
  for (const Row& r : rows) {
    file_width = std::max(file_width, r.file.size());
    campaign_width = std::max(campaign_width, r.campaign.size());
  }
  out << std::string(file_width, '-') << "  "
      << std::string(campaign_width, '-') << "  --------\n";
  for (const Row& r : rows) {
    out << r.file << std::string(file_width - r.file.size() + 2, ' ')
        << r.campaign << std::string(campaign_width - r.campaign.size() + 2, ' ')
        << r.headline << "\n";
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dir DIR] [--out FILE] [BENCH_*.json ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir") {
      if (++i >= argc) return usage(argv[0]);
      std::error_code ec;
      for (const auto& entry : fs::directory_iterator(argv[i], ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
            name.substr(name.size() - 5) == ".json") {
          files.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "bench_report: cannot read directory '%s'\n",
                     argv[i]);
        return 1;
      }
    } else if (arg == "--out") {
      if (++i >= argc) return usage(argv[0]);
      out_path = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(argv[0]);
  std::sort(files.begin(), files.end());

  std::vector<Row> rows;
  bool failed = false;
  for (const std::string& file : files) {
    Row row;
    row.file = fs::path(file).filename().string();
    try {
      const Value doc = hars::json::parse_file(file);
      row.campaign = campaign_of(doc, file);
      row.headline = headline_of(doc);
    } catch (const std::exception& e) {
      row.campaign = "ERROR";
      row.headline = e.what();
      failed = true;
    }
    rows.push_back(std::move(row));
  }

  print_table(std::cout, rows);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "bench_report: cannot open '%s'\n",
                   out_path.c_str());
      return 1;
    }
    print_table(out, rows);
  }
  return failed ? 1 : 0;
}
