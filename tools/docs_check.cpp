// docs_check: CI gate for the documentation layer.
//
// 1. Link check — every relative markdown link in README.md and
//    docs/*.md must resolve to an existing file (anchors and absolute
//    URLs are skipped).
// 2. Format-drift check — every worked example checked into examples/
//    must parse with the *real* parser it documents, so
//    docs/FILE_FORMATS.md cannot drift from the code:
//      examples/*.platform.csv   -> PlatformSpec::from_file
//      examples/*.scenario.csv   -> Scenario::from_file; files with a
//                                   "# generator=" comment also check
//                                   the gen: name grammar, and hars_fuzz
//                                   repros ("# hars_fuzz repro v1")
//                                   round-trip through parse_repro
//      examples/*.trace.jsonl    -> parse_trace_meta + record shape
//      examples/*.records.csv    -> CSV shape (constant column count)
//      examples/*.records.jsonl  -> JSONL record shape
//      examples/*.metrics.jsonl  -> telemetry metric dump (util/json)
//      examples/*.spans.json     -> Chrome trace-event JSON (util/json)
//      examples/*.prom           -> Prometheus text exposition shape
//      examples/*.transcript.jsonl -> hars_simd wire-protocol transcript
//                                   (each payload through the real
//                                   svc request/response parsers)
//      examples/*.sysfs          -> FakeSysfs::from_file + the topology
//                                   probe; exynos5422.sysfs must stay
//                                   byte-identical to the built-in
//                                   kExynos5422Fixture tree
//
//   docs_check [--root DIR]   (default: current directory)
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "backend/sysfs.hpp"
#include "backend/sysfs_probe.hpp"
#include "hmp/platform_spec.hpp"
#include "scenario/generator.hpp"
#include "scenario/repro.hpp"
#include "scenario/scenario.hpp"
#include "scenario/trace_sink.hpp"
#include "svc/protocol.hpp"
#include "util/json.hpp"

namespace {

namespace fs = std::filesystem;

int failures = 0;

void fail(const std::string& what) {
  std::fprintf(stderr, "docs_check: %s\n", what.c_str());
  ++failures;
}

/// Extracts relative link targets from one markdown file and verifies
/// they exist. Matches the `](target)` part of inline links.
void check_links(const fs::path& root, const fs::path& md) {
  std::ifstream in(md);
  if (!in) {
    fail("cannot read " + md.string());
    return;
  }
  std::string line;
  int line_no = 0;
  bool in_code_fence = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t text = line.find_first_not_of(" \t");
    if (text != std::string::npos && line.compare(text, 3, "```") == 0) {
      in_code_fence = !in_code_fence;
      continue;
    }
    if (in_code_fence) continue;  // C++ lambdas look like markdown links.
    std::size_t pos = 0;
    while ((pos = line.find("](", pos)) != std::string::npos) {
      const std::size_t start = pos + 2;
      const std::size_t end = line.find(')', start);
      if (end == std::string::npos) break;
      std::string target = line.substr(start, end - start);
      pos = end;
      // Skip absolute URLs, mailto, in-page anchors, and "targets" with
      // spaces (inline code that merely looks like a link).
      if (target.empty() || target.front() == '#' ||
          target.find("://") != std::string::npos ||
          target.rfind("mailto:", 0) == 0 ||
          target.find(' ') != std::string::npos) {
        continue;
      }
      const std::size_t anchor = target.find('#');
      if (anchor != std::string::npos) target = target.substr(0, anchor);
      const fs::path resolved = md.parent_path() / target;
      if (!fs::exists(resolved)) {
        fail(md.lexically_relative(root).string() + ":" +
             std::to_string(line_no) + ": broken link \"" + target + "\"");
      }
    }
  }
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

void check_platform_example(const fs::path& path) {
  try {
    (void)hars::PlatformSpec::from_file(path.string());
  } catch (const std::exception& error) {
    fail(path.string() + ": " + error.what());
  }
}

/// Scenario examples come in three flavours, all `*.scenario.csv`:
/// plain DSL files, generated examples carrying a `# generator=` name
/// (the name must parse and its canonical form must round-trip — the
/// scenario is deliberately NOT re-generated and byte-compared, since
/// log/pow draws differ across libm builds), and hars_fuzz corpus
/// repros (`# hars_fuzz repro v1` first line) whose recipe must
/// round-trip byte-identically through parse_repro/format_repro.
void check_scenario_example(const fs::path& path) {
  std::ifstream probe(path);
  std::string first_line;
  std::getline(probe, first_line);
  if (first_line == "# hars_fuzz repro v1") {
    try {
      const hars::ReproCase repro = hars::parse_repro_file(path.string());
      std::ifstream in(path);
      std::stringstream raw;
      raw << in.rdbuf();
      if (hars::format_repro(repro) != raw.str()) {
        fail(path.string() +
             ": repro does not round-trip byte-identically through "
             "parse_repro/format_repro");
      }
    } catch (const std::exception& error) {
      fail(path.string() + ": " + error.what());
    }
    return;
  }
  try {
    (void)hars::Scenario::from_file(path.string());
  } catch (const std::exception& error) {
    fail(path.string() + ": " + error.what());
  }
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::string key = "# generator=";
    if (line.rfind(key, 0) != 0) continue;
    const std::string name = line.substr(key.size());
    try {
      const hars::GeneratorSpec spec = hars::ScenarioGenerator::parse_name(name);
      const std::string canonical = hars::ScenarioGenerator::canonical_name(spec);
      if (hars::ScenarioGenerator::canonical_name(
              hars::ScenarioGenerator::parse_name(canonical)) != canonical) {
        fail(path.string() + ": generator name \"" + name +
             "\" does not round-trip through parse_name/canonical_name");
      }
    } catch (const std::exception& error) {
      fail(path.string() + ": generator name \"" + name + "\": " +
           error.what());
    }
  }
}

void check_jsonl_shape(const fs::path& path, bool expect_trace_meta) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot read " + path.string());
    return;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.front() != '{' || line.back() != '}') {
      fail(path.string() + ":" + std::to_string(line_no) +
           ": not a one-line JSON object");
      return;
    }
    if (expect_trace_meta && line_no == 1) {
      try {
        (void)hars::parse_trace_meta(line);
      } catch (const std::exception& error) {
        fail(path.string() + ": meta line: " + error.what());
      }
    }
  }
  if (line_no == 0) fail(path.string() + ": empty example");
}

void check_records_csv(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot read " + path.string());
    return;
  }
  std::string header;
  if (!std::getline(in, header) || header.empty()) {
    fail(path.string() + ": missing CSV header");
    return;
  }
  const std::size_t columns = split_csv(header).size();
  std::string line;
  int line_no = 1;
  int rows = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    ++rows;
    if (split_csv(line).size() != columns) {
      fail(path.string() + ":" + std::to_string(line_no) +
           ": row has a different cell count than the header");
    }
  }
  if (rows == 0) fail(path.string() + ": header but no rows");
}

/// Telemetry metric dump: every line is one JSON object with at least
/// "name" (string) and "kind" (counter|gauge|histogram), the format
/// documented in docs/OBSERVABILITY.md.
void check_metrics_jsonl(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot read " + path.string());
    return;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      const hars::json::Value v = hars::json::parse(line);
      const std::string& kind = v.at("kind").as_string();
      (void)v.at("name").as_string();
      if (kind != "counter" && kind != "gauge" && kind != "histogram") {
        throw std::runtime_error("unknown metric kind \"" + kind + "\"");
      }
      if (kind == "histogram") (void)v.at("buckets").as_array();
    } catch (const std::exception& error) {
      fail(path.string() + ":" + std::to_string(line_no) + ": " +
           error.what());
      return;
    }
  }
  if (line_no == 0) fail(path.string() + ": empty example");
}

/// Chrome trace-event JSON: one object with a "traceEvents" array of
/// complete ("ph":"X") events carrying name/ts/dur.
void check_spans_json(const fs::path& path) {
  try {
    const hars::json::Value doc = hars::json::parse_file(path.string());
    const auto& events = doc.at("traceEvents").as_array();
    if (events.empty()) {
      fail(path.string() + ": traceEvents is empty");
      return;
    }
    for (const hars::json::Value& event : events) {
      (void)event.at("name").as_string();
      (void)event.at("ts").as_number();
      (void)event.at("dur").as_number();
      if (event.at("ph").as_string() != "X") {
        fail(path.string() + ": expected complete events (ph == \"X\")");
        return;
      }
    }
  } catch (const std::exception& error) {
    fail(path.string() + ": " + error.what());
  }
}

/// Prometheus text exposition: comment lines start with '#'; sample
/// lines are `name[{labels}] value` where value parses as a double.
void check_prom_example(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot read " + path.string());
    return;
  }
  std::string line;
  int line_no = 0;
  int samples = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    const std::size_t space = line.rfind(' ');
    const std::string name = space == std::string::npos
                                 ? std::string()
                                 : line.substr(0, space);
    bool ok = !name.empty() && (std::isalpha(name.front()) != 0 ||
                                name.front() == '_');
    if (ok) {
      try {
        std::size_t used = 0;
        (void)std::stod(line.substr(space + 1), &used);
        ok = used == line.size() - space - 1;
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok) {
      fail(path.string() + ":" + std::to_string(line_no) +
           ": not a `name value` sample or `#` comment");
      return;
    }
    ++samples;
  }
  if (samples == 0) fail(path.string() + ": no samples");
}

/// Wire-protocol transcript: each line is {"direction": "request" |
/// "response", "payload": {...}} and every payload must survive the
/// *real* svc parsers, so the worked example in docs/FILE_FORMATS.md
/// cannot drift from src/svc/protocol.cpp.
void check_transcript_jsonl(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot read " + path.string());
    return;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      const hars::json::Value v = hars::json::parse(line);
      const std::string& direction = v.at("direction").as_string();
      const hars::json::Value& payload = v.at("payload");
      if (direction == "request") {
        (void)hars::svc::parse_request(payload);
      } else if (direction == "response") {
        const std::string type = hars::svc::response_type(payload);
        if (type == "pong") {
          // id only; nothing further to parse.
        } else if (type == "ack") {
          (void)hars::svc::parse_ack(payload);
        } else if (type == "record") {
          (void)hars::svc::parse_record(payload);
        } else if (type == "summary") {
          (void)hars::svc::parse_summary(payload);
        } else if (type == "error") {
          (void)hars::svc::parse_error(payload);
        } else if (type == "stats") {
          (void)hars::svc::parse_stats(payload);
        } else if (type == "status") {
          (void)hars::svc::parse_status(payload);
        } else if (type == "result") {
          (void)hars::svc::parse_run_result(payload);
        } else if (type == "metrics") {
          (void)payload.at("text").as_string();
        } else {
          throw std::runtime_error("unknown response type \"" + type + "\"");
        }
      } else {
        throw std::runtime_error("direction must be request or response");
      }
    } catch (const std::exception& error) {
      fail(path.string() + ":" + std::to_string(line_no) + ": " +
           error.what());
      return;
    }
  }
  if (line_no == 0) fail(path.string() + ": empty example");
}

/// Sysfs fixture examples (FILE_FORMATS.md, "Sysfs fixtures"): must load
/// through the real fixture parser and probe into at least one cpu
/// cluster. exynos5422.sysfs is additionally pinned byte-identical to
/// the built-in kExynos5422Fixture tree, so the shipped example cannot
/// drift from the fixture the backend tests run against.
void check_sysfs_example(const fs::path& path) {
  try {
    const hars::FakeSysfs fixture = hars::FakeSysfs::from_file(path.string());
    const hars::ProbedTopology topo = hars::probe_topology(fixture);
    if (topo.clusters.empty()) {
      fail(path.string() + ": probes into zero cpu clusters");
      return;
    }
  } catch (const std::exception& error) {
    fail(path.string() + ": " + error.what());
    return;
  }
  if (path.filename() == "exynos5422.sysfs") {
    std::ifstream in(path);
    std::stringstream raw;
    raw << in.rdbuf();
    if (raw.str() != hars::kExynos5422Fixture) {
      fail(path.string() +
           ": differs from the built-in kExynos5422Fixture "
           "(src/backend/sysfs.cpp); keep the two in sync");
    }
  }
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    }
  }

  // --- Links ---
  const fs::path readme = root / "README.md";
  if (fs::exists(readme)) {
    check_links(root, readme);
  } else {
    fail("README.md not found under " + root.string());
  }
  const fs::path docs = root / "docs";
  if (fs::is_directory(docs)) {
    for (const auto& entry : fs::directory_iterator(docs)) {
      if (entry.path().extension() == ".md") check_links(root, entry.path());
    }
  } else {
    fail("docs/ not found under " + root.string());
  }

  // --- Worked examples vs. parsers ---
  const fs::path examples = root / "examples";
  int checked = 0;
  if (fs::is_directory(examples)) {
    for (const auto& entry : fs::directory_iterator(examples)) {
      const std::string name = entry.path().filename().string();
      if (ends_with(name, ".platform.csv")) {
        check_platform_example(entry.path());
        ++checked;
      } else if (ends_with(name, ".scenario.csv")) {
        check_scenario_example(entry.path());
        ++checked;
      } else if (ends_with(name, ".trace.jsonl")) {
        check_jsonl_shape(entry.path(), /*expect_trace_meta=*/true);
        ++checked;
      } else if (ends_with(name, ".transcript.jsonl")) {
        check_transcript_jsonl(entry.path());
        ++checked;
      } else if (ends_with(name, ".records.jsonl")) {
        check_jsonl_shape(entry.path(), /*expect_trace_meta=*/false);
        ++checked;
      } else if (ends_with(name, ".records.csv")) {
        check_records_csv(entry.path());
        ++checked;
      } else if (ends_with(name, ".metrics.jsonl")) {
        check_metrics_jsonl(entry.path());
        ++checked;
      } else if (ends_with(name, ".spans.json")) {
        check_spans_json(entry.path());
        ++checked;
      } else if (ends_with(name, ".prom")) {
        check_prom_example(entry.path());
        ++checked;
      } else if (ends_with(name, ".sysfs")) {
        check_sysfs_example(entry.path());
        ++checked;
      }
    }
  } else {
    fail("examples/ not found under " + root.string());
  }
  if (checked == 0) {
    fail("no example data files found (expected *.platform.csv, "
         "*.scenario.csv, *.trace.jsonl, *.records.{csv,jsonl} under "
         "examples/)");
  }

  if (failures > 0) {
    std::fprintf(stderr, "docs_check: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("docs_check: links and %d example file(s) OK\n", checked);
  return 0;
}
