// hars_agentd: the HARS runtime daemon for live platforms.
//
// The deployment half of the Backend HAL: where hars_sim evaluates the
// runtime versions in the discrete-time simulator, hars_agentd runs the
// same managers against a live backend — the real machine's sysfs
// (--backend linux) or the CI-testable fixture tree (--backend
// mock_linux, the default, so the tool is exercisable anywhere). The
// eight runtime versions resolve through the same VariantRegistry, so
// any of them can manage the live platform.
//
//   hars_agentd --dry-run --backend linux     # probe only, never writes
//   hars_agentd --variant HARS-E --duration 30
//   hars_agentd --backend linux --variant CONS-I --target 20:24
//
// --dry-run constructs the backend probe-only (BackendOptions::dry_run:
// no sysfs writes, no sched_setaffinity), prints the probed topology and
// capability set, and exits — safe on any machine, including CI runners
// without cpufreq.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "backend/backend_registry.hpp"
#include "exp/experiment.hpp"
#include "exp/variant_registry.hpp"
#include "hmp/platform_registry.hpp"
#include "hmp/platform_spec.hpp"
#include "util/common.hpp"

namespace {

using namespace hars;

void usage() {
  std::string versions;
  for (const std::string& name : VariantRegistry::instance().names()) {
    if (!versions.empty()) versions += ", ";
    versions += name;
  }
  std::printf(
      "usage: hars_agentd [options]\n"
      "Runs a HARS runtime version against a live backend.\n"
      "  --backend NAME    live backend (default mock_linux); \"sim\" is\n"
      "                    hars_sim's job; --list-backends to enumerate\n"
      "  --list-backends   print the backend catalogue and exit\n"
      "  --variant NAME    runtime version (default HARS-E): %s\n"
      "  --bench NAME      workload shape; repeatable (default swaptions)\n"
      "  --duration SEC    managed run length (default 30)\n"
      "  --tick MS         manager epoch override (default: backend's)\n"
      "  --fixture FILE    sysfs fixture for mock_linux (default: built-in\n"
      "                    exynos5422 tree; see FILE_FORMATS.md)\n"
      "  --sysfs-root DIR  sysfs root for linux (default /)\n"
      "  --platform NAME   platform whose power parameters graft onto the\n"
      "                    probed topology (default exynos5422)\n"
      "  --target MIN:MAX  explicit heartbeat window for every workload\n"
      "                    (default: derived from a probe slice)\n"
      "  --target-fraction F  derived-target fraction (default 0.5)\n"
      "  --threads N       threads per workload (default 4)\n"
      "  --seed N          RNG seed (default 1)\n"
      "  --audit           run the managers' debug result audits\n"
      "  --dry-run         probe the platform read-only and exit\n"
      "  --help            this text\n",
      versions.c_str());
}

void list_backends() {
  std::printf("%-12s %s\n", "backend", "description");
  for (const BackendEntry& e : BackendRegistry::instance().entries()) {
    std::printf("%-12s %s\n", e.name.c_str(), e.description.c_str());
  }
}

bool parse_backend(const std::string& name) {
  if (BackendRegistry::instance().known(name)) return true;
  std::fprintf(stderr, "unknown backend %s; known:", name.c_str());
  for (const std::string& known : BackendRegistry::instance().names()) {
    std::fprintf(stderr, " %s", known.c_str());
  }
  std::fprintf(stderr, "\n");
  return false;
}

bool parse_bench(const std::string& name, ParsecBenchmark* out) {
  for (ParsecBenchmark b : all_parsec_benchmarks()) {
    if (name == parsec_code(b) || name == parsec_name(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

bool parse_target(const std::string& text, PerfTarget* out) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) return false;
  out->min = std::atof(text.substr(0, colon).c_str());
  out->max = std::atof(text.substr(colon + 1).c_str());
  return out->is_valid_window();
}

/// The --dry-run report: construct the backend probe-only and print what
/// it found. Returns the process exit code.
int dry_run_probe(const std::string& backend_name,
                  const BackendOptions& options) {
  std::unique_ptr<Backend> backend;
  try {
    backend = BackendRegistry::instance().get_live(backend_name, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "probe failed: %s\n", e.what());
    return 1;
  }
  const BackendCaps caps = backend->caps();
  std::printf("backend          %s (dry run; no writes issued)\n",
              backend->name());
  std::printf("capabilities     dvfs=%d placement=%d hotplug=%d energy=%d "
              "core_stats=%d\n",
              caps.dvfs, caps.placement, caps.hotplug, caps.energy,
              caps.core_stats);
  const Machine& m = backend->topology();
  for (ClusterId c = 0; c < m.num_clusters(); ++c) {
    const ClusterSpec& spec = m.spec().clusters[c];
    std::printf("cluster %-8d %s %dx (ipc %.2f) %.2f-%.2f GHz, %d levels, "
                "now %.2f GHz\n",
                c, core_type_name(spec.type), spec.core_count, spec.ipc,
                m.freq_ghz_at_level(c, 0),
                m.freq_ghz_at_level(c, m.max_freq_level(c)),
                m.max_freq_level(c) + 1, m.freq_ghz(c));
  }
  std::printf("online           %d of %d cores\n", m.online_mask().count(),
              m.num_cores());
  std::printf("energy           %.3f J since probe (%s)\n", backend->energy_j(),
              caps.energy ? "metered" : "modeled");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string backend_name = "mock_linux";
  std::string variant = "HARS-E";
  std::vector<ParsecBenchmark> benches;
  std::optional<PerfTarget> target;
  BackendOptions options;
  double duration_sec = 30.0;
  double fraction = 0.50;
  int threads = 4;
  std::uint64_t seed = 1;
  bool dry_run = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      usage();
      return 0;
    } else if (arg == "--backend") {
      backend_name = next();
      if (!parse_backend(backend_name)) return 2;
      if (backend_name == "sim") {
        std::fprintf(stderr,
                     "hars_agentd drives live platforms; use hars_sim for "
                     "simulation\n");
        return 2;
      }
    } else if (arg == "--list-backends") {
      list_backends();
      return 0;
    } else if (arg == "--variant" || arg == "--version") {
      variant = next();
      if (VariantRegistry::instance().find(variant) == nullptr) {
        std::fprintf(stderr, "unknown variant %s\n", variant.c_str());
        usage();
        return 2;
      }
    } else if (arg == "--bench") {
      ParsecBenchmark bench;
      if (!parse_bench(next(), &bench)) {
        std::fprintf(stderr, "unknown benchmark\n");
        return 2;
      }
      benches.push_back(bench);
    } else if (arg == "--duration") {
      duration_sec = std::atof(next());
    } else if (arg == "--tick") {
      options.tick_us = static_cast<TimeUs>(std::atof(next()) * 1000.0);
    } else if (arg == "--fixture") {
      options.fixture = next();
    } else if (arg == "--sysfs-root") {
      options.sysfs_root = next();
    } else if (arg == "--platform") {
      const std::string name = next();
      if (PlatformRegistry::instance().find(name) == nullptr) {
        std::fprintf(stderr, "unknown platform %s; known:", name.c_str());
        for (const std::string& known : PlatformRegistry::instance().names()) {
          std::fprintf(stderr, " %s", known.c_str());
        }
        std::fprintf(stderr, "\n");
        return 2;
      }
      options.platform = PlatformRegistry::instance().get(name);
    } else if (arg == "--target") {
      PerfTarget t;
      if (!parse_target(next(), &t)) {
        std::fprintf(stderr,
                     "--target wants MIN:MAX with 0 <= MIN <= MAX, MAX > 0\n");
        return 2;
      }
      target = t;
    } else if (arg == "--target-fraction") {
      fraction = std::atof(next());
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--audit") {
      options.audit = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (!options.platform) {
    options.platform = PlatformRegistry::instance().get("exynos5422");
  }

  if (dry_run) {
    options.dry_run = true;
    return dry_run_probe(backend_name, options);
  }

  if (benches.empty()) benches.push_back(ParsecBenchmark::kSwaptions);

  ExperimentBuilder builder;
  builder.backend(backend_name, options)
      .platform(*options.platform)
      .variant(variant)
      .target_fraction(fraction)
      .duration_sec(duration_sec)
      .threads(threads)
      .seed(seed);
  for (ParsecBenchmark bench : benches) {
    builder.app(bench);
    if (target) builder.target(*target);
  }

  ExperimentResult result;
  try {
    result = builder.build().run();
  } catch (const ExperimentConfigError& error) {
    std::fprintf(stderr, "invalid configuration: %s\n", error.what());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "live run failed: %s\n", error.what());
    return 1;
  }

  std::printf("backend          %s\n", backend_name.c_str());
  std::printf("variant          %s\n", variant.c_str());
  for (const AppRunResult& app : result.apps) {
    const RunMetrics& m = app.metrics;
    std::printf("app              %s\n", app.label.c_str());
    std::printf("  target         %.2f..%.2f hb/s\n", app.target.min,
                app.target.max);
    std::printf("  rate           %.2f hb/s (%lld beats)\n", m.avg_rate_hps,
                static_cast<long long>(m.heartbeats));
    std::printf("  norm perf      %.3f\n", m.norm_perf);
    std::printf("  in-window      %.1f%%\n", 100.0 * m.in_window_fraction);
  }
  std::printf("avg power        %.3f W\n", result.avg_power_w);
  std::printf("adaptations      %lld\n",
              static_cast<long long>(result.adaptations));
  if (result.final_state) {
    std::printf("final state      B%d@L%d L%d@L%d\n",
                result.final_state->big_cores, result.final_state->big_freq,
                result.final_state->little_cores,
                result.final_state->little_freq);
  }
  return 0;
}
