// hars_client: CLI client for the hars_simd daemon.
//
//   hars_client sweep --connect :7414 --bench SW --bench BO
//       --version HARS-E --csv out.csv [--jsonl out.jsonl]
//   hars_client ping|status|stats|metrics|drain [--connect ADDR]
//   hars_client cancel ID [--connect ADDR]
//
// `sweep` submits a declarative campaign (the same axes hars_sim's
// sweep mode exposes) and streams the daemon's records into CSV/JSONL
// sinks — byte-identical to running the campaign locally. --bench-json
// writes a BENCH_daemon.json perf record (submit-to-first-record
// latency, streamed records/sec) for tools/bench_report.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "svc/client.hpp"
#include "sweep/result_sink.hpp"

namespace {

using namespace hars;

void usage() {
  std::printf(
      "usage: hars_client [VERB] [options]\n"
      "verbs: sweep (default) | ping | status | stats | metrics | drain |\n"
      "       cancel ID\n"
      "  --connect ADDR    daemon address (default tcp:127.0.0.1:7414)\n"
      "sweep options (mirror hars_sim sweep):\n"
      "  --bench NAME      repeatable benchmark axis (BL|BO|FA|FE|FL|SW)\n"
      "  --version NAME    repeatable variant axis (default HARS-E)\n"
      "  --platform NAME   repeatable platform axis\n"
      "  --scenario NAME   repeatable scenario axis (exclusive with --bench)\n"
      "  --fraction F      repeatable target-fraction axis\n"
      "  --distance D      repeatable search-distance axis\n"
      "  --duration SEC    measured span (default 120)\n"
      "  --threads N       app threads (default 8)\n"
      "  --seed N          campaign seed (default 1)\n"
      "  --derive-seeds    coordinate-derived per-case seeds\n"
      "  --start-case N    resume: skip cases below N (a drained summary's\n"
      "                    emitted_through)\n"
      "  --csv FILE        write streamed records as CSV\n"
      "  --jsonl FILE      write streamed records as JSON lines\n"
      "  --bench-json FILE write a BENCH_daemon.json perf record\n"
      "metrics options:\n"
      "  --out FILE        write the Prometheus text to FILE (default stdout)\n");
}

int run_sweep(svc::ServiceClient& client, const svc::CampaignRequest& campaign,
              const std::string& csv_path, const std::string& jsonl_path,
              const std::string& bench_json_path) {
  std::unique_ptr<CsvSink> csv;
  std::unique_ptr<JsonlSink> jsonl;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvSink>(csv_path);
    if (!csv->ok()) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
  }
  if (!jsonl_path.empty()) {
    jsonl = std::make_unique<JsonlSink>(jsonl_path);
    if (!jsonl->ok()) {
      std::fprintf(stderr, "cannot write %s\n", jsonl_path.c_str());
      return 1;
    }
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point submit_time = Clock::now();
  std::optional<Clock::time_point> first_record_time;
  std::uint64_t records = 0;

  const svc::SubmitOutcome outcome =
      client.submit_sweep(campaign, [&](const Record& record) {
        if (!first_record_time.has_value()) first_record_time = Clock::now();
        ++records;
        if (csv) csv->write(record);
        if (jsonl) jsonl->write(record);
      });
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - submit_time)
          .count();

  if (!outcome.ok) {
    std::fprintf(stderr, "submit rejected (%s): %s\n",
                 svc::error_code_name(outcome.error->code),
                 outcome.error->message.c_str());
    return 1;
  }
  if (csv) csv->flush();
  if (jsonl) jsonl->flush();

  const svc::SummaryInfo& summary = outcome.summary;
  std::printf(
      "campaign %llu: %s, %llu cases, emitted through %llu, %llu failed, "
      "%llu records, %.1f ms\n",
      static_cast<unsigned long long>(summary.campaign),
      summary.status.c_str(), static_cast<unsigned long long>(summary.cases),
      static_cast<unsigned long long>(summary.emitted_through),
      static_cast<unsigned long long>(summary.failed),
      static_cast<unsigned long long>(records), wall_ms);
  if (!csv_path.empty()) std::printf("csv              %s\n", csv_path.c_str());
  if (!jsonl_path.empty()) {
    std::printf("jsonl            %s\n", jsonl_path.c_str());
  }

  if (!bench_json_path.empty()) {
    const double first_record_ms =
        first_record_time.has_value()
            ? std::chrono::duration<double, std::milli>(*first_record_time -
                                                        submit_time)
                  .count()
            : 0.0;
    const double records_per_sec =
        wall_ms > 0.0 ? 1e3 * static_cast<double>(records) / wall_ms : 0.0;
    std::ofstream out(bench_json_path);
    out << "{\n"
        << "  \"campaign\": \"daemon\",\n"
        << "  \"cases\": " << summary.cases << ",\n"
        << "  \"records\": " << records << ",\n"
        << "  \"wall_ms\": " << format_number(wall_ms) << ",\n"
        << "  \"first_record_ms\": " << format_number(first_record_ms) << ",\n"
        << "  \"records_per_sec\": " << format_number(records_per_sec) << "\n"
        << "}\n";
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", bench_json_path.c_str());
      return 1;
    }
    std::printf("bench json       %s\n", bench_json_path.c_str());
  }

  const bool failed = summary.failed > 0 || summary.status != "complete";
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string verb = "sweep";
  int first_option = 1;
  if (argc > 1 && argv[1][0] != '-') {
    verb = argv[1];
    first_option = 2;
  }

  std::string connect = "tcp:127.0.0.1:7414";
  std::string csv_path;
  std::string jsonl_path;
  std::string bench_json_path;
  std::string metrics_out;
  std::uint64_t cancel_target = 0;
  svc::CampaignRequest campaign;

  if (verb == "cancel") {
    if (first_option >= argc || argv[first_option][0] == '-') {
      std::fprintf(stderr, "cancel needs a campaign id\n");
      return 2;
    }
    cancel_target =
        static_cast<std::uint64_t>(std::atoll(argv[first_option++]));
  }

  for (int i = first_option; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      usage();
      return 0;
    } else if (arg == "--connect") {
      connect = next();
    } else if (arg == "--bench") {
      campaign.benches.push_back(next());
    } else if (arg == "--version") {
      campaign.variants.push_back(next());
    } else if (arg == "--platform") {
      campaign.platforms.push_back(next());
    } else if (arg == "--scenario") {
      campaign.scenarios.push_back(next());
    } else if (arg == "--fraction") {
      campaign.fractions.push_back(std::atof(next()));
    } else if (arg == "--distance") {
      campaign.distances.push_back(std::atoi(next()));
    } else if (arg == "--duration") {
      campaign.duration_sec = std::atof(next());
    } else if (arg == "--threads") {
      campaign.threads = std::atoi(next());
    } else if (arg == "--seed") {
      campaign.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--derive-seeds") {
      campaign.derive_seeds = true;
    } else if (arg == "--start-case") {
      campaign.start_case = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--jsonl") {
      jsonl_path = next();
    } else if (arg == "--bench-json") {
      bench_json_path = next();
    } else if (arg == "--out") {
      metrics_out = next();
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  try {
    svc::ServiceClient client(svc::Address::parse(connect));
    if (verb == "sweep") {
      return run_sweep(client, campaign, csv_path, jsonl_path,
                       bench_json_path);
    } else if (verb == "ping") {
      const bool ok = client.ping();
      std::printf("%s\n", ok ? "pong" : "no pong");
      return ok ? 0 : 1;
    } else if (verb == "status") {
      const std::vector<svc::CampaignStatus> rows = client.status();
      if (rows.empty()) {
        std::printf("no active campaigns\n");
      } else {
        std::printf("%-10s %-11s %10s %10s\n", "campaign", "state", "cases",
                    "emitted");
        for (const svc::CampaignStatus& row : rows) {
          std::printf("%-10llu %-11s %10llu %10llu\n",
                      static_cast<unsigned long long>(row.campaign),
                      row.state.c_str(),
                      static_cast<unsigned long long>(row.cases),
                      static_cast<unsigned long long>(row.emitted));
        }
      }
      return 0;
    } else if (verb == "stats") {
      const svc::StatsInfo stats = client.stats();
      std::printf("sessions         %llu\n",
                  static_cast<unsigned long long>(stats.sessions));
      std::printf("campaigns        %llu active, %llu total\n",
                  static_cast<unsigned long long>(stats.campaigns_active),
                  static_cast<unsigned long long>(stats.campaigns_total));
      std::printf("records          %llu streamed\n",
                  static_cast<unsigned long long>(stats.records_streamed));
      for (const svc::CacheStat& cache : stats.caches) {
        std::printf("cache %-10s %llu hits, %llu misses, %llu entries\n",
                    cache.name.c_str(),
                    static_cast<unsigned long long>(cache.hits),
                    static_cast<unsigned long long>(cache.misses),
                    static_cast<unsigned long long>(cache.entries));
      }
      return 0;
    } else if (verb == "metrics") {
      const std::string text = client.metrics_text();
      if (metrics_out.empty()) {
        std::fputs(text.c_str(), stdout);
      } else {
        std::ofstream out(metrics_out);
        out << text;
        if (!out.good()) {
          std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
          return 1;
        }
        std::printf("metrics          %s\n", metrics_out.c_str());
      }
      return 0;
    } else if (verb == "cancel") {
      svc::ErrorInfo error;
      if (client.cancel(cancel_target, &error)) {
        std::printf("cancelled %llu\n",
                    static_cast<unsigned long long>(cancel_target));
        return 0;
      }
      std::fprintf(stderr, "cancel failed (%s): %s\n",
                   svc::error_code_name(error.code), error.message.c_str());
      return 1;
    } else if (verb == "drain") {
      const bool ok = client.drain();
      std::printf("%s\n", ok ? "draining" : "drain rejected");
      return ok ? 0 : 1;
    }
    std::fprintf(stderr, "unknown verb '%s'\n", verb.c_str());
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hars_client: %s\n", e.what());
    return 1;
  }
}
