// hars_fuzz: property-based scenario fuzzing with shrinking repros.
//
// Generates N seeded scenarios (rotating through the generator profiles
// or a --profile list), runs each across variants × platforms with every
// correctness oracle armed — debug invariant audits forced on,
// AllocGuard, check_invariants, thrown exceptions, plus the differential
// optimized-vs-reference record-identity oracle — and, on any failure,
// shrinks the scenario to a minimal failing repro written to the corpus
// directory with an embedded re-run recipe (see scenario/repro.hpp).
//
// Deterministic: the whole campaign, including every generated scenario
// and every corpus byte, is a pure function of --seed and the flags. Two
// runs with the same seed produce byte-identical output.
//
//   hars_fuzz --runs 100 --seed 1234 --corpus fuzz_corpus
//   hars_fuzz --repro fuzz_corpus/r12_HARS-E_exynos5422.scenario.csv
//   hars_fuzz --repro-dir fuzz/corpus          # regression replay
//   hars_fuzz --runs 20 --inject-bug phase_gt2 # harness self-test
//
// Exit codes: 0 = no failures (or every repro matched its expectation),
// 2 = new failures found (repros written), 3 = a repro's outcome did not
// match its # expect= line, 1 = usage or I/O error.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/fuzz_harness.hpp"
#include "exp/variant_registry.hpp"
#include "scenario/generator.hpp"
#include "scenario/repro.hpp"
#include "scenario/shrink.hpp"
#include "util/rng.hpp"

namespace {

using namespace hars;

struct Options {
  int runs = 25;
  std::uint64_t seed = 1;
  std::vector<std::string> profiles;
  std::vector<std::string> variants;
  std::vector<std::string> platforms;
  double duration_sec = 20.0;
  int threads = 0;
  double fraction = 0.9;
  std::string corpus = "fuzz_corpus";
  int max_shrink = 400;
  bool differential = true;
  std::string inject;
  std::string dump_dir;
  std::string repro_file;
  std::string repro_dir;
  bool quiet = false;
};

void usage() {
  std::cout
      << "usage: hars_fuzz [options]\n"
         "  --runs N           scenarios to generate (default 25)\n"
         "  --seed S           campaign seed; all output is a pure\n"
         "                     function of it (default 1)\n"
         "  --profile NAME     generator profile (repeatable; default:\n"
         "                     rotate through all profiles)\n"
         "  --variant V        runtime variant (repeatable; default: all)\n"
         "  --platform P       platform (repeatable; default exynos5422)\n"
         "  --duration SEC     simulated seconds per run (default 20)\n"
         "  --threads N        app threads (default: experiment default)\n"
         "  --fraction F       target fraction (default 0.9)\n"
         "  --corpus DIR       where repros go (default fuzz_corpus)\n"
         "  --max-shrink N     shrink budget in oracle runs (default 400)\n"
         "  --no-differential  skip the reference-identity oracle\n"
         "  --inject-bug KIND  synthetic oracle self-test (phase_gt2,\n"
         "                     kill_during_outage)\n"
         "  --dump-scenarios DIR  write every generated scenario CSV\n"
         "  --repro FILE       replay one corpus repro\n"
         "  --repro-dir DIR    replay a corpus; outcomes must match\n"
         "                     each file's # expect= line\n"
         "  --quiet            summary only\n";
}

/// Per-run generator seed: decorrelated from the campaign seed counter
/// so consecutive runs draw unrelated scenarios.
std::uint64_t derive_seed(std::uint64_t campaign_seed, int run) {
  std::uint64_t state =
      campaign_seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(run + 1);
  return splitmix64(state);
}

std::string sanitize(std::string name) {
  for (char& c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_')) {
      c = '_';
    }
  }
  return name;
}

/// Replays one repro file; returns true when the observed outcome
/// matches the file's expectation.
bool replay_repro(const std::string& path, bool differential, bool quiet) {
  const ReproCase repro = parse_repro_file(path);
  const FuzzCaseResult outcome = run_fuzz_case(repro, differential);
  const bool match = outcome.failed == repro.expect_fail;
  if (!quiet || !match) {
    std::cout << path << ": " << (outcome.failed ? "FAIL" : "pass")
              << " (expected " << (repro.expect_fail ? "fail" : "pass") << ")"
              << (match ? "" : "  <-- MISMATCH") << "\n";
    if (outcome.failed && !quiet) std::cout << "  " << outcome.message << "\n";
  }
  return match;
}

int run_campaign(const Options& opt) {
  const std::vector<std::string> profiles =
      opt.profiles.empty() ? ScenarioGenerator::profiles() : opt.profiles;
  const std::vector<std::string> variants =
      opt.variants.empty() ? VariantRegistry::instance().names() : opt.variants;
  const std::vector<std::string> platforms =
      opt.platforms.empty() ? std::vector<std::string>{"exynos5422"}
                            : opt.platforms;

  if (!opt.dump_dir.empty()) {
    std::filesystem::create_directories(opt.dump_dir);
  }

  int runs_executed = 0;
  int failures = 0;
  int repros_written = 0;
  int shrink_attempts_total = 0;

  for (int r = 0; r < opt.runs; ++r) {
    // --profile accepts either a bare profile name or a full gen: name
    // whose parameters pin the distribution (seed/horizon still rotate).
    const std::string& profile_name =
        profiles[static_cast<std::size_t>(r) % profiles.size()];
    GeneratorSpec spec = ScenarioGenerator::is_generated_name(profile_name)
                             ? ScenarioGenerator::parse_name(profile_name)
                             : ScenarioGenerator::profile(profile_name);
    spec.seed = derive_seed(opt.seed, r);
    spec.horizon_s = opt.duration_sec;
    const Scenario scenario = ScenarioGenerator(spec).generate();

    if (!opt.dump_dir.empty()) {
      std::ofstream out(opt.dump_dir + "/r" + std::to_string(r) +
                        ".scenario.csv");
      out << scenario.to_dsl();
    }

    for (const std::string& platform : platforms) {
      bool scenario_failed = false;
      for (const std::string& variant : variants) {
        ReproCase repro;
        repro.scenario = scenario;
        repro.variant = variant;
        repro.platform = platform;
        // One experiment seed for the whole campaign: scenario diversity
        // comes from generator seeds, and a shared seed keeps the
        // calibration cache hot across runs.
        repro.seed = opt.seed;
        repro.threads = opt.threads;
        repro.duration_sec = opt.duration_sec;
        repro.fraction = opt.fraction;
        repro.inject = opt.inject;
        ++runs_executed;
        const FuzzCaseResult outcome = run_fuzz_case(repro, opt.differential);
        if (!outcome.failed) continue;

        ++failures;
        if (!opt.quiet) {
          std::cout << "FAIL r" << r << " " << variant << " " << platform
                    << " (" << scenario.name << ")\n  " << outcome.message
                    << "\n";
        }

        ShrinkOptions shrink_options;
        shrink_options.max_attempts = opt.max_shrink;
        ShrinkStats stats;
        ReproCase probe = repro;
        const Scenario minimal = shrink_scenario(
            scenario,
            [&](const Scenario& candidate) {
              probe.scenario = candidate;
              return run_fuzz_case(probe, opt.differential).failed;
            },
            shrink_options, &stats);
        shrink_attempts_total += stats.attempts;

        repro.scenario = minimal;
        repro.failure = outcome.message.substr(0, outcome.message.find('\n'));
        repro.generator = scenario.name;
        repro.shrink_attempts = stats.attempts;
        repro.original_events = scenario.events.size();
        std::filesystem::create_directories(opt.corpus);
        const std::string file = opt.corpus + "/r" + std::to_string(r) + "_" +
                                 sanitize(variant) + "_" + sanitize(platform) +
                                 ".scenario.csv";
        repro.rerun = "hars_fuzz --repro " + file +
                      (opt.differential ? "" : " --no-differential");
        std::ofstream out(file);
        out << format_repro(repro);
        ++repros_written;
        if (!opt.quiet) {
          std::cout << "  shrunk " << scenario.events.size() << " -> "
                    << minimal.events.size() << " events in " << stats.attempts
                    << " attempts; wrote " << file << "\n";
        }
        scenario_failed = true;
        break;  // First failing variant is the repro; next platform.
      }
      if (scenario_failed) break;
    }
  }

  std::cout << "fuzz: " << opt.runs << " scenarios, " << runs_executed
            << " oracle runs, " << failures << " failures, " << repros_written
            << " repros";
  if (repros_written > 0) {
    std::cout << " -> " << opt.corpus << " (shrink attempts: "
              << shrink_attempts_total << ")";
  }
  std::cout << "\n";
  return failures == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  const auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "hars_fuzz: " << argv[i] << " needs a value\n";
      std::exit(1);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--runs") {
      opt.runs = std::atoi(value(i).c_str());
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(i).c_str(), nullptr, 0);
    } else if (arg == "--profile") {
      opt.profiles.push_back(value(i));
    } else if (arg == "--variant") {
      opt.variants.push_back(value(i));
    } else if (arg == "--platform") {
      opt.platforms.push_back(value(i));
    } else if (arg == "--duration") {
      opt.duration_sec = std::atof(value(i).c_str());
    } else if (arg == "--threads") {
      opt.threads = std::atoi(value(i).c_str());
    } else if (arg == "--fraction") {
      opt.fraction = std::atof(value(i).c_str());
    } else if (arg == "--corpus") {
      opt.corpus = value(i);
    } else if (arg == "--max-shrink") {
      opt.max_shrink = std::atoi(value(i).c_str());
    } else if (arg == "--no-differential") {
      opt.differential = false;
    } else if (arg == "--inject-bug") {
      opt.inject = value(i);
    } else if (arg == "--dump-scenarios") {
      opt.dump_dir = value(i);
    } else if (arg == "--repro") {
      opt.repro_file = value(i);
    } else if (arg == "--repro-dir") {
      opt.repro_dir = value(i);
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "hars_fuzz: unknown option " << arg << "\n";
      usage();
      return 1;
    }
  }

  try {
    if (!opt.repro_file.empty()) {
      return replay_repro(opt.repro_file, opt.differential, opt.quiet) ? 0 : 3;
    }
    if (!opt.repro_dir.empty()) {
      std::vector<std::string> files;
      for (const auto& entry :
           std::filesystem::directory_iterator(opt.repro_dir)) {
        const std::string path = entry.path().string();
        if (path.size() >= 13 &&
            path.substr(path.size() - 13) == ".scenario.csv") {
          files.push_back(path);
        }
      }
      std::sort(files.begin(), files.end());
      if (files.empty()) {
        std::cerr << "hars_fuzz: no *.scenario.csv in " << opt.repro_dir
                  << "\n";
        return 1;
      }
      int mismatches = 0;
      for (const std::string& file : files) {
        if (!replay_repro(file, opt.differential, opt.quiet)) ++mismatches;
      }
      std::cout << "corpus: " << files.size() << " repros, " << mismatches
                << " mismatches\n";
      return mismatches == 0 ? 0 : 3;
    }
    if (opt.runs <= 0) {
      std::cerr << "hars_fuzz: --runs must be >= 1\n";
      return 1;
    }
    return run_campaign(opt);
  } catch (const std::exception& error) {
    std::cerr << "hars_fuzz: " << error.what() << "\n";
    return 1;
  }
}
