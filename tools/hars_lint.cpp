// hars_lint: hot-path contract scanner for the HARS source tree.
//
// Scans src/ for HARS_HOT-annotated function bodies (see
// src/util/hot_path.hpp) and rejects constructs that break the hot
// tick path's determinism and allocation-free contracts:
//
//   no-alloc            new / malloc-family calls / make_unique|shared /
//                       container growth calls (.push_back, .resize, ...)
//   no-container-local  owning std:: container locals or temporaries
//   no-wallclock-rand   rand()/time()/clock()/std::random_device and the
//                       <chrono> wall clocks
//   no-unordered        unordered_map / unordered_set (iteration order
//                       differs across standard libraries)
//   no-obs-cold         cold telemetry entry points (obs registration,
//                       snapshotting, thread attach) — only the write
//                       fast path (counter_add / hist_observe /
//                       PhaseTimer) is hot-safe
//
// Exemptions (same line): // hars-lint: allow(<rule>): <reason>
// Exemption blocks:       // hars-lint: allow-begin(<rule>): <reason>
//                         ...
//                         // hars-lint: allow-end
//
// This is a token-level scanner, not a compiler plugin: it strips
// comments and literals, brace-matches each HARS_HOT body, and applies
// word-boundary token rules. That is deliberately simple enough to have
// no dependencies and fast enough to run as a ctest entry; anything it
// cannot see (allocation behind a helper call) is covered at runtime by
// util/alloc_guard.hpp instead.
//
// Usage:
//   hars_lint --root <repo-root>   scan <repo-root>/src, exit 1 on findings
//   hars_lint --self-test          run the embedded fixture checks
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

namespace {

struct Finding {
  std::string file;
  int line = 0;            // 1-based line of the offending token.
  std::string rule;
  std::string message;
  int region_line = 0;     // 1-based line where the HARS_HOT body opens.
};

bool is_ident(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Blanks comments, string literals and char literals with spaces,
/// preserving every newline and column so offsets keep their meaning.
std::string strip_comments_and_literals(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLine, kBlock, kStr, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;  // For R"delim( ... )delim".
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_ident(src[i - 1]))) {
          // Raw string: R"delim( ... )delim"
          std::size_t p = i + 2;
          while (p < src.size() && src[p] != '(') ++p;
          // Built in place: a `")" + substr + "\""` concat chain trips
          // GCC 12's spurious -Wrestrict on sanitized -O2 builds.
          raw_delim.assign(1, ')');
          raw_delim.append(src, i + 2, p - (i + 2));
          raw_delim.push_back('"');
          for (std::size_t j = i; j <= p && j < src.size(); ++j) out[j] = ' ';
          i = p;
          state = State::kRaw;
        } else if (c == '"') {
          state = State::kStr;
          out[i] = ' ';
        } else if (c == '\'' && !(i > 0 && is_ident(src[i - 1]))) {
          // Skip digit separators (1'000'000) via the ident-prev check.
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < src.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size() && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 0; j < raw_delim.size(); ++j) {
            if (src[i + j] != '\n') out[i + j] = ' ';
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

/// Offsets of the first character of every line (1-based access via
/// line_of).
std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

int line_of(const std::vector<std::size_t>& starts, std::size_t offset) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<int>(it - starts.begin());
}

/// Per-line rule suppressions parsed from the ORIGINAL text (the
/// markers live in comments, which the stripped text blanks out).
struct Suppressions {
  // suppressed[line - 1] holds the rules exempt on that line.
  std::vector<std::vector<std::string>> suppressed;

  bool allows(int line, const std::string& rule) const {
    const auto& rules = suppressed[static_cast<std::size_t>(line - 1)];
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
  }
};

Suppressions parse_suppressions(const std::string& src,
                                const std::vector<std::size_t>& starts) {
  Suppressions out;
  out.suppressed.resize(starts.size());
  std::vector<std::string> block_stack;
  for (std::size_t li = 0; li < starts.size(); ++li) {
    const std::size_t begin = starts[li];
    const std::size_t end =
        li + 1 < starts.size() ? starts[li + 1] : src.size();
    const std::string_view line(src.data() + begin, end - begin);

    // Opens first, so an allow-begin line is itself exempt.
    std::size_t pos = 0;
    bool saw_end = false;
    while ((pos = line.find("hars-lint:", pos)) != std::string_view::npos) {
      const std::string_view rest = line.substr(pos);
      const auto parse_rule = [&](std::string_view marker) -> std::string {
        const std::size_t m = rest.find(marker);
        if (m == std::string_view::npos) return {};
        const std::size_t open = m + marker.size();
        const std::size_t close = rest.find(')', open);
        if (close == std::string_view::npos) return {};
        return std::string(rest.substr(open, close - open));
      };
      if (rest.find("allow-begin(") != std::string_view::npos) {
        block_stack.push_back(parse_rule("allow-begin("));
      } else if (rest.find("allow-end") != std::string_view::npos) {
        saw_end = true;
      } else if (rest.find("allow(") != std::string_view::npos) {
        out.suppressed[li].push_back(parse_rule("allow("));
      }
      pos += 10;
    }
    for (const std::string& rule : block_stack) {
      out.suppressed[li].push_back(rule);
    }
    // Ends last, so the allow-end line is still covered by its block.
    if (saw_end && !block_stack.empty()) block_stack.pop_back();
  }
  return out;
}

struct HotRegion {
  std::size_t begin = 0;  // Offset just past the opening '{'.
  std::size_t end = 0;    // Offset of the closing '}'.
  int open_line = 0;
};

/// Finds every HARS_HOT annotation in the stripped text and
/// brace-matches the body it precedes. Annotations on declarations
/// (';' before any '{') and on preprocessor lines are skipped.
std::vector<HotRegion> find_hot_regions(const std::string& code,
                                        const std::vector<std::size_t>& starts) {
  std::vector<HotRegion> regions;
  static constexpr std::string_view kTag = "HARS_HOT";
  std::size_t pos = 0;
  while ((pos = code.find(kTag, pos)) != std::string::npos) {
    const std::size_t tag = pos;
    pos += kTag.size();
    if (tag > 0 && is_ident(code[tag - 1])) continue;
    if (pos < code.size() && is_ident(code[pos])) continue;
    // Skip `#define HARS_HOT ...` and friends.
    const int line = line_of(starts, tag);
    const std::size_t ls = starts[static_cast<std::size_t>(line - 1)];
    std::size_t first = ls;
    while (first < code.size() && (code[first] == ' ' || code[first] == '\t')) {
      ++first;
    }
    if (first < code.size() && code[first] == '#') continue;

    // Declaration check: a ';' before the first '{' means no body here.
    std::size_t scan = pos;
    while (scan < code.size() && code[scan] != ';' && code[scan] != '{') {
      ++scan;
    }
    if (scan >= code.size() || code[scan] == ';') continue;

    // Brace-match the body.
    int depth = 1;
    std::size_t body_end = scan + 1;
    while (body_end < code.size() && depth > 0) {
      if (code[body_end] == '{') ++depth;
      if (code[body_end] == '}') --depth;
      ++body_end;
    }
    regions.push_back(HotRegion{scan + 1, body_end > 0 ? body_end - 1 : 0,
                                line_of(starts, scan)});
    pos = scan + 1;  // Nested HARS_HOT inside a body is still found.
  }
  return regions;
}

// --- Token rules ------------------------------------------------------

bool boundary_before(const std::string& code, std::size_t pos) {
  return pos == 0 || !is_ident(code[pos - 1]);
}

bool boundary_after(const std::string& code, std::size_t end) {
  return end >= code.size() || !is_ident(code[end]);
}

char next_nonspace(const std::string& code, std::size_t pos) {
  while (pos < code.size() &&
         (code[pos] == ' ' || code[pos] == '\t' || code[pos] == '\n')) {
    ++pos;
  }
  return pos < code.size() ? code[pos] : '\0';
}

/// Emits one finding per match of `token` inside [begin, end) that
/// passes `accept(match_offset)`.
template <typename AcceptFn>
void scan_token(const std::string& code, const HotRegion& region,
                const std::vector<std::size_t>& starts,
                const Suppressions& supp, std::string_view token,
                const std::string& rule, const std::string& message,
                const std::string& file, std::vector<Finding>& findings,
                AcceptFn&& accept) {
  std::size_t pos = region.begin;
  while (pos < region.end &&
         (pos = code.find(token, pos)) != std::string::npos) {
    if (pos >= region.end) break;
    const std::size_t hit = pos;
    pos += token.size();
    if (!accept(hit)) continue;
    const int line = line_of(starts, hit);
    if (supp.allows(line, rule)) continue;
    findings.push_back(Finding{file, line, rule, message, region.open_line});
  }
}

void check_region(const std::string& code, const HotRegion& region,
                  const std::vector<std::size_t>& starts,
                  const Suppressions& supp, const std::string& file,
                  std::vector<Finding>& findings) {
  const auto word = [&](std::size_t hit, std::size_t len) {
    return boundary_before(code, hit) && boundary_after(code, hit + len);
  };
  const auto call = [&](std::size_t hit, std::size_t len) {
    // `foo(` with a word boundary before: std::time( matches (':' is a
    // boundary) while unit_time( does not ('_' is an identifier char).
    return boundary_before(code, hit) && code[hit + len] == '(';
  };
  const auto method = [&](std::size_t hit) {
    // `.foo(` or `->foo(`: container growth is always a member call.
    return hit > 0 && (code[hit - 1] == '.' ||
                       (hit > 1 && code[hit - 1] == '>' && code[hit - 2] == '-'));
  };

  // no-alloc -----------------------------------------------------------
  scan_token(code, region, starts, supp, "new", "no-alloc",
             "operator new in hot path", file, findings,
             [&](std::size_t hit) { return word(hit, 3); });
  for (std::string_view fn : {"malloc(", "calloc(", "realloc(", "strdup(",
                              "aligned_alloc("}) {
    scan_token(code, region, starts, supp, fn, "no-alloc",
               std::string(fn.substr(0, fn.size() - 1)) + "() in hot path",
               file, findings,
               [&](std::size_t hit) { return call(hit, fn.size() - 1); });
  }
  for (std::string_view fn : {"make_unique", "make_shared"}) {
    scan_token(code, region, starts, supp, fn, "no-alloc",
               std::string(fn) + " in hot path", file, findings,
               [&](std::size_t hit) {
                 const char after = code[hit + fn.size()];
                 return boundary_before(code, hit) &&
                        (after == '<' || after == '(');
               });
  }
  for (std::string_view fn :
       {"push_back(", "emplace_back(", "emplace(", "push_front(", "resize(",
        "reserve(", "insert(", "append("}) {
    scan_token(code, region, starts, supp, fn, "no-alloc",
               "container growth ." + std::string(fn.substr(0, fn.size() - 1)) +
                   "() in hot path",
               file, findings, [&](std::size_t hit) { return method(hit); });
  }

  // no-container-local -------------------------------------------------
  for (std::string_view ct : {"vector", "deque", "list", "map", "set",
                              "multimap", "multiset", "queue", "stack",
                              "priority_queue", "basic_string"}) {
    const std::string token = "std::" + std::string(ct);
    scan_token(code, region, starts, supp, token, "no-container-local",
               "owning " + token + " local/temporary in hot path", file,
               findings, [&](std::size_t hit) {
                 if (!boundary_before(code, hit)) return false;
                 std::size_t p = hit + token.size();
                 if (p >= code.size() || code[p] != '<') return false;
                 // Match the template argument list ('>>' closes two).
                 int depth = 0;
                 while (p < code.size()) {
                   if (code[p] == '<') ++depth;
                   if (code[p] == '>') {
                     --depth;
                     if (depth == 0) break;
                   }
                   ++p;
                 }
                 const char after = next_nonspace(code, p + 1);
                 // A reference/pointer does not own; anything that then
                 // names or constructs an object does.
                 return after != '&' && after != '*' &&
                        (is_ident(after) || after == '(' || after == '{');
               });
  }
  scan_token(code, region, starts, supp, "std::string", "no-container-local",
             "owning std::string local/temporary in hot path", file, findings,
             [&](std::size_t hit) {
               if (!boundary_before(code, hit)) return false;
               const std::size_t end = hit + 11;
               if (end < code.size() && is_ident(code[end])) return false;
               const char after = next_nonspace(code, end);
               return after != '&' && after != '*' && after != ':' &&
                      (is_ident(after) || after == '(' || after == '{');
             });

  // no-wallclock-rand --------------------------------------------------
  for (std::string_view fn : {"rand(", "srand(", "time(", "clock("}) {
    scan_token(code, region, starts, supp, fn, "no-wallclock-rand",
               std::string(fn.substr(0, fn.size() - 1)) +
                   "() in hot path (unseeded/wall-clock)",
               file, findings,
               [&](std::size_t hit) { return call(hit, fn.size() - 1); });
  }
  for (std::string_view id : {"random_device", "steady_clock", "system_clock",
                              "high_resolution_clock"}) {
    scan_token(code, region, starts, supp, id, "no-wallclock-rand",
               std::string(id) + " in hot path", file, findings,
               [&](std::size_t hit) { return word(hit, id.size()); });
  }

  // no-unordered -------------------------------------------------------
  for (std::string_view id : {"unordered_map", "unordered_set",
                              "unordered_multimap", "unordered_multiset"}) {
    scan_token(code, region, starts, supp, id, "no-unordered",
               std::string(id) +
                   " in hot path (iteration order is not portable)",
               file, findings,
               [&](std::size_t hit) { return word(hit, id.size()); });
  }

  // no-obs-cold --------------------------------------------------------
  // Cold telemetry entry points lock, allocate, or walk every shard;
  // only the obs write fast path belongs inside a HARS_HOT body.
  for (std::string_view fn :
       {"register_counter(", "register_gauge(", "register_histogram(",
        "take_snapshot(", "ensure_thread_registered("}) {
    scan_token(code, region, starts, supp, fn, "no-obs-cold",
               "cold telemetry call " +
                   std::string(fn.substr(0, fn.size() - 1)) +
                   "() in hot path (locks/allocates; hot-safe writes are "
                   "counter_add/hist_observe/PhaseTimer)",
               file, findings,
               [&](std::size_t hit) { return call(hit, fn.size() - 1); });
  }
}

std::vector<Finding> analyze(const std::string& src, const std::string& file) {
  std::vector<Finding> findings;
  const std::string code = strip_comments_and_literals(src);
  const std::vector<std::size_t> starts = line_starts(src);
  const Suppressions supp = parse_suppressions(src, starts);
  for (const HotRegion& region : find_hot_regions(code, starts)) {
    check_region(code, region, starts, supp, file, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

void print_findings(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    std::fprintf(stderr,
                 "%s:%d: error: [%s] %s (HARS_HOT body opens at line %d)\n",
                 f.file.c_str(), f.line, f.rule.c_str(), f.message.c_str(),
                 f.region_line);
  }
}

// --- Directory scan ---------------------------------------------------

int scan_tree(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  const fs::path src_dir = root / "src";
  if (!fs::is_directory(src_dir)) {
    std::fprintf(stderr, "hars_lint: no src/ directory under %s\n",
                 root.string().c_str());
    return 2;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> all;
  int hot_files = 0;
  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "hars_lint: cannot read %s\n",
                   path.string().c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string src = buf.str();
    if (src.find("HARS_HOT") != std::string::npos) ++hot_files;
    const std::string rel =
        fs::relative(path, root).generic_string();
    const std::vector<Finding> findings = analyze(src, rel);
    all.insert(all.end(), findings.begin(), findings.end());
  }
  print_findings(all);
  std::printf("hars_lint: %zu files scanned, %d with HARS_HOT regions, "
              "%zu violation(s)\n",
              files.size(), hot_files, all.size());
  return all.empty() ? 0 : 1;
}

// --- Self-test --------------------------------------------------------

/// A fixture with one deliberate violation per rule (plus a declaration
/// and a suppressed line that must NOT be flagged).
const char kBadFixture[] = R"fixture(
#include <vector>
HARS_HOT void declared_only();
HARS_HOT int hot_bad(std::vector<int>& out) {
  std::vector<int> tmp;
  tmp.push_back(1);
  int* p = new int(3);
  out.resize(9);
  long t = time(nullptr);
  std::unordered_map<int, int> order;
  auto snap = registry.take_snapshot();
  obs::ensure_thread_registered();
  (void)p; (void)t; (void)order; (void)snap;
  return rand();
}
)fixture";

/// Everything here is exempt, out of a hot region, or a near-miss the
/// boundary rules must not trip on.
const char kCleanFixture[] = R"fixture(
#include <vector>
HARS_HOT double hot_ok(std::vector<int>& v, double unit) {
  v.reserve(8);  // hars-lint: allow(no-alloc): retained capacity
  // hars-lint: allow-begin(no-alloc): one-time growth
  v.push_back(1);
  v.push_back(2);
  // hars-lint: allow-end
  const char* words = "new malloc( time( take_snapshot( std::vector<int> x";
  const double t = unit_time(unit);  // '_' blocks the time( token.
  const std::vector<int>& ref = v;   // Reference: owns nothing.
  obs::counter_add(cat.ticks, 2);    // The obs write path is hot-safe.
  obs::ensure_thread_registered();   // hars-lint: allow(no-obs-cold): pre-guard attach point
  (void)words; (void)ref;
  return t + v.size();
}
int cold() { return rand(); }
double unit_time(double u) { return u * 2.0; }
)fixture";

int self_test() {
  struct Expected {
    int line;
    const char* rule;
  };
  // Lines are 1-based within the fixture (leading newline = line 1).
  const std::vector<Expected> expected = {
      {5, "no-container-local"},  // std::vector<int> tmp;
      {6, "no-alloc"},            // tmp.push_back(1)
      {7, "no-alloc"},            // new int(3)
      {8, "no-alloc"},            // out.resize(9)
      {9, "no-wallclock-rand"},   // time(nullptr)
      {10, "no-unordered"},       // std::unordered_map
      {11, "no-obs-cold"},        // .take_snapshot()
      {12, "no-obs-cold"},        // ensure_thread_registered()
      {14, "no-wallclock-rand"},  // rand()
  };
  const std::vector<Finding> bad = analyze(kBadFixture, "fixture_bad.cpp");
  bool ok = bad.size() == expected.size();
  if (ok) {
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (bad[i].line != expected[i].line || bad[i].rule != expected[i].rule) {
        ok = false;
        break;
      }
    }
  }
  if (!ok) {
    std::fprintf(stderr,
                 "self-test FAILED: bad fixture produced %zu finding(s), "
                 "expected %zu:\n",
                 bad.size(), expected.size());
    print_findings(bad);
    return 1;
  }

  const std::vector<Finding> clean =
      analyze(kCleanFixture, "fixture_clean.cpp");
  if (!clean.empty()) {
    std::fprintf(stderr,
                 "self-test FAILED: clean fixture produced %zu finding(s):\n",
                 clean.size());
    print_findings(clean);
    return 1;
  }
  std::printf("hars_lint self-test: PASS (%zu expected findings flagged, "
              "clean fixture clean)\n",
              expected.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 1 && args[0] == "--self-test") {
    return self_test();
  }
  if (args.size() == 2 && args[0] == "--root") {
    return scan_tree(args[1]);
  }
  std::fprintf(stderr,
               "usage: hars_lint --root <repo-root> | hars_lint --self-test\n");
  return 2;
}
