// hars_sim: command-line front end for the experiment runner.
//
//   hars_sim --bench SW --version HARS-E --fraction 0.5 --duration 120
//            [--trace trace.csv]
//
// Runs one benchmark under one runtime version on the simulated
// big.LITTLE platform and prints the metrics the paper's figures are
// built from. With --trace, the behaviour trace (heartbeat rate, core
// counts, frequencies) is written as CSV.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/runner.hpp"
#include "util/csv.hpp"

namespace {

using namespace hars;

void usage() {
  std::puts(
      "usage: hars_sim [options]\n"
      "  --bench NAME      BL|BO|FA|FE|FL|SW (default SW)\n"
      "  --version NAME    Baseline|SO|HARS-I|HARS-E|HARS-EI (default HARS-E)\n"
      "  --fraction F      target as fraction of max achievable (default 0.5)\n"
      "  --duration SEC    measured run length in simulated seconds (default 120)\n"
      "  --threads N       application threads (default 8)\n"
      "  --seed N          deterministic seed (default 1)\n"
      "  --scheduler NAME  chunk|interleaved|hierarchical (HARS versions)\n"
      "  --predictor NAME  last-value|kalman (HARS versions)\n"
      "  --policy NAME     incremental|exhaustive|tabu (HARS versions)\n"
      "  --learn-ratio     enable online big:little ratio learning\n"
      "  --trace FILE      write the behaviour trace as CSV\n"
      "  --help            this text");
}

bool parse_bench(const std::string& name, ParsecBenchmark* out) {
  for (ParsecBenchmark b : all_parsec_benchmarks()) {
    if (name == parsec_code(b) || name == parsec_name(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

bool parse_version(const std::string& name, SingleVersion* out) {
  for (SingleVersion v : all_single_versions()) {
    if (name == single_version_name(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  ParsecBenchmark bench = ParsecBenchmark::kSwaptions;
  SingleVersion version = SingleVersion::kHarsE;
  SingleRunOptions options;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      usage();
      return 0;
    } else if (arg == "--bench") {
      if (!parse_bench(next(), &bench)) {
        std::fprintf(stderr, "unknown benchmark\n");
        return 2;
      }
    } else if (arg == "--version") {
      if (!parse_version(next(), &version)) {
        std::fprintf(stderr, "unknown version\n");
        return 2;
      }
    } else if (arg == "--fraction") {
      options.target_fraction = std::atof(next());
    } else if (arg == "--duration") {
      options.duration = static_cast<TimeUs>(std::atof(next()) * kUsPerSec);
    } else if (arg == "--threads") {
      options.threads = std::atoi(next());
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--scheduler") {
      const std::string s = next();
      options.override_scheduler = s == "chunk"         ? 0
                                   : s == "interleaved" ? 1
                                   : s == "hierarchical" ? 2
                                                         : -1;
    } else if (arg == "--predictor") {
      const std::string s = next();
      options.override_predictor = s == "last-value" ? 0 : s == "kalman" ? 1 : -1;
    } else if (arg == "--policy") {
      const std::string s = next();
      options.override_policy = s == "incremental"  ? 0
                                : s == "exhaustive" ? 1
                                : s == "tabu"       ? 2
                                                    : -1;
    } else if (arg == "--learn-ratio") {
      options.learn_ratio = true;
    } else if (arg == "--trace") {
      trace_path = next();
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  const SingleRunResult r = run_single(bench, version, options);
  std::printf("bench            %s (%s)\n", parsec_code(bench), parsec_name(bench));
  std::printf("version          %s\n", single_version_name(version));
  std::printf("target           %.3f hb/s [%.3f, %.3f]\n", r.target.avg(),
              r.target.min, r.target.max);
  std::printf("avg rate         %.3f hb/s\n", r.metrics.avg_rate_hps);
  std::printf("norm perf        %.3f\n", r.metrics.norm_perf);
  std::printf("in-window        %.1f%%\n", 100.0 * r.metrics.in_window_fraction);
  std::printf("avg power        %.3f W\n", r.metrics.avg_power_w);
  std::printf("perf/watt        %.3f\n", r.metrics.perf_per_watt);
  std::printf("energy/beat      %.3f J\n", r.metrics.energy_per_beat_j);
  std::printf("manager CPU      %.2f%%\n", r.metrics.manager_cpu_pct);
  std::printf("heartbeats       %lld\n", static_cast<long long>(r.metrics.heartbeats));
  if (version == SingleVersion::kStaticOptimal) {
    std::printf("static state     %s\n", r.static_state.to_string().c_str());
  }

  if (!trace_path.empty()) {
    CsvWriter csv(trace_path);
    if (!csv.ok()) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    csv.header({"hb_index", "hps", "b_core", "l_core", "target_min",
                "target_max", "b_freq_ghz", "l_freq_ghz"});
    for (const TracePoint& p : r.trace) {
      csv.row({static_cast<double>(p.hb_index), p.hps,
               static_cast<double>(p.big_cores),
               static_cast<double>(p.little_cores), r.target.min, r.target.max,
               p.big_freq_ghz, p.little_freq_ghz});
    }
    std::printf("trace            %s (%zu points)\n", trace_path.c_str(),
                r.trace.size());
  }
  return 0;
}
