// hars_sim: command-line front end for the unified Experiment API.
//
//   hars_sim --bench SW --version HARS-E --fraction 0.5 --duration 120
//            [--trace trace.csv]
//   hars_sim sweep --bench SW --bench BO --version Baseline --version HARS-E
//            --jobs 4 [--csv out.csv] [--jsonl out.jsonl]
//
// Runs one or more benchmarks under any registered runtime version on the
// simulated big.LITTLE platform and prints the metrics the paper's
// figures are built from. --version accepts every VariantRegistry name
// (Baseline, SO, HARS-I/E/EI, CONS-I, MP-HARS-I/E, plus user-registered
// variants); repeat --bench to run a multi-application case. With
// --trace, each app's behaviour trace (heartbeat rate, core counts,
// frequencies) is written as CSV.
//
// In `sweep` mode, repeated --bench/--version/--fraction/--distance flags
// become axes of a cartesian campaign executed on the work-stealing pool
// (--jobs N; 0 = hardware concurrency); results stream to stdout as a
// table and optionally to --csv / --jsonl sinks. --derive-seeds gives
// every case a coordinate-derived RNG seed.
//
// With --remote ADDR, both modes submit the same declarative campaign
// through a hars_simd daemon instead of executing in-process; the
// streamed records and the printed run report are byte-identical to
// local execution (the daemon runs the same expansion and engine code).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "backend/backend_registry.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "exp/variant_registry.hpp"
#include "hmp/platform_registry.hpp"
#include "obs/telemetry.hpp"
#include "scenario/scenario_registry.hpp"
#include "scenario/trace_sink.hpp"
#include "svc/client.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"
#include "util/csv.hpp"

namespace {

using namespace hars;

void usage() {
  std::string versions;
  for (const std::string& name : VariantRegistry::instance().names()) {
    if (!versions.empty()) versions += '|';
    versions += name;
  }
  std::printf(
      "usage: hars_sim [sweep] [options]\n"
      "  --bench NAME      BL|BO|FA|FE|FL|SW (default SW); repeat for a\n"
      "                    multi-application case (run mode) or a bench\n"
      "                    axis (sweep mode)\n"
      "  --version NAME    %s\n"
      "                    (default HARS-E); repeatable in sweep mode\n"
      "  --platform NAME   registered platform (default exynos5422);\n"
      "                    repeatable in sweep mode; --list-platforms to\n"
      "                    enumerate\n"
      "  --list-platforms  print the platform catalogue and exit\n"
      "  --backend NAME    execution backend (default sim); mock_linux and\n"
      "                    linux run the managers against a (fake or real)\n"
      "                    Linux platform; --list-backends to enumerate;\n"
      "                    run mode only (sweeps are simulation campaigns)\n"
      "  --list-backends   print the backend catalogue and exit\n"
      "  --scenario NAME   registered scenario (timed arrivals/departures,\n"
      "                    target/phase shifts, core failures); exclusive\n"
      "                    with --bench; repeatable in sweep mode;\n"
      "                    --list-scenarios to enumerate\n"
      "  --list-scenarios  print the scenario catalogue and exit\n"
      "  --gen-scenario P  generated scenario: a generator profile name\n"
      "                    (poisson, rush, storm, hotplug, retarget,\n"
      "                    churn, mixed) or a full gen:PROFILE:k=v;...\n"
      "                    name; repeatable (sugar for --scenario gen:...)\n"
      "  --gen-seed N      seed for --gen-scenario names that do not\n"
      "                    carry an explicit seed= parameter\n"
      "  --capture FILE    write the scenario trace as JSONL (run mode,\n"
      "                    with --scenario; replayable bit-for-bit)\n"
      "  --replay FILE     re-run a captured trace and verify it is\n"
      "                    bit-identical; exits non-zero on divergence\n"
      "  --sample-ticks N  trace capture cadence in engine ticks (default 10)\n"
      "  --fraction F      target as fraction of max achievable (default 0.5);\n"
      "                    repeatable in sweep mode\n"
      "  --duration SEC    measured run length in simulated seconds (default 120)\n"
      "  --threads N       application threads (default 8)\n"
      "  --seed N          deterministic seed (default 1)\n"
      "  --scheduler NAME  chunk|interleaved|hierarchical (HARS versions)\n"
      "  --predictor NAME  last-value|kalman (HARS versions)\n"
      "  --policy NAME     incremental|exhaustive|tabu (HARS versions)\n"
      "  --learn-ratio     enable online big:little ratio learning\n"
      "  --remote ADDR     submit through a hars_simd daemon (tcp:HOST:PORT\n"
      "                    or unix:PATH) instead of running in-process;\n"
      "                    records and report are byte-identical to a local\n"
      "                    run (--capture/--replay/telemetry are local-only)\n"
      "  --trace FILE      write the behaviour trace(s) as CSV (run mode)\n"
      "  --metrics FILE    write telemetry metrics as JSON lines (run mode;\n"
      "                    any telemetry flag arms the metrics registry)\n"
      "  --metrics-csv FILE  write telemetry metrics as CSV (run mode)\n"
      "  --prom FILE       write telemetry metrics in Prometheus text\n"
      "                    format (run mode)\n"
      "  --trace-spans FILE  write sampled tick-phase spans as Chrome\n"
      "                    trace-event JSON (run mode; open in\n"
      "                    chrome://tracing or Perfetto)\n"
      "sweep mode only:\n"
      "  --distance D      HARS-EI search distance axis; repeatable\n"
      "  --jobs N          pool workers (default 1; 0 = hardware threads)\n"
      "  --csv FILE        write result records as CSV\n"
      "  --jsonl FILE      write result records as JSON lines\n"
      "  --derive-seeds    per-case coordinate-derived RNG seeds\n"
      "  --help            this text\n",
      versions.c_str());
}

void list_platforms() {
  std::printf("%-14s %-8s %-6s %s\n", "platform", "clusters", "cores",
              "topology (type count x ipc @ DVFS range GHz)");
  for (const std::string& name : PlatformRegistry::instance().names()) {
    const PlatformSpec spec = PlatformRegistry::instance().get(name);
    std::string topo;
    int cores = 0;
    for (const PlatformCluster& cluster : spec.clusters) {
      const ClusterSpec& t = cluster.topology;
      cores += t.core_count;
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s%s %dx%.1f @ %.2f-%.2f",
                    topo.empty() ? "" : " | ",
                    core_type_name(t.type), t.core_count, t.ipc,
                    t.freqs_ghz.front(), t.freqs_ghz.back());
      topo += buf;
    }
    std::printf("%-14s %-8zu %-6d %s\n", spec.name.c_str(),
                spec.clusters.size(), cores, topo.c_str());
  }
}

void list_scenarios() {
  std::printf("%-14s %-7s %s\n", "scenario", "events", "timeline");
  for (const std::string& name : ScenarioRegistry::instance().names()) {
    const Scenario* s = ScenarioRegistry::instance().find(name);
    std::string timeline;
    for (const ScenarioEvent& e : s->events) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s%.0fs:%s",
                    timeline.empty() ? "" : " ",
                    us_to_sec(e.time), scenario_event_name(e.kind));
      timeline += buf;
    }
    std::printf("%-14s %-7zu %s\n", name.c_str(), s->events.size(),
                timeline.c_str());
  }
}

bool parse_scenario(const std::string& name) {
  try {
    // get() resolves presets and synthesizes gen: names; a malformed
    // gen: name surfaces the generator's diagnostic instead of the
    // unknown-name listing.
    ScenarioRegistry::instance().get(name);
    return true;
  } catch (const ScenarioError& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return false;
  }
}

int run_replay(const std::string& path) {
  try {
    const ReplayOutcome outcome = replay_trace_file(path);
    std::printf("replay           %s: %s\n", path.c_str(),
                outcome.ok ? "bit-identical" : "DIVERGENT");
    if (!outcome.ok) std::fprintf(stderr, "%s\n", outcome.message.c_str());
    return outcome.ok ? 0 : 1;
  } catch (const ScenarioError& error) {
    std::fprintf(stderr, "replay failed: %s\n", error.what());
    return 2;
  }
}

bool parse_platform(const std::string& name) {
  if (PlatformRegistry::instance().find(name) != nullptr) return true;
  std::fprintf(stderr, "unknown platform %s; known:", name.c_str());
  for (const std::string& known : PlatformRegistry::instance().names()) {
    std::fprintf(stderr, " %s", known.c_str());
  }
  std::fprintf(stderr, "\n");
  return false;
}

void list_backends() {
  std::printf("%-12s %s\n", "backend", "description");
  for (const BackendEntry& e : BackendRegistry::instance().entries()) {
    std::printf("%-12s %s\n", e.name.c_str(), e.description.c_str());
  }
}

// Up-front name validation, mirroring parse_platform: a malformed
// --backend is rejected before any experiment is built.
bool parse_backend(const std::string& name) {
  if (BackendRegistry::instance().known(name)) return true;
  std::fprintf(stderr, "unknown backend %s; known:", name.c_str());
  for (const std::string& known : BackendRegistry::instance().names()) {
    std::fprintf(stderr, " %s", known.c_str());
  }
  std::fprintf(stderr, "\n");
  return false;
}

bool parse_bench(const std::string& name, ParsecBenchmark* out) {
  for (ParsecBenchmark b : all_parsec_benchmarks()) {
    if (name == parsec_code(b) || name == parsec_name(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

void write_trace(const std::string& path, const PerfTarget& target,
                 const std::vector<TracePoint>& trace) {
  CsvWriter csv(path);
  if (!csv.ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  csv.header({"hb_index", "hps", "b_core", "l_core", "target_min",
              "target_max", "b_freq_ghz", "l_freq_ghz"});
  for (const TracePoint& p : trace) {
    csv.row({static_cast<double>(p.hb_index), p.hps,
             static_cast<double>(p.big_cores),
             static_cast<double>(p.little_cores), target.min, target.max,
             p.big_freq_ghz, p.little_freq_ghz});
  }
  std::printf("trace            %s (%zu points)\n", path.c_str(),
              trace.size());
}

// Writes one trace CSV per app, suffixing slot index + code/label when
// the run had several apps (so repeated benchmarks get distinct files).
void write_traces(const std::string& trace_path,
                  const svc::RunResultPayload& payload,
                  const std::vector<ParsecBenchmark>& benches,
                  const std::string& scenario) {
  if (payload.apps.size() == 1) {
    const svc::RunAppPayload& app = payload.apps.front();
    write_trace(trace_path, app.target, app.trace);
    return;
  }
  for (std::size_t i = 0; i < payload.apps.size(); ++i) {
    std::string path = trace_path;
    std::string suffix = "_";
    suffix += std::to_string(i + 1);
    suffix += '_';
    suffix += scenario.empty() ? parsec_code(benches[i])
                               : payload.apps[i].label.c_str();
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.rfind('.');
    const bool dot_in_name = dot != std::string::npos &&
                             (slash == std::string::npos || dot > slash);
    path.insert(dot_in_name ? dot : path.size(), suffix);
    write_trace(path, payload.apps[i].target, payload.apps[i].trace);
  }
}

// The human-readable run report, printed from the wire payload struct so
// the local path (via run_payload_of) and --remote produce identical
// bytes.
void print_run_report(const svc::RunResultPayload& payload,
                      const std::vector<ParsecBenchmark>& benches,
                      const std::string& version, const std::string& platform,
                      const std::string& scenario) {
  std::printf("version          %s\n", version.c_str());
  if (!platform.empty()) {
    std::printf("platform         %s\n", platform.c_str());
  }
  if (!scenario.empty()) {
    std::printf("scenario         %s\n", scenario.c_str());
  }
  for (std::size_t i = 0; i < payload.apps.size(); ++i) {
    const svc::RunAppPayload& app = payload.apps[i];
    if (scenario.empty()) {
      std::printf("bench            %s (%s)\n", parsec_code(benches[i]),
                  parsec_name(benches[i]));
    } else {
      std::string departed;
      if (app.depart_time_us >= 0) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), ", departed %.1fs",
                      us_to_sec(app.depart_time_us));
        departed = buf;
      }
      std::printf("app              %s (arrived %.1fs%s)\n", app.label.c_str(),
                  us_to_sec(app.spawn_time_us), departed.c_str());
    }
    std::printf("target           %.3f hb/s [%.3f, %.3f]\n", app.target.avg(),
                app.target.min, app.target.max);
    std::printf("avg rate         %.3f hb/s\n", app.metrics.avg_rate_hps);
    std::printf("norm perf        %.3f\n", app.metrics.norm_perf);
    std::printf("in-window        %.1f%%\n",
                100.0 * app.metrics.in_window_fraction);
    std::printf("avg power        %.3f W\n", app.metrics.avg_power_w);
    std::printf("perf/watt        %.3f\n", app.metrics.perf_per_watt);
    std::printf("energy/beat      %.3f J\n", app.metrics.energy_per_beat_j);
    std::printf("manager CPU      %.2f%%\n", app.metrics.manager_cpu_pct);
    std::printf("heartbeats       %lld\n",
                static_cast<long long>(app.metrics.heartbeats));
  }
  if (payload.has_static_state) {
    std::printf("static state     %s\n", payload.static_state_text.c_str());
  }
}

int run_sweep_mode(int argc, char** argv) {
  std::vector<ParsecBenchmark> benches;
  std::vector<std::string> versions;
  std::vector<std::string> platforms;
  std::vector<std::string> scenarios;
  std::vector<std::string> gen_scenarios;
  std::uint64_t gen_seed = 0;
  bool have_gen_seed = false;
  std::vector<double> fractions;
  std::vector<int> distances;
  double duration_sec = 120.0;
  int threads = 8;
  std::uint64_t seed = 1;
  bool derive_seeds = false;
  std::string csv_path;
  std::string jsonl_path;
  std::string remote;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      usage();
      return 0;
    } else if (arg == "--bench") {
      ParsecBenchmark bench;
      if (!parse_bench(next(), &bench)) {
        std::fprintf(stderr, "unknown benchmark\n");
        return 2;
      }
      benches.push_back(bench);
    } else if (arg == "--version") {
      const std::string version = next();
      if (VariantRegistry::instance().find(version) == nullptr) {
        std::fprintf(stderr, "unknown version %s\n", version.c_str());
        return 2;
      }
      versions.push_back(version);
    } else if (arg == "--platform") {
      const std::string platform = next();
      if (!parse_platform(platform)) return 2;
      platforms.push_back(platform);
    } else if (arg == "--list-platforms") {
      list_platforms();
      return 0;
    } else if (arg == "--backend") {
      const std::string backend = next();
      if (!parse_backend(backend)) return 2;
      if (backend != "sim") {
        std::fprintf(stderr,
                     "sweep mode is a simulation campaign; --backend %s is "
                     "run-mode only\n",
                     backend.c_str());
        return 2;
      }
    } else if (arg == "--list-backends") {
      list_backends();
      return 0;
    } else if (arg == "--scenario") {
      const std::string name = next();
      if (!parse_scenario(name)) return 2;
      scenarios.push_back(name);
    } else if (arg == "--gen-scenario") {
      gen_scenarios.push_back(next());
    } else if (arg == "--gen-seed") {
      gen_seed = std::strtoull(next(), nullptr, 0);
      have_gen_seed = true;
    } else if (arg == "--list-scenarios") {
      list_scenarios();
      return 0;
    } else if (arg == "--fraction") {
      fractions.push_back(std::atof(next()));
    } else if (arg == "--distance") {
      distances.push_back(std::atoi(next()));
    } else if (arg == "--duration") {
      duration_sec = std::atof(next());
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--derive-seeds") {
      derive_seeds = true;
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--jsonl") {
      jsonl_path = next();
    } else if (arg == "--remote") {
      remote = next();
    } else if (arg == "--jobs") {
      next();  // Consumed again by sweep_options_from_cli.
    } else if (arg.rfind("--jobs=", 0) == 0) {
      // Parsed by sweep_options_from_cli.
    } else {
      std::fprintf(stderr, "unknown sweep option %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  for (std::string name : gen_scenarios) {
    if (name.rfind("gen:", 0) != 0) name = "gen:" + name;
    if (have_gen_seed && name.find("seed=") == std::string::npos) {
      name += name.find(':', 4) == std::string::npos ? ":" : ";";
      name += "seed=" + std::to_string(gen_seed);
    }
    if (!parse_scenario(name)) return 2;
    scenarios.push_back(name);
  }

  if (!scenarios.empty() && !benches.empty()) {
    std::fprintf(stderr,
                 "--scenario and --bench are exclusive (the scenario's spawn "
                 "events define the apps)\n");
    return 2;
  }
  if (benches.empty() && scenarios.empty()) {
    benches.push_back(ParsecBenchmark::kSwaptions);
  }
  if (versions.empty()) versions.push_back("HARS-E");

  TableSink table_sink;
  std::unique_ptr<CsvSink> csv_sink;
  std::unique_ptr<JsonlSink> jsonl_sink;
  if (!csv_path.empty()) {
    csv_sink = std::make_unique<CsvSink>(csv_path);
    if (!csv_sink->ok()) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
  }
  if (!jsonl_path.empty()) {
    jsonl_sink = std::make_unique<JsonlSink>(jsonl_path);
    if (!jsonl_sink->ok()) {
      std::fprintf(stderr, "cannot write %s\n", jsonl_path.c_str());
      return 1;
    }
  }

  // Either branch leaves the sinks holding byte-identical records: the
  // daemon expands and runs the same declarative campaign through the
  // same engine and streams each cell verbatim.
  std::optional<svc::SummaryInfo> remote_summary;
  SweepReport report;
  std::size_t failures = 0;
  if (!remote.empty()) {
    svc::CampaignRequest campaign;
    for (ParsecBenchmark bench : benches) {
      campaign.benches.push_back(parsec_code(bench));
    }
    campaign.variants = versions;
    campaign.platforms = platforms;
    campaign.scenarios = scenarios;
    campaign.fractions = fractions;
    campaign.distances = distances;
    campaign.duration_sec = duration_sec;
    campaign.threads = threads;
    campaign.seed = seed;
    campaign.derive_seeds = derive_seeds;
    try {
      svc::ServiceClient client(svc::Address::parse(remote));
      const svc::SubmitOutcome outcome =
          client.submit_sweep(campaign, [&](const Record& record) {
            table_sink.write(record);
            if (csv_sink) csv_sink->write(record);
            if (jsonl_sink) jsonl_sink->write(record);
          });
      if (!outcome.ok) {
        std::fprintf(stderr, "remote submit rejected (%s): %s\n",
                     svc::error_code_name(outcome.error->code),
                     outcome.error->message.c_str());
        return 1;
      }
      remote_summary = outcome.summary;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "remote %s: %s\n", remote.c_str(), e.what());
      return 1;
    }
    if (csv_sink) csv_sink->flush();
    if (jsonl_sink) jsonl_sink->flush();
    failures = remote_summary->failed;
  } else {
    SweepSpec spec;
    spec.name("hars_sim_sweep")
        .base([duration_sec, threads, seed](ExperimentBuilder& b) {
          b.duration_sec(duration_sec).threads(threads).seed(seed);
        })
        .base_seed(seed);
    if (!benches.empty()) spec.benchmarks(benches);
    if (!scenarios.empty()) spec.scenarios(scenarios);
    spec.variants(versions);
    if (!platforms.empty()) spec.platforms(platforms);
    if (!fractions.empty()) spec.target_fractions(fractions);
    if (!distances.empty()) spec.search_distances(distances);
    if (derive_seeds) spec.seed_mode(SeedMode::kDerived);

    SweepOptions options = sweep_options_from_cli(argc, argv);
    options.keep_results = false;
    SweepEngine engine(options);
    engine.add_sink(table_sink);
    if (csv_sink) engine.add_sink(*csv_sink);
    if (jsonl_sink) engine.add_sink(*jsonl_sink);

    report = engine.run(spec);
    failures = report_sweep_failures(std::cerr, report);
  }

  ReportTable table("sweep results");
  std::vector<std::string> columns;
  if (!benches.empty()) columns.push_back("bench");
  if (!scenarios.empty()) {
    columns.push_back("scenario");
    columns.push_back("app");
  }
  columns.push_back("variant");
  if (!platforms.empty()) columns.push_back("platform");
  if (!fractions.empty()) columns.push_back("fraction");
  if (!distances.empty()) columns.push_back("distance");
  for (const char* metric : {"norm_perf", "avg_power_w", "perf_per_watt",
                             "in_window_fraction"}) {
    columns.push_back(metric);
  }
  table.set_columns(columns);
  for (const Record& row : table_sink.rows()) {
    std::vector<std::string> cells;
    for (const std::string& column : columns) {
      const RecordCell* cell = row.find(column);
      cells.push_back(cell != nullptr
                          ? (cell->numeric ? format_value(cell->number)
                                           : cell->text)
                          : std::string());
    }
    table.add_text_row(cells);
  }
  table.print(std::cout);

  if (!csv_path.empty()) std::printf("csv              %s\n", csv_path.c_str());
  if (!jsonl_path.empty()) {
    std::printf("jsonl            %s\n", jsonl_path.c_str());
  }
  if (remote_summary.has_value()) {
    // The daemon counted cases and wall time; jobs are a daemon-side
    // setting, so the summary names the campaign id instead.
    std::printf("campaign 'hars_sim_sweep': %llu cases, remote campaign %llu "
                "(%s), %s ms, %llu failed\n",
                static_cast<unsigned long long>(remote_summary->cases),
                static_cast<unsigned long long>(remote_summary->campaign),
                remote_summary->status.c_str(),
                format_number(remote_summary->wall_ms).c_str(),
                static_cast<unsigned long long>(remote_summary->failed));
    return failures > 0 || remote_summary->status != "complete" ? 1 : 0;
  }
  print_sweep_summary(std::cout, report);
  return failures > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "sweep") == 0) {
    return run_sweep_mode(argc, argv);
  }

  std::vector<ParsecBenchmark> benches;
  std::string version = "HARS-E";
  std::string platform;
  std::string backend_name;
  std::string scenario;
  std::string gen_scenario;
  std::uint64_t gen_seed = 0;
  bool have_gen_seed = false;
  std::string capture_path;
  std::string replay_path;
  int sample_ticks = 10;
  ExperimentBuilder builder;
  double fraction = 0.50;
  double duration_sec = 120.0;
  int threads = 8;
  std::uint64_t seed = 1;
  std::string trace_path;
  std::string remote;
  // Tuning flags are validated at parse time but applied later: the
  // local path feeds them to the builder, --remote ships the names.
  std::string scheduler_name;
  std::string predictor_name;
  std::string policy_name;
  bool learn_ratio = false;
  obs::TelemetryConfig telemetry_cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      usage();
      return 0;
    } else if (arg == "--bench") {
      ParsecBenchmark bench;
      if (!parse_bench(next(), &bench)) {
        std::fprintf(stderr, "unknown benchmark\n");
        return 2;
      }
      benches.push_back(bench);
    } else if (arg == "--version") {
      version = next();
      if (VariantRegistry::instance().find(version) == nullptr) {
        std::fprintf(stderr, "unknown version %s\n", version.c_str());
        usage();
        return 2;
      }
    } else if (arg == "--platform") {
      platform = next();
      if (!parse_platform(platform)) return 2;
    } else if (arg == "--list-platforms") {
      list_platforms();
      return 0;
    } else if (arg == "--backend") {
      backend_name = next();
      if (!parse_backend(backend_name)) return 2;
    } else if (arg == "--list-backends") {
      list_backends();
      return 0;
    } else if (arg == "--scenario") {
      scenario = next();
      if (!parse_scenario(scenario)) return 2;
    } else if (arg == "--gen-scenario") {
      gen_scenario = next();
    } else if (arg == "--gen-seed") {
      gen_seed = std::strtoull(next(), nullptr, 0);
      have_gen_seed = true;
    } else if (arg == "--list-scenarios") {
      list_scenarios();
      return 0;
    } else if (arg == "--capture") {
      capture_path = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--sample-ticks") {
      sample_ticks = std::atoi(next());
    } else if (arg == "--fraction") {
      fraction = std::atof(next());
    } else if (arg == "--duration") {
      duration_sec = std::atof(next());
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--scheduler") {
      scheduler_name = next();
      if (!parse_thread_scheduler(scheduler_name)) {
        std::fprintf(stderr, "unknown scheduler\n");
        return 2;
      }
    } else if (arg == "--predictor") {
      predictor_name = next();
      if (!parse_predictor_kind(predictor_name)) {
        std::fprintf(stderr, "unknown predictor\n");
        return 2;
      }
    } else if (arg == "--policy") {
      policy_name = next();
      if (!parse_search_policy(policy_name)) {
        std::fprintf(stderr, "unknown policy\n");
        return 2;
      }
    } else if (arg == "--learn-ratio") {
      learn_ratio = true;
    } else if (arg == "--remote") {
      remote = next();
    } else if (arg == "--jobs") {
      next();  // Accepted for symmetry with sweep mode; one run is serial.
    } else if (arg.rfind("--jobs=", 0) == 0) {
      // Accepted for symmetry with sweep mode; one run is serial.
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics") {
      telemetry_cfg.metrics_jsonl = next();
      telemetry_cfg.enabled = true;
    } else if (arg == "--metrics-csv") {
      telemetry_cfg.metrics_csv = next();
      telemetry_cfg.enabled = true;
    } else if (arg == "--prom") {
      telemetry_cfg.prometheus = next();
      telemetry_cfg.enabled = true;
    } else if (arg == "--trace-spans") {
      telemetry_cfg.trace_json = next();
      telemetry_cfg.enabled = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (!replay_path.empty()) return run_replay(replay_path);

  if (!remote.empty()) {
    if (!capture_path.empty()) {
      std::fprintf(stderr,
                   "--capture is local-only (scenario traces do not cross "
                   "the wire); drop --remote to capture\n");
      return 2;
    }
    if (telemetry_cfg.enabled) {
      std::fprintf(stderr,
                   "telemetry flags are local-only; scrape the daemon's "
                   "metrics verb instead (hars_client metrics)\n");
      return 2;
    }
    if (!backend_name.empty() && backend_name != "sim") {
      std::fprintf(stderr,
                   "--backend %s is local-only (the daemon simulates); use "
                   "hars_agentd on the target machine instead\n",
                   backend_name.c_str());
      return 2;
    }
  }

  if (!gen_scenario.empty()) {
    if (!scenario.empty()) {
      std::fprintf(stderr, "--scenario and --gen-scenario are exclusive\n");
      return 2;
    }
    if (gen_scenario.rfind("gen:", 0) != 0) gen_scenario = "gen:" + gen_scenario;
    if (have_gen_seed && gen_scenario.find("seed=") == std::string::npos) {
      gen_scenario += gen_scenario.find(':', 4) == std::string::npos ? ":" : ";";
      gen_scenario += "seed=" + std::to_string(gen_seed);
    }
    if (!parse_scenario(gen_scenario)) return 2;
    scenario = gen_scenario;
  }

  if (!scenario.empty() && !benches.empty()) {
    std::fprintf(stderr,
                 "--scenario and --bench are exclusive (the scenario's spawn "
                 "events define the apps)\n");
    return 2;
  }
  if (scenario.empty() && !capture_path.empty()) {
    std::fprintf(stderr, "--capture requires --scenario\n");
    return 2;
  }
  if (benches.empty() && scenario.empty()) {
    benches.push_back(ParsecBenchmark::kSwaptions);
  }
  // Both branches produce the same payload struct, so the printed
  // report is byte-identical whether the experiment ran here or in a
  // hars_simd daemon.
  svc::RunResultPayload payload;
  if (!remote.empty()) {
    svc::CampaignRequest campaign;
    campaign.mode = "run";
    for (ParsecBenchmark bench : benches) {
      campaign.benches.push_back(parsec_code(bench));
    }
    campaign.variants = {version};
    if (!platform.empty()) campaign.platforms = {platform};
    if (!scenario.empty()) campaign.scenarios = {scenario};
    campaign.fractions = {fraction};
    campaign.duration_sec = duration_sec;
    campaign.threads = threads;
    campaign.seed = seed;
    campaign.scheduler = scheduler_name;
    campaign.predictor = predictor_name;
    campaign.policy = policy_name;
    campaign.learn_ratio = learn_ratio;
    campaign.want_trace = !trace_path.empty();
    try {
      svc::ServiceClient client(svc::Address::parse(remote));
      const svc::SubmitOutcome outcome = client.submit_run(campaign);
      if (!outcome.ok) {
        std::fprintf(stderr, "remote submit rejected (%s): %s\n",
                     svc::error_code_name(outcome.error->code),
                     outcome.error->message.c_str());
        return outcome.error->code == svc::ErrorCode::kBadRequest ? 2 : 1;
      }
      payload = outcome.result;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "remote %s: %s\n", remote.c_str(), e.what());
      return 1;
    }
  } else {
    if (!platform.empty()) builder.platform(std::string_view(platform));
    if (!backend_name.empty()) builder.backend(backend_name);
    TraceSink capture_sink(sample_ticks);
    if (!scenario.empty()) {
      builder.scenario(std::string_view(scenario));
      if (!capture_path.empty()) builder.capture(capture_sink);
    } else {
      builder.apps(benches);
    }
    builder.variant(version)
        .target_fraction(fraction)
        .duration_sec(duration_sec)
        .threads(threads)
        .seed(seed);
    if (!scheduler_name.empty()) {
      builder.scheduler(*parse_thread_scheduler(scheduler_name));
    }
    if (!predictor_name.empty()) {
      builder.predictor(*parse_predictor_kind(predictor_name));
    }
    if (!policy_name.empty()) builder.policy(*parse_search_policy(policy_name));
    if (learn_ratio) builder.learn_ratio(true);
    if (telemetry_cfg.enabled) builder.telemetry(telemetry_cfg);

    ExperimentResult result;
    try {
      result = builder.build().run();
    } catch (const ExperimentConfigError& error) {
      std::fprintf(stderr, "invalid configuration: %s\n", error.what());
      return 2;
    }

    if (!capture_path.empty()) {
      if (!capture_sink.write_file(capture_path)) {
        std::fprintf(stderr, "cannot write %s\n", capture_path.c_str());
        return 1;
      }
      std::printf("capture          %s (%zu samples)\n", capture_path.c_str(),
                  capture_sink.samples().size());
    }
    payload = svc::run_payload_of(result, !trace_path.empty());
  }

  if (!telemetry_cfg.metrics_jsonl.empty()) {
    std::printf("metrics          %s\n", telemetry_cfg.metrics_jsonl.c_str());
  }
  if (!telemetry_cfg.metrics_csv.empty()) {
    std::printf("metrics csv      %s\n", telemetry_cfg.metrics_csv.c_str());
  }
  if (!telemetry_cfg.prometheus.empty()) {
    std::printf("prometheus       %s\n", telemetry_cfg.prometheus.c_str());
  }
  if (!telemetry_cfg.trace_json.empty()) {
    std::printf("trace spans      %s\n", telemetry_cfg.trace_json.c_str());
  }
  print_run_report(payload, benches, version, platform, scenario);
  if (!trace_path.empty()) write_traces(trace_path, payload, benches, scenario);
  return 0;
}
