// hars_simd: the simulation-as-a-service daemon.
//
//   hars_simd --listen tcp:127.0.0.1:7414 --jobs 4
//   hars_simd --listen unix:/tmp/hars.sock --max-clients 8
//
// Serves the length-prefixed JSONL wire protocol (see
// docs/FILE_FORMATS.md, "Wire protocol"): clients submit experiment /
// sweep campaigns, stream result records, scrape Prometheus metrics,
// and query or cancel live campaigns. All campaigns share one
// work-stealing pool and the process-wide calibration / static-optimal
// / baseline-probe caches, so repeated submissions hit a warm tier.
//
// SIGTERM/SIGINT trigger a graceful drain: in-flight cases finish, new
// submissions are rejected with a typed `draining` error, every open
// campaign terminates with a `drained` summary carrying its resume
// cursor, and the process exits once clients disconnect (or after
// --drain-timeout seconds, force-closing stragglers).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "apps/parsec.hpp"
#include "svc/daemon.hpp"
#include "svc/service_cache.hpp"

namespace {

using namespace hars;

std::atomic<std::sig_atomic_t> g_drain{0};

void on_signal(int) { g_drain.store(1, std::memory_order_relaxed); }

void usage() {
  std::printf(
      "usage: hars_simd [options]\n"
      "  --listen ADDR       tcp:HOST:PORT, HOST:PORT, :PORT, unix:PATH or a\n"
      "                      bare socket path (default tcp:127.0.0.1:7414;\n"
      "                      port 0 binds an ephemeral port)\n"
      "  --jobs N            shared pool workers (default 0 = hardware)\n"
      "  --max-clients N     concurrent client sessions (default 16)\n"
      "  --max-campaigns N   concurrent campaigns per client (default 4)\n"
      "  --max-queued-cases N  global queued-case budget (default 1048576)\n"
      "  --drain-timeout SEC grace period after SIGTERM before remaining\n"
      "                      connections are force-closed (default 30)\n"
      "  --send-queue N      per-connection send queue bound, frames\n"
      "                      (default 256)\n"
      "  --prewarm           run default calibrations for every PARSEC\n"
      "                      bench before accepting clients\n"
      "  --addr-file FILE    write the bound address (scripts resolving an\n"
      "                      ephemeral port)\n"
      "  --help              this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  svc::DaemonConfig config;
  config.listen = svc::Address::parse("tcp:127.0.0.1:7414");
  config.jobs = 0;
  config.drain_signal = &g_drain;
  bool prewarm = false;
  std::string addr_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      usage();
      return 0;
    } else if (arg == "--listen") {
      try {
        config.listen = svc::Address::parse(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bad --listen address: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--jobs") {
      config.jobs = std::atoi(next());
    } else if (arg == "--max-clients") {
      config.limits.max_clients = std::atoi(next());
    } else if (arg == "--max-campaigns") {
      config.limits.max_campaigns_per_client = std::atoi(next());
    } else if (arg == "--max-queued-cases") {
      config.limits.max_queued_cases =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--drain-timeout") {
      config.drain_timeout_sec = std::atof(next());
    } else if (arg == "--send-queue") {
      config.send_queue_frames = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--prewarm") {
      prewarm = true;
    } else if (arg == "--addr-file") {
      addr_file = next();
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    svc::ServiceDaemon daemon(config);
    if (prewarm) {
      const std::size_t warmed =
          svc::prewarm_calibration(all_parsec_benchmarks());
      std::printf("prewarmed        %zu calibrations\n", warmed);
    }
    const std::string bound = daemon.address().to_string();
    if (!addr_file.empty()) {
      std::ofstream out(addr_file, std::ios::trunc);
      out << bound << '\n';
      if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", addr_file.c_str());
        return 1;
      }
    }
    std::printf("listening        %s (%d jobs, %d clients max)\n",
                bound.c_str(), daemon.scheduler().jobs(),
                daemon.config().limits.max_clients);
    std::fflush(stdout);
    daemon.serve();
    std::printf("drained          %s\n", bound.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hars_simd: %s\n", e.what());
    return 1;
  }
  return 0;
}
