// sweep_smoke: the perf-trajectory smoke campaign.
//
// Runs a scaled-down fig5_3-style grid (HARS-EI, two benchmarks, three
// search distances, short measured span) twice — serially and with a
// worker pool — verifies the two passes produced byte-identical sink
// records, and writes BENCH_sweep.json with wall-clock, throughput and
// speedup numbers so successive PRs can track the engine's performance.
//
//   sweep_smoke [--jobs N] [--out BENCH_sweep.json]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"

namespace {

using namespace hars;

SweepSpec smoke_spec() {
  SweepSpec spec;
  spec.name("sweep_smoke")
      .base([](ExperimentBuilder& b) { b.duration(30 * kUsPerSec); })
      .benchmarks({ParsecBenchmark::kSwaptions, ParsecBenchmark::kBodytrack})
      .variants({"HARS-EI"})
      .search_distances({1, 5, 9});
  return spec;
}

std::string records_fingerprint(const SweepReport& report) {
  std::ostringstream out;
  CsvSink csv(out);
  for (const CaseOutcome& outcome : report.outcomes) {
    for (const Record& record : outcome.records) csv.write(record);
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sweep.json";
  int jobs = 0;  // 0 = hardware concurrency.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    }
  }

  const SweepSpec spec = smoke_spec();

  // Untimed warm-up: populate the process-wide calibration / baseline
  // probe caches so both timed passes run with the same warm state —
  // otherwise the first pass pays every probe and the measured "speedup"
  // would conflate cache warm-up with pool parallelism.
  SweepEngine warmup(SweepOptions{.jobs = 1, .keep_results = false});
  (void)warmup.run(spec);

  SweepEngine serial(SweepOptions{.jobs = 1, .keep_results = false});
  const SweepReport serial_report = serial.run(spec);
  print_sweep_summary(std::cout, serial_report);

  SweepEngine parallel(SweepOptions{.jobs = jobs, .keep_results = false});
  const SweepReport parallel_report = parallel.run(spec);
  print_sweep_summary(std::cout, parallel_report);

  const std::size_t failures = report_sweep_failures(std::cerr, serial_report) +
                               report_sweep_failures(std::cerr, parallel_report);
  const bool identical =
      records_fingerprint(serial_report) == records_fingerprint(parallel_report);
  const double speedup = parallel_report.wall_ms > 0.0
                             ? serial_report.wall_ms / parallel_report.wall_ms
                             : 0.0;

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"campaign\": \"" << spec.campaign() << "\",\n"
      << "  \"cases\": " << serial_report.outcomes.size() << ",\n"
      << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"serial_wall_ms\": " << format_number(serial_report.wall_ms)
      << ",\n"
      << "  \"serial_cases_per_sec\": "
      << format_number(serial_report.cases_per_sec()) << ",\n"
      << "  \"parallel_jobs\": " << parallel_report.jobs << ",\n"
      << "  \"parallel_wall_ms\": " << format_number(parallel_report.wall_ms)
      << ",\n"
      << "  \"parallel_cases_per_sec\": "
      << format_number(parallel_report.cases_per_sec()) << ",\n"
      << "  \"speedup\": " << format_number(speedup) << ",\n"
      << "  \"records_identical\": " << (identical ? "true" : "false") << "\n"
      << "}\n";
  std::printf("wrote %s (speedup %.2fx, records %s)\n", out_path.c_str(),
              speedup, identical ? "identical" : "DIVERGENT");

  if (!identical || failures > 0) return 1;
  return 0;
}
